"""Tests for the FFS fsck pass and the recovery-time experiment."""

import random

import pytest

from repro.ffs import UpdateInPlaceFS
from repro.sim import Simulator
from repro.testing import MemoryDevice
from repro.units import KIB, MIB


def make_fs():
    sim = Simulator()
    device = MemoryDevice(sim, 8 * MIB)
    fs = UpdateInPlaceFS(sim, device, max_files=32)
    sim.run_process(fs.format())
    return sim, device, fs


def test_fsck_clean_volume():
    sim, _device, fs = make_fs()
    report = sim.run_process(fs.fsck())
    assert report == {"files": 0, "blocks_claimed": 0, "errors": 0}


def test_fsck_counts_files_and_blocks():
    sim, _device, fs = make_fs()
    rng = random.Random(1)

    def body():
        for index in range(5):
            path = f"/f{index}"
            yield from fs.create(path)
            yield from fs.write(path, 0, rng.randbytes(96 * KIB))

    sim.run_process(body())
    report = sim.run_process(fs.fsck())
    assert report["files"] == 5
    assert report["errors"] == 0
    # 96 KiB = 24 data blocks + 1 indirect block per file.
    assert report["blocks_claimed"] == 5 * 25


def test_fsck_detects_bitmap_inconsistency():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"x" * (8 * KIB)))
    # Corrupt: clear the bitmap bit of an allocated block.
    addr = fs._inodes[fs._names["/f"]].direct[0]
    fs._clear_bit(addr)
    report = sim.run_process(fs.fsck())
    assert report["errors"] >= 1


def test_fsck_detects_double_claim():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/a"))
    sim.run_process(fs.create("/b"))
    sim.run_process(fs.write("/a", 0, b"x" * (4 * KIB)))
    sim.run_process(fs.write("/b", 0, b"y" * (4 * KIB)))
    # Corrupt: point /b's first block at /a's.
    fs._inodes[fs._names["/b"]].direct[0] = \
        fs._inodes[fs._names["/a"]].direct[0]
    report = sim.run_process(fs.fsck())
    assert report["errors"] >= 1


def test_fsck_time_scales_with_files():
    sim, _device, fs = make_fs()
    rng = random.Random(2)

    def populate(count, base):
        for index in range(count):
            path = f"/x{base + index}"
            yield from fs.create(path)
            yield from fs.write(path, 0, rng.randbytes(64 * KIB))

    sim.run_process(populate(4, 0))
    start = sim.now
    sim.run_process(fs.fsck())
    few = sim.now - start

    sim.run_process(populate(12, 4))
    start = sim.now
    sim.run_process(fs.fsck())
    many = sim.now - start
    assert many > 1.5 * few


def test_recovery_time_experiment_quick():
    from repro.experiments import recovery_time

    result = recovery_time.run(quick=True)
    assert result.scalars["fsck_over_lfs"] > 5
    assert result.scalars["lfs_check_s"] < result.scalars["fsck_s"]
