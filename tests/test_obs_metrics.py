"""Tests for the component metrics registry and its snapshots."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs import MetricsRegistry, observe, render_metrics_snapshot
from repro.sim import Simulator
from repro.units import KIB


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("disk0", "bytes_done", unit="B")
    counter.inc(512)
    counter.inc(512)
    assert counter.value == 1024
    with pytest.raises(SimulationError):
        counter.inc(-1)


def test_gauge_tracks_maximum():
    registry = MetricsRegistry()
    gauge = registry.gauge("xmem", "allocated", unit="B")
    gauge.set(10)
    gauge.add(5)
    gauge.set(3)
    assert gauge.value == 3
    assert gauge.max_value == 15


def test_histogram_buckets_and_mean():
    registry = MetricsRegistry()
    hist = registry.histogram("disk0", "latency", buckets=(0.01, 0.1, 1.0))
    for sample in (0.005, 0.05, 0.5, 5.0):
        hist.observe(sample)
    snap = hist.snapshot()
    assert snap["count"] == 4
    assert snap["buckets"] == [0.01, 0.1, 1.0]
    # One sample per bucket, one in the implicit overflow bucket.
    assert snap["counts"] == [1, 1, 1, 1]
    assert snap["min"] == 0.005 and snap["max"] == 5.0
    assert hist.mean == pytest.approx((0.005 + 0.05 + 0.5 + 5.0) / 4)


def test_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("c0", "ops")
    b = registry.counter("c0", "ops")
    assert a is b
    assert len(registry) == 1


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("c0", "ops")
    with pytest.raises(SimulationError):
        registry.gauge("c0", "ops")


def test_unique_component_names_are_deterministic():
    registry = MetricsRegistry()
    assert registry.unique_component("throughput") == "throughput.1"
    assert registry.unique_component("throughput") == "throughput.2"
    assert registry.unique_component("busy") == "busy.1"


def test_simulator_carries_a_registry():
    sim = Simulator()
    sim.metrics.counter("port", "bytes").inc(4 * KIB)
    assert sim.metrics.snapshot()["port"]["bytes"]["value"] == 4 * KIB


def _run_workload():
    """A small deterministic workload touching several meter kinds."""
    from repro.sim import BusyMonitor, LatencyMonitor, ThroughputMeter

    sim = Simulator()
    meter = ThroughputMeter(sim, name="stream")
    latency = LatencyMonitor(sim=sim, name="op")
    busy = BusyMonitor(sim, name="port")

    def body():
        for index in range(5):
            busy.enter()
            yield sim.timeout(0.25)
            busy.exit()
            meter.record(64 * KIB, duration=0.25)
            latency.record(0.25)
            yield sim.timeout(0.05)

    sim.run_process(body())
    return sim


def test_snapshot_deterministic_across_identical_runs():
    first = _run_workload().metrics.snapshot()
    second = _run_workload().metrics.snapshot()
    assert first == second
    # Byte-identical when serialized, key order included.
    assert json.dumps(first, sort_keys=False) == \
        json.dumps(second, sort_keys=False)


def test_session_collects_per_run_snapshots():
    with observe() as session:
        _run_workload()
        _run_workload()
    snapshot = session.metrics_snapshot()
    assert sorted(snapshot) == ["run0", "run1"]
    assert snapshot["run0"] == snapshot["run1"]
    rendered = render_metrics_snapshot(snapshot)
    assert "stream" in rendered and "bytes_done" in rendered


def test_observe_without_trace_keeps_null_tracer():
    with observe() as session:
        sim = Simulator()
    assert not sim.tracer.enabled
    assert session.spans() == []
    assert len(sim.metrics) == 0
