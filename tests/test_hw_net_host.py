"""Unit tests for HIPPI/Ethernet models and the workstation/host cache."""

import pytest

from repro.errors import HardwareError
from repro.host import LruBlockCache, Workstation
from repro.hw import Ethernet, HippiPort
from repro.hw.specs import SPARCSTATION_10_51, SUN_4_280_RAID1, SUN_4_280_RAID2
from repro.sim import Simulator
from repro.units import KB, MB


@pytest.fixture
def sim():
    return Simulator()


# ---------------------------------------------------------------------------
# HIPPI
# ---------------------------------------------------------------------------

def test_hippi_large_transfer_near_port_rate(sim):
    port = HippiPort(sim)

    def body():
        yield from port.send(10 * MB)
        return sim.now

    elapsed = sim.run_process(body())
    assert 10 / elapsed == pytest.approx(38.5, rel=0.02)


def test_hippi_small_transfer_dominated_by_setup(sim):
    port = HippiPort(sim)

    def body():
        yield from port.send(1 * KB)
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed > 0.0011
    assert 1 * KB / MB / elapsed < 1.0  # far below line rate


def test_hippi_multiple_packets_charge_setup_each(sim):
    port = HippiPort(sim)

    def body():
        yield from port.send(64 * KB, packets=4)
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed == pytest.approx(4 * 0.0011 + 64 * KB / (38.5 * MB),
                                    rel=0.02)


def test_hippi_packets_for():
    port = HippiPort(Simulator())
    assert port.packets_for(0, 32 * KB) == 1
    assert port.packets_for(32 * KB, 32 * KB) == 1
    assert port.packets_for(33 * KB, 32 * KB) == 2


def test_hippi_rejects_bad_args(sim):
    port = HippiPort(sim)

    def bad_size():
        yield from port.send(-1)

    def bad_packets():
        yield from port.send(10, packets=0)

    with pytest.raises(HardwareError):
        sim.run_process(bad_size())
    with pytest.raises(HardwareError):
        sim.run_process(bad_packets())


# ---------------------------------------------------------------------------
# Ethernet
# ---------------------------------------------------------------------------

def test_ethernet_line_rate(sim):
    ether = Ethernet(sim)

    def body():
        yield from ether.send(1 * MB)
        return sim.now

    elapsed = sim.run_process(body())
    # ~1.25 MB/s line rate degraded by per-packet costs.
    assert 0.9 < 1 / elapsed < 1.25


def test_ethernet_packet_count(sim):
    ether = Ethernet(sim)
    assert ether.packets_for(1) == 1
    assert ether.packets_for(1500) == 1
    assert ether.packets_for(1501) == 2

    def body():
        yield from ether.send(4500)

    sim.run_process(body())
    assert ether.packets_sent == 3


def test_ethernet_two_orders_slower_than_hippi(sim):
    ether = Ethernet(sim)
    hippi = HippiPort(sim)
    # Paper: HIPPI loopback bandwidth is two orders of magnitude greater
    # than Ethernet.
    ratio = (ether.channel.transfer_time(1 * MB)
             / hippi.channel.transfer_time(1 * MB))
    assert ratio > 25


# ---------------------------------------------------------------------------
# Workstation
# ---------------------------------------------------------------------------

def test_cpu_work_serializes(sim):
    host = Workstation(sim, SUN_4_280_RAID2)
    finished = []

    def worker(tag):
        yield from host.cpu_work(0.01)
        finished.append((tag, sim.now))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert finished[0][1] == pytest.approx(0.01)
    assert finished[1][1] == pytest.approx(0.02)
    assert host.cpu_busy_time == pytest.approx(0.02)


def test_handle_io_charges_per_io_cost(sim):
    host = Workstation(sim, SUN_4_280_RAID2)

    def body():
        yield from host.handle_io()
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed == pytest.approx(SUN_4_280_RAID2.per_io_cpu_s)
    assert host.ios_handled == 1


def test_copy_crosses_memory_twice(sim):
    host = Workstation(sim, SUN_4_280_RAID2)

    def body():
        yield from host.copy(7 * MB)
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed == pytest.approx(2.0, rel=0.01)  # 14 MB over 7 MB/s


def test_dma_limited_by_memory_not_backplane(sim):
    """On the Sun 4/280 the 7 MB/s memory system is slower than the
    9 MB/s backplane, so DMA is memory-limited."""
    host = Workstation(sim, SUN_4_280_RAID2)

    def body():
        yield from host.dma_in(7 * MB)
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed == pytest.approx(1.0, rel=0.01)


def test_raid1_host_has_higher_per_io_cost():
    assert SUN_4_280_RAID1.per_io_cpu_s > SUN_4_280_RAID2.per_io_cpu_s


def test_sparcstation_copy_rate_matches_section_3_4():
    """Three memory passes (two copies DMA+user) ≈ 3.2 MB/s delivered."""
    assert SPARCSTATION_10_51.memory_copy_rate_mb_s / 3 == pytest.approx(
        3.2, abs=0.2)


def test_negative_cpu_work_rejected(sim):
    host = Workstation(sim, SUN_4_280_RAID2)

    def body():
        yield from host.cpu_work(-1)

    with pytest.raises(HardwareError):
        sim.run_process(body())


# ---------------------------------------------------------------------------
# LRU cache
# ---------------------------------------------------------------------------

def test_cache_put_get():
    cache = LruBlockCache(capacity_bytes=1024)
    cache.put("a", b"x" * 100)
    assert cache.get("a") == b"x" * 100
    assert cache.hits == 1
    assert cache.get("missing") is None
    assert cache.misses == 1


def test_cache_evicts_lru():
    cache = LruBlockCache(capacity_bytes=300)
    cache.put("a", b"x" * 100)
    cache.put("b", b"y" * 100)
    cache.put("c", b"z" * 100)
    cache.get("a")  # touch a; b becomes LRU
    cache.put("d", b"w" * 100)
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert cache.evictions == 1


def test_cache_update_replaces_bytes():
    cache = LruBlockCache(capacity_bytes=300)
    cache.put("a", b"x" * 100)
    cache.put("a", b"y" * 200)
    assert cache.used_bytes == 200
    assert cache.get("a") == b"y" * 200


def test_cache_invalidate_and_clear():
    cache = LruBlockCache(capacity_bytes=300)
    cache.put("a", b"x" * 100)
    cache.invalidate("a")
    assert cache.used_bytes == 0
    cache.invalidate("a")  # idempotent
    cache.put("b", b"y" * 100)
    cache.clear()
    assert len(cache) == 0


def test_cache_oversized_entry_rejected():
    cache = LruBlockCache(capacity_bytes=100)
    with pytest.raises(HardwareError):
        cache.put("big", b"x" * 101)


def test_cache_contains_does_not_touch_stats():
    cache = LruBlockCache(capacity_bytes=100)
    cache.put("a", b"x")
    assert cache.contains("a")
    assert not cache.contains("b")
    assert cache.hits == 0
    assert cache.misses == 0


def test_cache_hit_rate():
    cache = LruBlockCache(capacity_bytes=100)
    assert cache.hit_rate == 0.0
    cache.put("a", b"x")
    cache.get("a")
    cache.get("nope")
    assert cache.hit_rate == pytest.approx(0.5)


def test_cache_bad_capacity():
    with pytest.raises(HardwareError):
        LruBlockCache(capacity_bytes=0)
