"""Property-based tests for the hardware timing models."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.hw import IBM_0661, SEAGATE_WREN_IV, DiskDrive
from repro.hw.vme import Direction, VmePort
from repro.sim import BandwidthChannel, Simulator
from repro.units import SECTOR_SIZE

specs = st.sampled_from([IBM_0661, SEAGATE_WREN_IV])


@given(spec=specs, data=st.data())
@settings(max_examples=60, deadline=None)
def test_seek_time_monotone_and_bounded(spec, data):
    sim = Simulator()
    disk = DiskDrive(sim, spec)
    ncyl = spec.num_cylinders
    a = data.draw(st.integers(0, ncyl - 1))
    b = data.draw(st.integers(0, ncyl - 1))
    c = data.draw(st.integers(0, ncyl - 1))
    t_ab = disk.seek_time(a, b)
    # Symmetry.
    assert t_ab == disk.seek_time(b, a)
    # Zero distance is free; any move costs at least the settle time.
    if a == b:
        assert t_ab == 0.0
    else:
        assert spec.min_seek_s <= t_ab <= spec.max_seek_s
    # Monotone in distance.
    if abs(a - c) >= abs(a - b):
        assert disk.seek_time(a, c) >= t_ab - 1e-12


@given(spec=specs,
       nsectors=st.integers(min_value=1, max_value=512))
@settings(max_examples=40, deadline=None)
def test_media_transfer_linear_in_size(spec, nsectors):
    sim = Simulator()
    disk = DiskDrive(sim, spec)
    one = disk.media_transfer_time(SECTOR_SIZE)
    many = disk.media_transfer_time(nsectors * SECTOR_SIZE)
    assert abs(many - nsectors * one) < 1e-9


@given(spec=specs, data=st.data())
@settings(max_examples=30, deadline=None)
def test_random_op_never_cheaper_than_sequential(spec, data):
    """For the same transfer, a cold random op costs at least as much
    as a sequential continuation."""
    sim = Simulator()
    disk = DiskDrive(sim, spec)
    nsectors = data.draw(st.integers(1, 256))
    span = disk.num_sectors - 2 * nsectors - 1

    def run_sequential():
        yield from disk.read(0, nsectors)
        start = sim.now
        yield from disk.read(nsectors, nsectors)
        return sim.now - start

    sequential = sim.run_process(run_sequential())

    far_lba = data.draw(st.integers(nsectors + 1, span))
    start = sim.now

    def run_random():
        yield from disk.read(far_lba + nsectors, nsectors)

    sim.run_process(run_random())
    random_cost = sim.now - start
    assert random_cost >= sequential - 1e-12


@given(sizes=st.lists(st.integers(1, 1_000_000), min_size=1, max_size=6),
       rate=st.floats(min_value=0.5, max_value=100.0))
@settings(max_examples=40, deadline=None)
def test_channel_serial_time_is_additive(sizes, rate):
    sim = Simulator()
    channel = BandwidthChannel(sim, rate_mb_s=rate)

    def mover():
        for size in sizes:
            yield from channel.transfer(size)

    sim.run_process(mover())
    expected = sum(channel.transfer_time(size) for size in sizes)
    assert abs(sim.now - expected) < 1e-9
    assert channel.bytes_moved == sum(sizes)


@given(nbytes=st.integers(0, 10_000_000))
@settings(max_examples=40, deadline=None)
def test_vme_write_never_faster_than_read(nbytes):
    sim = Simulator()
    port = VmePort(sim)
    assert port.transfer_time(nbytes, Direction.WRITE) >= \
        port.transfer_time(nbytes, Direction.READ)


@given(spec=specs, fill=st.binary(min_size=SECTOR_SIZE,
                                  max_size=4 * SECTOR_SIZE))
@settings(max_examples=30, deadline=None)
def test_disk_store_roundtrip_any_payload(spec, fill):
    sim = Simulator()
    disk = DiskDrive(sim, spec)
    aligned = fill[:len(fill) - len(fill) % SECTOR_SIZE]
    if not aligned:
        return
    disk.poke(10, aligned)
    assert disk.peek(10, len(aligned) // SECTOR_SIZE) == aligned
