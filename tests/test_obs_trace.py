"""End-to-end tests for sim-time tracing: span trees and exporters.

One traced client_read through the full Raid2Server stack must produce
a complete, well-parented span tree: the server root, the LFS
operation under it, RAID and hardware legs under that, with no orphan
spans and every child contained in its parent's sim-time interval.
"""

import json
import random

import pytest

from repro.net import UltranetLink
from repro.obs import (NULL_TRACER, chrome_trace_json, collect_busy_components,
                       observe, render_flamegraph, render_layer_breakdown,
                       render_utilization_report)
from repro.server import Raid2Config, Raid2Server
from repro.server.raid2 import make_sparcstation_client
from repro.sim import Simulator
from repro.units import KIB, MIB


def pattern(nbytes, seed):
    return random.Random(seed).randbytes(nbytes)


@pytest.fixture(scope="module")
def traced_story():
    """One traced write+read through the whole server, shared by tests."""
    with observe(trace=True) as session:
        sim = Simulator()
        server = Raid2Server(sim, Raid2Config.fig8_lfs())
        sim.run_process(server.setup_lfs())
        client = make_sparcstation_client(sim)
        link = UltranetLink(sim, name="link")
        payload = pattern(1 * MIB, seed=7)
        sim.run_process(server.fs.create("/f"))
        sim.run_process(server.client_write(client, link, "/f", 0, payload))
        sim.run_process(server.fs.sync())
        data = sim.run_process(
            server.client_read(client, link, "/f", 0, len(payload)))
    assert data == payload  # tracing must not corrupt the data path
    return {"sim": sim, "session": session, "payload": payload}


def _by_id(spans):
    return {span.id: span for span in spans}


def _subtree(spans, root):
    ids = _by_id(spans)
    children = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    out = []
    stack = [root]
    while stack:
        span = stack.pop()
        out.append(span)
        stack.extend(children.get(span.id, ()))
    assert all(span.id in ids for span in out)
    return out


def test_every_span_is_finished_and_well_formed(traced_story):
    spans = traced_story["sim"].tracer.spans()
    assert spans, "tracing was on but recorded nothing"
    ids = _by_id(spans)
    for span in spans:
        assert span.end is not None, f"unfinished span {span.name}"
        assert span.end >= span.start >= 0.0
        assert span.layer == span.name.split(".")[0]
        # No orphans: every parent id refers to a finished span.
        if span.parent_id is not None:
            assert span.parent_id in ids, f"orphan span {span.name}"


def test_children_nest_inside_their_parents(traced_story):
    spans = traced_story["sim"].tracer.spans()
    ids = _by_id(spans)
    tolerance = 1e-12
    for span in spans:
        if span.parent_id is None:
            continue
        parent = ids[span.parent_id]
        assert parent.start <= span.start + tolerance, \
            f"{span.name} starts before its parent {parent.name}"
        assert span.end <= parent.end + tolerance, \
            f"{span.name} ends after its parent {parent.name}"


def test_client_read_tree_covers_every_layer(traced_story):
    spans = traced_story["sim"].tracer.spans()
    roots = [span for span in spans
             if span.name == "server.client_read"]
    assert len(roots) == 1
    tree = _subtree(spans, roots[0])
    layers = {span.layer for span in tree}
    # The read path: server -> ultranet RPC + LFS -> RAID -> XBUS disk
    # paths (cougar/scsi/disk + vme + xmem) and HIPPI out to the client.
    assert {"server", "ultranet", "lfs", "raid", "xbus", "xmem",
            "cougar", "scsi", "disk", "vme", "hippi"} <= layers


def test_full_story_covers_parity_too(traced_story):
    # The write side computed parity through the XBUS engine.
    layers = {span.layer for span in traced_story["sim"].tracer.spans()}
    assert "parity" in layers
    assert "server" in layers and "lfs" in layers


def test_spans_nbytes_attribution(traced_story):
    spans = traced_story["sim"].tracer.spans()
    read_root = next(s for s in spans if s.name == "server.client_read")
    assert read_root.nbytes == len(traced_story["payload"])
    assert read_root.attrs["path"] == "/f"
    disk_bytes = sum(s.nbytes for s in spans if s.layer == "disk")
    assert disk_bytes >= len(traced_story["payload"])


def test_chrome_trace_export(traced_story):
    doc = json.loads(chrome_trace_json(traced_story["session"]))
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == len(traced_story["sim"].tracer.spans())
    for event in complete:
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
    metadata = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in metadata} == {"process_name", "thread_name"}
    # Sim-time seconds -> microseconds.
    read_root = next(s for s in traced_story["sim"].tracer.spans()
                     if s.name == "server.client_read")
    event = next(e for e in complete
                 if e["args"]["span_id"] == read_root.id)
    assert event["ts"] == pytest.approx(read_root.start * 1e6)
    assert event["dur"] == pytest.approx(read_root.duration * 1e6)


def test_text_reports_render(traced_story):
    session = traced_story["session"]
    flame = render_flamegraph(session)
    assert "server.client_read" in flame
    breakdown = render_layer_breakdown(session)
    for layer in ("disk", "scsi", "cougar", "raid", "lfs", "server"):
        assert layer in breakdown
    report = render_utilization_report(
        collect_busy_components(traced_story["sim"]),
        elapsed=traced_story["sim"].now)
    assert "utilization" in report


def test_null_tracer_records_nothing():
    # Outside an observe(trace=True) session the simulator carries the
    # null tracer: no spans, no per-operation cost beyond one check.
    sim = Simulator()
    assert sim.tracer is NULL_TRACER
    assert not sim.tracer.enabled

    def body():
        with sim.tracer.span("disk.read", "d0", nbytes=512) as span:
            span.set(lba=0)
            yield sim.timeout(1.0)

    sim.run_process(body())
    assert sim.tracer.spans() == []


def test_tracing_preserves_results():
    """The same workload computes the same answer traced and untraced."""
    def run():
        sim = Simulator()
        server = Raid2Server(sim, Raid2Config.fig8_lfs())
        sim.run_process(server.setup_lfs())
        payload = pattern(256 * KIB, seed=3)
        sim.run_process(server.fs.create("/x"))
        sim.run_process(server.fs.write("/x", 0, payload))
        sim.run_process(server.fs.sync())
        data = sim.run_process(server.fs.read("/x", 0, len(payload)))
        return data, sim.now

    plain_data, plain_now = run()
    with observe(trace=True):
        traced_data, traced_now = run()
    assert traced_data == plain_data
    assert traced_now == plain_now
