"""Tests for the update-in-place (FFS-style) baseline file system."""

import dataclasses
import random

import pytest

from repro.errors import (FileExistsFsError, FileNotFoundFsError,
                          NoSpaceFsError)
from repro.ffs import UpdateInPlaceFS
from repro.hw import IBM_0661, DiskDrive
from repro.lfs.ondisk import BLOCK_SIZE
from repro.raid import DirectDiskPath, Raid5Controller
from repro.sim import Simulator
from repro.testing import MemoryDevice
from repro.units import KIB, MIB


def make_fs(capacity=8 * MIB):
    sim = Simulator()
    device = MemoryDevice(sim, capacity)
    fs = UpdateInPlaceFS(sim, device, max_files=32)
    sim.run_process(fs.format())
    return sim, device, fs


def pattern(nbytes, seed=0):
    return random.Random(seed).randbytes(nbytes)


def test_roundtrip():
    sim, _device, fs = make_fs()
    payload = pattern(20 * KIB, seed=1)
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, payload))
    assert sim.run_process(fs.read("/f", 0, len(payload))) == payload


def test_sub_block_overwrite():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"A" * 100))
    sim.run_process(fs.write("/f", 10, b"B" * 5))
    assert sim.run_process(fs.read("/f", 0, 100)) == \
        b"A" * 10 + b"B" * 5 + b"A" * 85


def test_file_spanning_indirect():
    sim, _device, fs = make_fs()
    payload = pattern(20 * BLOCK_SIZE, seed=2)
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, payload))
    assert sim.run_process(fs.read("/f", 0, len(payload))) == payload


def test_blocks_are_overwritten_in_place():
    """Unlike LFS, rewriting a block reuses its home location."""
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, pattern(BLOCK_SIZE, seed=3)))
    writes_first = device.writes
    sim.run_process(fs.write("/f", 0, pattern(BLOCK_SIZE, seed=4)))
    # Rewrite costs the same data-block write (plus inode), no new block.
    assert device.writes - writes_first <= 3
    addr_bits_used = sum(bin(b).count("1") for b in fs._bitmap)
    sim.run_process(fs.write("/f", 0, pattern(BLOCK_SIZE, seed=5)))
    assert sum(bin(b).count("1") for b in fs._bitmap) == addr_bits_used


def test_create_duplicate_and_missing():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    with pytest.raises(FileExistsFsError):
        sim.run_process(fs.create("/f"))
    with pytest.raises(FileNotFoundFsError):
        sim.run_process(fs.read("/ghost", 0, 1))


def test_unlink_frees_space():
    sim, _device, fs = make_fs(capacity=1 * MIB)
    big = pattern(600 * KIB, seed=6)
    sim.run_process(fs.create("/a"))
    sim.run_process(fs.write("/a", 0, big))
    with pytest.raises(NoSpaceFsError):
        def overfill():
            yield from fs.create("/b")
            yield from fs.write("/b", 0, big)
        sim.run_process(overfill())
    sim.run_process(fs.unlink("/a"))
    assert not fs.exists("/a")
    sim.run_process(fs.create("/c"))
    sim.run_process(fs.write("/c", 0, pattern(500 * KIB, seed=7)))
    assert sim.run_process(fs.read("/c", 0, 500 * KIB)) == pattern(
        500 * KIB, seed=7)


def test_small_write_on_raid5_triggers_rmw():
    """The motivating behaviour: FFS small writes become RAID-5 RMWs."""
    sim = Simulator()
    small_disk = dataclasses.replace(IBM_0661, capacity_bytes=4 * MIB)
    paths = [DirectDiskPath(DiskDrive(sim, small_disk, name=f"d{i}"))
             for i in range(5)]
    raid = Raid5Controller(sim, paths, 64 * KIB)
    fs = UpdateInPlaceFS(sim, raid, max_files=16)
    sim.run_process(fs.format())
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, pattern(256 * KIB, seed=8)))
    rmw_before = raid.rmw_writes
    sim.run_process(fs.write("/f", 8 * KIB, pattern(4 * KIB, seed=9)))
    assert raid.rmw_writes > rmw_before
