"""Property-based tests (hypothesis) for RAID invariants.

Invariants checked over arbitrary operation sequences:

* the layout mapping is a bijection (no two logical sectors share a
  physical sector; coverage is exact),
* read-back equals the last write at every byte,
* parity stays consistent after any write sequence,
* the array survives the loss of any single disk byte-for-byte.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.hw import IBM_0661, DiskDrive
from repro.raid import (DirectDiskPath, Raid0Layout, Raid1Layout, Raid5Layout,
                        Raid5Controller)
from repro.sim import Simulator
from repro.units import KIB, SECTOR_SIZE

SMALL_DISK = dataclasses.replace(IBM_0661, capacity_bytes=512 * KIB)
UNIT = 8 * KIB

layouts = st.sampled_from([
    Raid0Layout(4, UNIT, 512 * KIB),
    Raid0Layout(7, UNIT, 512 * KIB),
    Raid5Layout(3, UNIT, 512 * KIB),
    Raid5Layout(5, UNIT, 512 * KIB),
    Raid5Layout(24, UNIT, 512 * KIB),
    Raid1Layout(6, UNIT, 512 * KIB),
])


@st.composite
def aligned_range(draw, layout):
    total_sectors = layout.capacity_bytes // SECTOR_SIZE
    start = draw(st.integers(min_value=0, max_value=total_sectors - 1))
    length = draw(st.integers(min_value=1,
                              max_value=min(64, total_sectors - start)))
    return start * SECTOR_SIZE, length * SECTOR_SIZE


@given(data=st.data(), layout=layouts)
@settings(max_examples=60, deadline=None)
def test_layout_mapping_is_exact_and_injective(data, layout):
    offset, nbytes = data.draw(aligned_range(layout))
    pieces = layout.map_data(offset, nbytes)
    # Exact coverage in order.
    position = offset
    for piece in pieces:
        assert piece.logical_offset == position
        position += piece.nbytes
    assert position == offset + nbytes
    # Injective: no physical sector claimed twice.
    seen = set()
    for piece in pieces:
        for sector in range(piece.lba, piece.lba + piece.nsectors):
            key = (piece.disk, sector)
            assert key not in seen
            seen.add(key)
    # Data never lands on the row's parity disk.
    for piece in pieces:
        parity = layout.parity_disk(piece.row)
        if parity is not None:
            assert piece.disk != parity


@given(data=st.data(), layout=layouts)
@settings(max_examples=40, deadline=None)
def test_distinct_logical_sectors_map_to_distinct_physical(data, layout):
    total_sectors = layout.capacity_bytes // SECTOR_SIZE
    a = data.draw(st.integers(min_value=0, max_value=total_sectors - 1))
    b = data.draw(st.integers(min_value=0, max_value=total_sectors - 1))
    if a == b:
        return
    pa = layout.map_data(a * SECTOR_SIZE, SECTOR_SIZE)[0]
    pb = layout.map_data(b * SECTOR_SIZE, SECTOR_SIZE)[0]
    assert (pa.disk, pa.lba) != (pb.disk, pb.lba)


def _make_raid5(ndisks=5):
    sim = Simulator()
    paths = [DirectDiskPath(DiskDrive(sim, SMALL_DISK, name=f"d{i}"))
             for i in range(ndisks)]
    return sim, paths, Raid5Controller(sim, paths, UNIT)


write_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),   # start sector
        st.integers(min_value=1, max_value=40),    # sector count
        st.integers(min_value=0, max_value=255),   # fill byte
    ),
    min_size=1, max_size=8,
)


@given(ops=write_ops)
@settings(max_examples=40, deadline=None)
def test_raid5_readback_matches_shadow(ops):
    sim, _paths, ctrl = _make_raid5()
    shadow = bytearray(ctrl.capacity_bytes)

    def body():
        for start, count, fill in ops:
            start_sector = start % (ctrl.capacity_bytes // SECTOR_SIZE - 45)
            offset = start_sector * SECTOR_SIZE
            nbytes = count * SECTOR_SIZE
            payload = bytes([fill]) * nbytes
            shadow[offset:offset + nbytes] = payload
            yield from ctrl.write(offset, payload)
        checks = []
        for start, count, _fill in ops:
            start_sector = start % (ctrl.capacity_bytes // SECTOR_SIZE - 45)
            offset = start_sector * SECTOR_SIZE
            nbytes = count * SECTOR_SIZE
            data = yield from ctrl.read(offset, nbytes)
            checks.append((offset, nbytes, data))
        return checks

    for offset, nbytes, got in sim.run_process(body()):
        assert got == bytes(shadow[offset:offset + nbytes])


@given(ops=write_ops)
@settings(max_examples=30, deadline=None)
def test_raid5_parity_invariant_after_any_write_sequence(ops):
    sim, _paths, ctrl = _make_raid5()

    def body():
        for start, count, fill in ops:
            start_sector = start % (ctrl.capacity_bytes // SECTOR_SIZE - 45)
            yield from ctrl.write(start_sector * SECTOR_SIZE,
                                  bytes([fill]) * (count * SECTOR_SIZE))

    sim.run_process(body())
    assert ctrl.verify_parity()


@given(ops=write_ops, victim=st.integers(min_value=0, max_value=4))
@settings(max_examples=30, deadline=None)
def test_raid5_single_disk_loss_is_always_recoverable(ops, victim):
    sim, paths, ctrl = _make_raid5()
    shadow = bytearray(ctrl.capacity_bytes)

    def body():
        for start, count, fill in ops:
            start_sector = start % (ctrl.capacity_bytes // SECTOR_SIZE - 45)
            offset = start_sector * SECTOR_SIZE
            nbytes = count * SECTOR_SIZE
            payload = bytes([fill]) * nbytes
            shadow[offset:offset + nbytes] = payload
            yield from ctrl.write(offset, payload)
        paths[victim].disk.fail()
        data = yield from ctrl.read(0, ctrl.capacity_bytes)
        return data

    data = sim.run_process(body())
    assert data == bytes(shadow)


@given(ops=write_ops, victim=st.integers(min_value=0, max_value=4))
@settings(max_examples=15, deadline=None)
def test_raid5_rebuild_restores_exact_image(ops, victim):
    sim, paths, ctrl = _make_raid5()

    def body():
        for start, count, fill in ops:
            start_sector = start % (ctrl.capacity_bytes // SECTOR_SIZE - 45)
            yield from ctrl.write(start_sector * SECTOR_SIZE,
                                  bytes([fill]) * (count * SECTOR_SIZE))
        image_before = paths[victim].disk.peek(
            0, paths[victim].disk.num_sectors)
        paths[victim].disk.fail()
        paths[victim].disk.repair()
        yield from ctrl.rebuild(victim)
        image_after = paths[victim].disk.peek(
            0, paths[victim].disk.num_sectors)
        return image_before, image_after

    before, after = sim.run_process(body())
    assert before == after
    assert ctrl.verify_parity()
