"""Tests for workload generators and the measurement runner."""

import random

import pytest

from repro.errors import ReproError
from repro.sim import Simulator
from repro.units import KIB, MB, SECTOR_SIZE
from repro.workloads import (random_aligned_offsets, run_request_stream,
                             sequential_offsets)
from repro.workloads.generators import interleave


def test_random_offsets_aligned_and_in_range():
    rng = random.Random(7)
    requests = random_aligned_offsets(rng, 10 * MB, 64 * KIB, 100)
    assert len(requests) == 100
    for offset, size in requests:
        assert size == 64 * KIB
        assert offset % SECTOR_SIZE == 0
        assert 0 <= offset <= 10 * MB - size


def test_random_offsets_deterministic_with_seed():
    a = random_aligned_offsets(random.Random(1), MB, 4096, 10)
    b = random_aligned_offsets(random.Random(1), MB, 4096, 10)
    assert a == b


def test_random_offsets_bad_args():
    rng = random.Random(0)
    with pytest.raises(ReproError):
        random_aligned_offsets(rng, MB, 2 * MB, 1)
    with pytest.raises(ReproError):
        random_aligned_offsets(rng, MB, 1000, 1, alignment=512)


def test_sequential_offsets_wrap():
    requests = sequential_offsets(10 * KIB * 100, 300 * KIB, 5)
    assert requests[0] == (0, 300 * KIB)
    assert requests[1] == (300 * KIB, 300 * KIB)
    # 1000 KiB capacity: the fourth request would exceed it and wraps.
    assert requests[3][0] == 0


def test_interleave_round_robin():
    merged = list(interleave([(0, 1), (1, 1)], [(2, 1)]))
    assert merged == [(0, 1), (2, 1), (1, 1)]


def test_run_request_stream_sequential():
    sim = Simulator()

    def op(offset, size):
        yield sim.timeout(0.01)

    result = run_request_stream(sim, op, [(0, MB)] * 10)
    assert result.ops == 10
    assert result.elapsed_s == pytest.approx(0.1)
    assert result.mb_per_s == pytest.approx(100.0)
    assert result.ios_per_s == pytest.approx(100.0)
    assert result.mean_latency_s == pytest.approx(0.01)


def test_run_request_stream_concurrent_overlaps():
    sim = Simulator()

    def op(offset, size):
        yield sim.timeout(0.01)

    result = run_request_stream(sim, op, [(0, MB)] * 10, concurrency=5)
    assert result.elapsed_s == pytest.approx(0.02)


def test_run_request_stream_rejects_empty():
    sim = Simulator()
    with pytest.raises(ReproError):
        run_request_stream(sim, lambda o, s: iter(()), [])
