"""Property tests: random single-failure plans against RAID 5 and RAID 1.

Hypothesis draws a random workload (aligned reads/writes over a fixed
region) and one random fault event (disk death, transient burst, or
latent sector error).  Whatever it picks, every read must return the
bytes most recently written, and after repairing and rebuilding any
dead disk the redundancy must scrub clean.
"""

import dataclasses
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (DiskDeath, FaultPlan, LatentSectorError,
                          TransientFault, attach_array)
from repro.hw import IBM_0661, DiskDrive
from repro.raid import (DirectDiskPath, Raid1Controller, Raid5Controller)
from repro.sim import Simulator
from repro.testing import assert_parity_clean
from repro.units import KIB, MIB, SECTOR_SIZE

SMALL_DISK = dataclasses.replace(IBM_0661, capacity_bytes=2 * MIB)
UNIT = 8 * KIB
#: All I/O stays inside this region so rebuild + scrub stay cheap.
REGION = 256 * KIB

#: Sectors of one disk the written region can span (conservative bound
#: so latent errors land where reads will hit them).
REGION_DISK_SECTORS = REGION // SECTOR_SIZE // 2

OPS = st.lists(
    st.tuples(
        st.integers(0, REGION // SECTOR_SIZE - 1),   # offset (sectors)
        st.integers(1, 32),                          # length (sectors)
        st.booleans(),                               # write?
        st.integers(0, 2 ** 16),                     # payload seed
    ),
    min_size=1, max_size=10)


def _fault_strategy(disk_names):
    times = st.floats(0.0, 0.3, allow_nan=False, allow_infinity=False)
    return st.one_of(
        st.builds(DiskDeath, disk=st.sampled_from(disk_names), at_s=times),
        # count stays below the retry policy's max_attempts (4) so
        # transients always heal.
        st.builds(TransientFault, disk=st.sampled_from(disk_names),
                  at_s=times, count=st.integers(1, 3)),
        st.builds(LatentSectorError, disk=st.sampled_from(disk_names),
                  lba=st.integers(0, REGION_DISK_SECTORS), at_s=times,
                  nsectors=st.integers(1, 8)),
    )


def pattern(nbytes, seed):
    return random.Random(seed).randbytes(nbytes)


def _exercise(sim, paths, ctrl, ops, fault, scrub_rows):
    base = pattern(REGION, seed=1)
    sim.run_process(ctrl.write(0, base))
    shadow = bytearray(base)

    attach_array(FaultPlan.of(fault), ctrl)

    def workload():
        for offset_s, length_s, is_write, seed in ops:
            offset = offset_s * SECTOR_SIZE
            nbytes = min(length_s * SECTOR_SIZE, REGION - offset)
            if nbytes <= 0:
                continue
            if is_write:
                payload = pattern(nbytes, seed=seed)
                yield from ctrl.write(offset, payload)
                shadow[offset:offset + nbytes] = payload
            else:
                data = yield from ctrl.read(offset, nbytes)
                assert data == bytes(shadow[offset:offset + nbytes])

    sim.run_process(workload())
    assert sim.run_process(ctrl.read(0, REGION)) == bytes(shadow)

    for index, path in enumerate(paths):
        if path.disk.failed:
            path.disk.repair()
            sim.run_process(ctrl.rebuild(index, max_rows=scrub_rows))
    assert_parity_clean(ctrl, max_rows=scrub_rows)
    assert sim.run_process(ctrl.read(0, REGION)) == bytes(shadow)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_raid5_serves_written_bytes_under_any_single_fault(data):
    names = [f"d{i}" for i in range(5)]
    ops = data.draw(OPS)
    fault = data.draw(_fault_strategy(names))
    sim = Simulator()
    paths = [DirectDiskPath(DiskDrive(sim, SMALL_DISK, name=name))
             for name in names]
    ctrl = Raid5Controller(sim, paths, UNIT)
    rows = REGION // (ctrl.layout.data_units_per_row * UNIT) + 2
    _exercise(sim, paths, ctrl, ops, fault, scrub_rows=rows)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_raid1_serves_written_bytes_under_any_single_fault(data):
    names = [f"d{i}" for i in range(4)]
    ops = data.draw(OPS)
    fault = data.draw(_fault_strategy(names))
    sim = Simulator()
    paths = [DirectDiskPath(DiskDrive(sim, SMALL_DISK, name=name))
             for name in names]
    ctrl = Raid1Controller(sim, paths, UNIT)
    rows = REGION // (ctrl.layout.data_units_per_row * UNIT) + 2
    _exercise(sim, paths, ctrl, ops, fault, scrub_rows=rows)
