"""Unit tests for SCSI strings and Cougar controllers."""

import pytest

from repro.errors import HardwareError
from repro.hw import COUGAR_SPEC, IBM_0661, CougarController, DiskDrive, ScsiString
from repro.sim import Simulator
from repro.units import KIB, MB


@pytest.fixture
def sim():
    return Simulator()


def make_cougar(sim, disks_per_string=3):
    cougar = CougarController(sim, name="c0")
    for string_index, string in enumerate(cougar.strings):
        for disk_index in range(disks_per_string):
            string.attach(DiskDrive(sim, IBM_0661,
                                    name=f"d{string_index}.{disk_index}"))
    return cougar


def test_string_attach_and_duplicate_rejected(sim):
    string = ScsiString(sim)
    disk = DiskDrive(sim, IBM_0661)
    string.attach(disk)
    with pytest.raises(HardwareError):
        string.attach(disk)
    assert string.disks == [disk]


def test_string_transfer_tracks_activity(sim):
    string = ScsiString(sim)
    observed = []

    def mover():
        yield from string.transfer(64 * KIB)

    def watcher():
        yield sim.timeout(0.001)
        observed.append(string.busy)

    sim.process(mover())
    sim.process(watcher())
    sim.run()
    assert observed == [True]
    assert not string.busy


def test_cougar_read_returns_disk_bytes(sim):
    cougar = make_cougar(sim)
    disk = cougar.strings[0].disks[0]
    disk.poke(0, b"\x5a" * (64 * KIB))

    def body():
        data = yield from cougar.read(disk, 0, 128)
        return data

    assert sim.run_process(body()) == b"\x5a" * (64 * KIB)


def test_cougar_write_lands_on_disk(sim):
    cougar = make_cougar(sim)
    disk = cougar.strings[1].disks[2]
    payload = b"\x3c" * (8 * KIB)

    def body():
        yield from cougar.write(disk, 64, payload)

    sim.run_process(body())
    assert disk.peek(64, 16) == payload


def test_string_of_unknown_disk_rejected(sim):
    cougar = make_cougar(sim)
    stranger = DiskDrive(sim, IBM_0661, name="stranger")
    with pytest.raises(HardwareError):
        cougar.string_of(stranger)


def test_disks_property_lists_all(sim):
    cougar = make_cougar(sim)
    assert len(cougar.disks) == 6


def test_string_is_the_bottleneck_for_three_disks(sim):
    """Three disks streaming on one string are capped near 3 MB/s.

    This is the saturation behaviour of Figure 7.
    """
    cougar = make_cougar(sim)
    string = cougar.strings[0]
    total_each = 1 * MB
    unit = 64 * KIB

    def streamer(disk):
        for index in range(total_each // unit):
            yield from cougar.read(disk, index * 128, 128)

    for disk in string.disks:
        sim.process(streamer(disk))
    elapsed = sim.run()
    rate = 3 * total_each / MB / elapsed
    assert 2.8 < rate < 3.4


def test_single_disk_not_string_limited(sim):
    """One disk on a string runs at its own ~2 MB/s, below the string cap."""
    cougar = make_cougar(sim)
    disk = cougar.strings[0].disks[0]
    total = 1 * MB
    unit = 64 * KIB

    def streamer():
        for index in range(total // unit):
            yield from cougar.read(disk, index * 128, 128)

    sim.process(streamer())
    elapsed = sim.run()
    rate = total / MB / elapsed
    assert 1.8 < rate < 2.3


def test_dual_string_contention_counted(sim):
    cougar = make_cougar(sim)
    d_a = cougar.strings[0].disks[0]
    d_b = cougar.strings[1].disks[0]

    def streamer(disk):
        for index in range(8):
            yield from cougar.read(disk, index * 128, 128)

    sim.process(streamer(d_a))
    sim.process(streamer(d_b))
    sim.run()
    assert cougar.contention_events > 0


def test_dual_string_contention_slows_transfers():
    """Running both strings at once costs the per-op controller delay.

    Compare the same two-string workload against a controller whose
    contention penalty is zeroed: the elapsed difference is roughly one
    penalty per operation.
    """
    import dataclasses

    unit_sectors = 128
    ops = 12

    def run_two_strings(penalty):
        local_sim = Simulator()
        spec = dataclasses.replace(COUGAR_SPEC, dual_string_penalty_s=penalty)
        cougar = CougarController(local_sim, spec, name="c0")
        for string in cougar.strings:
            string.attach(DiskDrive(local_sim, IBM_0661))

        def streamer(disk):
            for index in range(ops):
                yield from cougar.read(disk, index * unit_sectors,
                                       unit_sectors)

        local_sim.process(streamer(cougar.strings[0].disks[0]))
        local_sim.process(streamer(cougar.strings[1].disks[0]))
        return local_sim.run()

    with_penalty = run_two_strings(COUGAR_SPEC.dual_string_penalty_s)
    without_penalty = run_two_strings(0.0)
    extra = with_penalty - without_penalty
    assert extra > 0.5 * ops * COUGAR_SPEC.dual_string_penalty_s
