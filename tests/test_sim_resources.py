"""Unit tests for resources, stores and bandwidth channels."""

import pytest

from repro.errors import SimulationError
from repro.sim import BandwidthChannel, PriorityResource, Resource, Simulator, Store
from repro.units import MB


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    order = []

    def user(tag, hold):
        yield res.acquire()
        try:
            order.append((tag, "in", sim.now))
            yield sim.timeout(hold)
        finally:
            res.release()
        order.append((tag, "out", sim.now))

    for tag in ("a", "b", "c"):
        sim.process(user(tag, 1.0))
    sim.run()
    entries = {tag: t for tag, phase, t in order if phase == "in"}
    assert entries["a"] == 0.0
    assert entries["b"] == 0.0
    assert entries["c"] == 1.0  # had to wait for a slot


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    granted = []

    def user(tag):
        yield res.acquire()
        granted.append(tag)
        yield sim.timeout(1.0)
        res.release()

    for tag in range(5):
        sim.process(user(tag))
    sim.run()
    assert granted == [0, 1, 2, 3, 4]


def test_resource_release_idle_rejected():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_bad_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_queue_length():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        yield res.acquire()
        yield sim.timeout(10.0)
        res.release()

    def waiter():
        yield res.acquire()
        res.release()

    sim.process(holder())
    sim.process(waiter())
    sim.process(waiter())
    sim.run(until=1.0)
    assert res.queue_length == 2
    assert res.in_use == 1
    sim.run()
    assert res.queue_length == 0


def test_resource_locked_helper():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def body():
        with (yield from res.locked()):
            assert res.in_use == 1
            yield sim.timeout(1.0)
        return res.in_use

    assert sim.run_process(body()) == 0


# ---------------------------------------------------------------------------
# PriorityResource
# ---------------------------------------------------------------------------

def test_priority_resource_serves_lowest_priority_first():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    granted = []

    def holder():
        yield res.acquire(priority=0)
        yield sim.timeout(5.0)
        res.release()

    def user(tag, priority, delay):
        yield sim.timeout(delay)
        yield res.acquire(priority=priority)
        granted.append(tag)
        res.release()

    sim.process(holder())
    sim.process(user("low", priority=9, delay=1.0))
    sim.process(user("high", priority=1, delay=2.0))
    sim.process(user("mid", priority=5, delay=3.0))
    sim.run()
    assert granted == ["high", "mid", "low"]


def test_priority_resource_ties_are_fifo():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    granted = []

    def holder():
        yield res.acquire()
        yield sim.timeout(5.0)
        res.release()

    def user(tag):
        yield sim.timeout(1.0)
        yield res.acquire(priority=3)
        granted.append(tag)
        res.release()

    sim.process(holder())
    for tag in range(4):
        sim.process(user(tag))
    sim.run()
    assert granted == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def body():
        yield store.put("x")
        item = yield store.get()
        return item

    assert sim.run_process(body()) == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def producer():
        yield sim.timeout(3.0)
        yield store.put("late")

    def consumer():
        item = yield store.get()
        return item, sim.now

    sim.process(producer())
    assert sim.run_process(consumer()) == ("late", 3.0)


def test_store_is_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(4):
            yield store.put(i)

    def consumer():
        for _ in range(4):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3]


def test_bounded_store_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("a", sim.now))
        yield store.put("b")
        times.append(("b", sim.now))

    def consumer():
        yield sim.timeout(5.0)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert times == [("a", 0.0), ("b", 5.0)]


def test_store_len():
    sim = Simulator()
    store = Store(sim)

    def body():
        yield store.put(1)
        yield store.put(2)
        return len(store)

    assert sim.run_process(body()) == 2


# ---------------------------------------------------------------------------
# BandwidthChannel
# ---------------------------------------------------------------------------

def test_channel_transfer_time():
    sim = Simulator()
    chan = BandwidthChannel(sim, rate_mb_s=10.0)
    assert chan.transfer_time(10 * MB) == pytest.approx(1.0)


def test_channel_overhead_added():
    sim = Simulator()
    chan = BandwidthChannel(sim, rate_mb_s=10.0, per_transfer_overhead=0.5)
    assert chan.transfer_time(10 * MB) == pytest.approx(1.5)


def test_channel_serializes_transfers():
    sim = Simulator()
    chan = BandwidthChannel(sim, rate_mb_s=1.0)
    done = []

    def mover(tag):
        yield from chan.transfer(1 * MB)
        done.append((tag, sim.now))

    sim.process(mover("a"))
    sim.process(mover("b"))
    sim.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_channel_accounting():
    sim = Simulator()
    chan = BandwidthChannel(sim, rate_mb_s=2.0)

    def mover():
        yield from chan.transfer(4 * MB)

    sim.process(mover())
    sim.run()
    assert chan.bytes_moved == 4 * MB
    assert chan.transfer_count == 1
    assert chan.busy_time == pytest.approx(2.0)
    assert chan.utilization(4.0) == pytest.approx(0.5)


def test_channel_rejects_bad_rate():
    sim = Simulator()
    with pytest.raises(SimulationError):
        BandwidthChannel(sim, rate_mb_s=0.0)


def test_channel_rejects_negative_size():
    sim = Simulator()
    chan = BandwidthChannel(sim, rate_mb_s=1.0)
    with pytest.raises(SimulationError):
        chan.transfer_time(-1)
