"""Tests for the RAID parity scrubber."""

import dataclasses
import random

import pytest

from repro.analysis import scrub_array, scrub_images, scrub_process
from repro.errors import ConsistencyError, RaidError
from repro.hw import IBM_0661, DiskDrive
from repro.hw.parity import xor_blocks
from repro.raid import (DirectDiskPath, Raid0Controller, Raid1Controller,
                        Raid3Controller, Raid5Controller)
from repro.raid.layout import Raid5Layout
from repro.sim import Simulator
from repro.testing import assert_parity_clean
from repro.units import KIB, MIB

SMALL_DISK = dataclasses.replace(IBM_0661, capacity_bytes=1 * MIB)
UNIT = 16 * KIB


def make_array(sim, ndisks):
    return [DirectDiskPath(DiskDrive(sim, SMALL_DISK, name=f"d{i}"))
            for i in range(ndisks)]


def pattern(nbytes, seed=0):
    return random.Random(seed).randbytes(nbytes)


def make_raid5(sim, ndisks=5):
    paths = make_array(sim, ndisks)
    ctrl = Raid5Controller(sim, paths, UNIT)

    def body():
        yield from ctrl.write(0, pattern(20 * UNIT))

    sim.run_process(body())
    return paths, ctrl


def flip_byte(disk, lba):
    block = bytearray(disk.peek(lba, 1))
    block[0] ^= 0xFF
    disk.poke(lba, bytes(block))


def test_raid5_clean_array_scrubs_clean():
    sim = Simulator()
    _paths, ctrl = make_raid5(sim)
    report = scrub_array(ctrl)
    assert report.ok
    assert report.rows_checked == ctrl.layout.rows
    assert report.degraded_rows == []


def test_raid5_flipped_parity_block_is_caught():
    sim = Simulator()
    paths, ctrl = make_raid5(sim)
    parity_disk = ctrl.layout.parity_disk(3)
    flip_byte(paths[parity_disk].disk, ctrl.layout.row_lba(3))
    report = scrub_array(ctrl)
    assert not report.ok
    assert report.mismatched_rows == [3]


def test_raid5_flipped_data_block_is_caught():
    sim = Simulator()
    paths, ctrl = make_raid5(sim)
    data_disk = ctrl.layout.data_disk(0, 1)
    flip_byte(paths[data_disk].disk, ctrl.layout.row_lba(0))
    report = scrub_array(ctrl)
    assert report.mismatched_rows == [0]


def test_raid5_repair_rewrites_parity():
    sim = Simulator()
    paths, ctrl = make_raid5(sim)
    parity_disk = ctrl.layout.parity_disk(0)
    flip_byte(paths[parity_disk].disk, ctrl.layout.row_lba(0))
    report = scrub_array(ctrl, repair=True)
    assert report.repaired_rows == [0]
    assert scrub_array(ctrl).ok


def test_raid5_degraded_rows_are_skipped_not_failed():
    sim = Simulator()
    paths, ctrl = make_raid5(sim)
    paths[2].disk.fail()
    report = scrub_array(ctrl)
    assert report.ok  # nothing checkable mismatched
    # Every row involves all five disks, so every row is degraded.
    assert len(report.degraded_rows) == ctrl.layout.rows
    assert report.rows_checked == 0


def test_raid3_scrub():
    sim = Simulator()
    paths = make_array(sim, 4)
    ctrl = Raid3Controller(sim, paths)

    def body():
        yield from ctrl.write(0, pattern(30 * KIB))

    sim.run_process(body())
    assert scrub_array(ctrl, max_rows=64).ok
    flip_byte(paths[ctrl.layout.parity_disk(0)].disk, 0)
    report = scrub_array(ctrl, max_rows=64)
    assert report.mismatched_rows == [0]


def test_raid1_mirror_scrub():
    sim = Simulator()
    paths = make_array(sim, 4)
    ctrl = Raid1Controller(sim, paths, UNIT)

    def body():
        yield from ctrl.write(0, pattern(8 * UNIT))

    sim.run_process(body())
    assert scrub_array(ctrl).ok
    # Diverge one mirror copy.
    flip_byte(paths[ctrl.layout.mirror_of(0)].disk, 0)
    report = scrub_array(ctrl)
    assert report.mismatched_rows == [0]
    # Repair copies the primary back over the mirror.
    scrub_array(ctrl, repair=True)
    assert scrub_array(ctrl).ok


def test_raid0_has_nothing_to_scrub():
    sim = Simulator()
    ctrl = Raid0Controller(sim, make_array(sim, 4), UNIT)
    with pytest.raises(RaidError):
        scrub_array(ctrl)


def test_timed_scrub_process():
    sim = Simulator()
    paths, ctrl = make_raid5(sim)
    before = sim.now
    report = sim.run_process(scrub_process(ctrl, max_rows=8))
    assert report.ok
    assert report.rows_checked == 8
    assert sim.now > before  # it pays simulated I/O time
    flip_byte(paths[ctrl.layout.parity_disk(1)].disk, ctrl.layout.row_lba(1))
    report = sim.run_process(scrub_process(ctrl, max_rows=8))
    assert report.mismatched_rows == [1]


def test_assert_parity_clean_hook():
    sim = Simulator()
    paths, ctrl = make_raid5(sim)
    assert_parity_clean(ctrl)
    flip_byte(paths[ctrl.layout.parity_disk(2)].disk, ctrl.layout.row_lba(2))
    with pytest.raises(ConsistencyError) as excinfo:
        assert_parity_clean(ctrl)
    assert "row 2" in str(excinfo.value)


def test_scrub_images_and_cli(tmp_path):
    from repro.analysis.__main__ import main

    layout = Raid5Layout(4, UNIT, 256 * KIB)
    rng = random.Random(7)
    disks = [bytearray(256 * KIB) for _ in range(4)]
    for row in range(layout.rows):
        at = row * UNIT
        data = [rng.randbytes(UNIT) for _ in range(3)]
        for k, block in enumerate(data):
            disks[layout.data_disk(row, k)][at:at + UNIT] = block
        disks[layout.parity_disk(row)][at:at + UNIT] = xor_blocks(data)

    report = scrub_images([bytes(d) for d in disks], UNIT)
    assert report.ok and report.rows_checked == layout.rows

    disks[0][5] ^= 1
    report = scrub_images([bytes(d) for d in disks], UNIT)
    assert report.mismatched_rows == [0]

    names = []
    for index, disk in enumerate(disks):
        path = tmp_path / f"disk{index}.img"
        path.write_bytes(bytes(disk))
        names.append(str(path))
    assert main(["scrub", "--stripe-unit", str(UNIT)] + names) == 1
    disks[0][5] ^= 1
    names[0] = str(tmp_path / "fixed.img")
    (tmp_path / "fixed.img").write_bytes(bytes(disks[0]))
    assert main(["scrub", "--stripe-unit", str(UNIT)] + names) == 0
