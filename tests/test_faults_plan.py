"""Fault-plan injection tests: deaths, transients, latents, stalls, crashes.

Every fault here arrives through a declarative :class:`FaultPlan` pulled
by the hardware hooks — not through manual ``fail()`` calls — so these
tests exercise the same machinery the experiments and the fault matrix
replay.
"""

import dataclasses
import random

import pytest

from repro.errors import CrashPoint
from repro.faults import (CrashableDevice, DiskDeath, FaultInjector,
                          FaultPlan, HostCrash, LatentSectorError, LinkStall,
                          RetryPolicy, TransientFault, attach_array,
                          attach_server, restore_media)
from repro.hw import IBM_0661, DiskDrive
from repro.hw.cougar import CougarController
from repro.raid import DirectDiskPath, Raid5Controller
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.testing import MemoryDevice, assert_parity_clean
from repro.units import KIB, MIB, MS

SMALL_DISK = dataclasses.replace(IBM_0661, capacity_bytes=4 * MIB)
UNIT = 16 * KIB


def make_array(sim, ndisks=6):
    paths = [DirectDiskPath(DiskDrive(sim, SMALL_DISK, name=f"d{i}"))
             for i in range(ndisks)]
    return paths, Raid5Controller(sim, paths, UNIT)


def pattern(nbytes, seed):
    return random.Random(seed).randbytes(nbytes)


# ---------------------------------------------------------------------------
# whole-disk death
# ---------------------------------------------------------------------------

def test_disk_death_via_plan_degrades_but_serves_all_bytes():
    sim = Simulator()
    paths, ctrl = make_array(sim)
    base = pattern(40 * UNIT, seed=3)
    sim.run_process(ctrl.write(0, base))

    inj = attach_array(
        FaultPlan.of(DiskDeath(disk="d2", at_s=sim.now + 0.01)), ctrl)

    def reader():
        for _ in range(6):
            data = yield from ctrl.read(0, 40 * UNIT)
            assert data == base

    sim.run_process(reader())
    assert paths[2].disk.failed
    assert ctrl.degraded_reads > 0
    assert inj.m_disk_deaths.value == 1


# ---------------------------------------------------------------------------
# transient SCSI errors heal invisibly under the retry policy
# ---------------------------------------------------------------------------

def test_transient_faults_heal_with_no_user_visible_failure():
    sim = Simulator()
    _, ctrl = make_array(sim)
    base = pattern(40 * UNIT, seed=4)
    sim.run_process(ctrl.write(0, base))

    inj = attach_array(FaultPlan.of(
        TransientFault(disk="d1", count=2),
        TransientFault(disk="d4", count=1)), ctrl)

    data = sim.run_process(ctrl.read(0, 40 * UNIT))
    assert data == base
    assert ctrl.transient_retries == 3
    assert inj.m_transient_errors.value == 3
    # Retries healed in place: no reconstruction happened.
    assert ctrl.degraded_reads == 0


# ---------------------------------------------------------------------------
# latent sector errors heal by reconstruct-and-rewrite
# ---------------------------------------------------------------------------

def test_latent_sector_error_is_healed_by_rewrite():
    sim = Simulator()
    paths, ctrl = make_array(sim)
    base = pattern(8 * UNIT, seed=5)
    sim.run_process(ctrl.write(0, base))

    victim = ctrl.layout.data_disk(0, 0)
    inj = attach_array(FaultPlan.of(
        LatentSectorError(disk=f"d{victim}", lba=0, nsectors=4)), ctrl)

    data = sim.run_process(ctrl.read(0, UNIT))
    assert data == base[:UNIT]
    assert ctrl.media_error_heals == 1
    assert inj.m_latent_sectors.value == 1
    assert paths[victim].disk.media_errors == 1
    # The rewrite cleared the bad extent: the next read is clean.
    healed_reads = ctrl.degraded_reads
    data = sim.run_process(ctrl.read(0, UNIT))
    assert data == base[:UNIT]
    assert ctrl.degraded_reads == healed_reads
    assert not paths[victim].disk._bad_sectors


# ---------------------------------------------------------------------------
# link stalls
# ---------------------------------------------------------------------------

def test_link_stall_delays_scsi_transfer():
    from repro.hw.scsi import ScsiString
    sim = Simulator()
    string = ScsiString(sim, name="s0")
    inj = FaultInjector(sim, FaultPlan.of(
        LinkStall(link="s0", at_s=0.0, duration_s=0.05)))
    inj.attach(links=[string])

    sim.run_process(string.transfer(64 * KIB))
    assert sim.now >= 0.05
    assert inj.m_link_stalls.value == 1
    assert inj.m_stall_seconds.value >= 0.05


def test_cougar_op_timeout_retries_through_link_stall():
    sim = Simulator()
    policy = RetryPolicy(max_attempts=10, backoff_s=20 * MS,
                         op_timeout_s=50 * MS)
    cougar = CougarController(sim, name="c0", retry=policy)
    disk = DiskDrive(sim, SMALL_DISK, name="cd0")
    cougar.strings[0].attach(disk)
    payload = pattern(16 * KIB, seed=9)
    disk.poke(0, payload)

    inj = FaultInjector(sim, FaultPlan.of(
        LinkStall(link="c0.s0", at_s=0.0, duration_s=0.3)))
    inj.attach(links=[cougar.strings[0]])

    data = sim.run_process(cougar.read(disk, 0, 32))
    assert data == payload
    # The stall outlived several op deadlines before an attempt fit.
    assert cougar.op_timeouts >= 1
    assert cougar.retries == 0
    assert sim.now >= 0.05


# ---------------------------------------------------------------------------
# host crash: torn write, snapshot, restore
# ---------------------------------------------------------------------------

def test_crashable_device_snapshot_restore_roundtrip():
    sim = Simulator()
    raw = MemoryDevice(sim, 1 * MIB)
    inj = FaultInjector(sim, FaultPlan.of(
        HostCrash(nth_write=3, torn_fraction=0.5)))
    dev = CrashableDevice(raw, inj)
    payloads = [pattern(64 * KIB, seed=i) for i in range(4)]

    def workload():
        for index, payload in enumerate(payloads):
            yield from dev.write(index * 64 * KIB, payload)

    with pytest.raises(CrashPoint) as caught:
        sim.run_process(workload())
    assert inj.crashed
    assert inj.device_writes == 3
    assert inj.m_host_crashes.value == 1

    # Writes 1 and 2 landed whole; write 3 tore at the half-way sector.
    assert raw.peek(0, 64 * KIB) == payloads[0]
    assert raw.peek(64 * KIB, 64 * KIB) == payloads[1]
    torn = raw.peek(128 * KIB, 64 * KIB)
    assert torn[:32 * KIB] == payloads[2][:32 * KIB]
    assert torn[32 * KIB:] == bytes(32 * KIB)

    # The host stays down afterwards.
    with pytest.raises(CrashPoint):
        sim.run_process(dev.read(0, KIB))

    # Restoring the snapshot onto a fresh device reproduces the media.
    snapshot = caught.value.snapshot
    assert snapshot is not None
    sim2 = Simulator()
    raw2 = MemoryDevice(sim2, 1 * MIB)
    restore_media(snapshot, raw2)
    assert raw2.peek(0, 1 * MIB) == raw.peek(0, 1 * MIB)


# ---------------------------------------------------------------------------
# end to end: the acceptance scenario on a full server
# ---------------------------------------------------------------------------

def test_server_survives_disk_death_and_rebuilds_clean():
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.paper_default(
        disk_spec=dataclasses.replace(IBM_0661, capacity_bytes=8 * MIB)))
    raid = server.raid
    base = pattern(2 * MIB, seed=11)
    sim.run_process(raid.write(0, base))

    victim = raid.paths[7].disk
    inj = attach_server(FaultPlan.of(
        DiskDeath(disk=victim.name, at_s=sim.now + 5 * MS)), server)

    def reader():
        for start in range(0, 2 * MIB, 512 * KIB):
            data = yield from raid.read(start, 512 * KIB)
            assert data == base[start:start + 512 * KIB]

    sim.run_process(reader())
    assert victim.failed
    assert raid.degraded_reads > 0
    assert inj.m_disk_deaths.value == 1

    victim.repair()
    row_bytes = raid.layout.data_units_per_row * raid.stripe_unit_bytes
    rows = -(-2 * MIB // row_bytes) + 1
    sim.run_process(raid.rebuild(7, max_rows=rows))
    assert_parity_clean(raid, max_rows=rows)
    assert sim.run_process(raid.read(0, 2 * MIB)) == base
