"""The optimized kernel must stay deterministic: identical workloads on
fresh Simulators must schedule the identical sequence of heap entries.

The trace is captured by hooking ``heapq.heappush`` rather than
``Simulator._enqueue`` — the ``Simulator.timeout()`` fast path pushes
its heap entry inline and never goes through ``_enqueue``, so only the
heappush chokepoint sees every scheduling action.  Each trace record is
a ``(time, kind, event-type, component)`` tuple.
"""

from __future__ import annotations

import gc
import heapq

from repro.sim.core import _KIND_INTERRUPT
from repro.units import KIB


def _component_of(kind: int, obj) -> str | None:
    if kind == _KIND_INTERRUPT:  # obj is (process, exception)
        return obj[0].name
    return getattr(obj, "name", None)


def _traced(run):
    """Run ``run()`` with every heap push recorded; returns
    (result, [(time, kind, event_type, component), ...])."""
    # The hook is a global chokepoint: abandoned generators from other
    # tests push cleanup wakeups into their own (dead) sims' heaps when
    # the GC finalizes them, polluting the trace.  Flush them first.
    gc.collect()
    trace: list[tuple] = []
    original = heapq.heappush

    def hook(heap, entry):
        when, _seq, kind, obj = entry
        trace.append((when, kind, type(obj).__name__,
                      _component_of(kind, obj)))
        return original(heap, entry)

    heapq.heappush = hook
    try:
        result = run()
    finally:
        heapq.heappush = original
    return result, trace


def _assert_identical_twice(run):
    result_a, trace_a = _traced(run)
    result_b, trace_b = _traced(run)
    assert result_a == result_b
    assert len(trace_a) == len(trace_b)
    assert trace_a == trace_b


def test_fig5_trace_identical_across_fresh_simulators():
    from repro.experiments import fig5_hw_throughput as fig5

    _assert_identical_twice(lambda: fig5._measure("read", 256 * KIB, 4, 101))
    _assert_identical_twice(lambda: fig5._measure("write", 256 * KIB, 4, 202))


def test_table2_trace_identical_across_fresh_simulators():
    from repro.experiments import table2_small_io as table2

    _assert_identical_twice(lambda: table2._raid2_rate(4, 6, 42))


def test_tracing_leaves_fingerprint_bit_identical():
    # Observation must never schedule: the heappush fingerprint of a
    # traced run (spans + metrics active) is bit-identical to the
    # plain run's, down to event kinds, times and process names.
    from repro.experiments import fig5_hw_throughput as fig5
    from repro.obs import observe

    def plain():
        return fig5._measure("read", 256 * KIB, 4, 101)

    def traced():
        with observe(trace=True):
            return fig5._measure("read", 256 * KIB, 4, 101)

    result_plain, trace_plain = _traced(plain)
    result_traced, trace_traced = _traced(traced)
    assert result_traced == result_plain
    assert trace_traced == trace_plain


def test_trace_captures_every_scheduling_kind():
    # Sanity-check the harness itself: a workload with timeouts,
    # process starts and interrupts must show all three entry kinds,
    # with process names attached where a component exists.
    from repro.sim import Interrupt, Simulator

    def run():
        sim = Simulator()

        def sleeper():
            try:
                yield sim.timeout(50.0)
            except Interrupt:
                pass
            return sim.now

        def waker(target):
            yield sim.timeout(3.0)
            target.interrupt("poke")

        proc = sim.process(sleeper(), name="sleeper")
        sim.process(waker(proc), name="waker")
        sim.run()
        return proc.value

    result, trace = _traced(run)
    assert result == 3.0
    kinds = {entry[1] for entry in trace}
    assert kinds == {0, 1, 2}
    names = {entry[3] for entry in trace if entry[3] is not None}
    assert {"sleeper", "waker"} <= names
    _assert_identical_twice(run)


def test_empty_fault_plan_leaves_fingerprint_bit_identical():
    # Arming an empty FaultPlan installs the pull hooks on every disk,
    # string and port — but the injector never schedules, so the
    # heappush fingerprint must be bit-identical to an unarmed run.
    import random

    from repro.faults import FaultPlan, attach_server
    from repro.server import Raid2Config, Raid2Server
    from repro.sim import Simulator
    from repro.workloads import random_aligned_offsets, run_request_stream

    def measure(armed: bool):
        sim = Simulator()
        server = Raid2Server(sim, Raid2Config.paper_default())
        if armed:
            attach_server(FaultPlan(), server)
        rng = random.Random(7)
        requests = random_aligned_offsets(
            rng, server.raid.capacity_bytes, 256 * KIB, 4, alignment=512)

        def op(offset, nbytes):
            yield from server.hw_read(offset, nbytes)

        return run_request_stream(sim, op, requests).mb_per_s

    result_plain, trace_plain = _traced(lambda: measure(False))
    result_armed, trace_armed = _traced(lambda: measure(True))
    assert result_armed == result_plain
    assert trace_armed == trace_plain
