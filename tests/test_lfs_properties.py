"""Property-based tests for the Log-Structured File System.

A shadow model (plain dicts of bytes) tracks what the file system
should contain under arbitrary operation sequences; hypothesis drives
the sequences.  Separate properties cover durability (everything
before the last checkpoint/sync survives a crash) and cleaner safety
(cleaning never changes observable contents).
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.errors import FileSystemError
from repro.hw.specs import LFS_SPEC
from repro.lfs import LogStructuredFS
from repro.sim import Simulator
from repro.testing import MemoryDevice
from repro.units import KIB, MIB

FAST_SPEC = dataclasses.replace(LFS_SPEC, segment_bytes=64 * KIB,
                                fs_overhead_s=0.0, small_write_overhead_s=0.0)

FILES = ["/f0", "/f1", "/f2"]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.sampled_from(FILES),
                  st.integers(0, 60_000), st.integers(1, 16_000),
                  st.integers(0, 255)),
        st.tuples(st.just("unlink"), st.sampled_from(FILES)),
        st.tuples(st.just("rename"), st.sampled_from(FILES),
                  st.sampled_from(FILES)),
        st.tuples(st.just("truncate"), st.sampled_from(FILES),
                  st.integers(0, 30_000)),
        st.tuples(st.just("sync"),),
        st.tuples(st.just("checkpoint"),),
        st.tuples(st.just("clean"),),
    ),
    min_size=1, max_size=14,
)


def fresh_fs():
    sim = Simulator()
    device = MemoryDevice(sim, 16 * MIB)
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=64)
    sim.run_process(fs.format())
    return sim, device, fs


def apply_op(sim, fs, shadow, op):
    """Apply one op to both the FS and the shadow model."""
    kind = op[0]
    if kind == "write":
        _k, path, offset, length, fill = op
        payload = bytes([fill]) * length
        if path not in shadow:
            sim.run_process(fs.create(path))
            shadow[path] = bytearray()
        data = shadow[path]
        if len(data) < offset:
            data.extend(bytes(offset - len(data)))
        if len(data) < offset + length:
            data.extend(bytes(offset + length - len(data)))
        data[offset:offset + length] = payload
        sim.run_process(fs.write(path, offset, payload))
    elif kind == "unlink":
        _k, path = op
        if path in shadow:
            del shadow[path]
            sim.run_process(fs.unlink(path))
    elif kind == "rename":
        _k, src, dst = op
        if src in shadow and src != dst:
            shadow[dst] = shadow.pop(src)
            sim.run_process(fs.rename(src, dst))
    elif kind == "truncate":
        _k, path, size = op
        if path in shadow:
            data = shadow[path]
            if size < len(data):
                del data[size:]
            else:
                data.extend(bytes(size - len(data)))
            sim.run_process(fs.truncate(path, size))
    elif kind == "sync":
        sim.run_process(fs.sync())
    elif kind == "checkpoint":
        sim.run_process(fs.checkpoint())
    elif kind == "clean":
        sim.run_process(fs.clean(max_segments=2))
    else:  # pragma: no cover
        raise AssertionError(op)


def check_matches_shadow(sim, fs, shadow):
    for path in FILES:
        if path in shadow:
            expected = bytes(shadow[path])
            attrs = sim.run_process(fs.stat(path))
            assert attrs.size == len(expected)
            got = sim.run_process(fs.read(path, 0, len(expected) + 10))
            assert got == expected
        else:
            assert sim.run_process(fs.exists(path)) is False


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_lfs_matches_shadow_model(ops):
    sim, _device, fs = fresh_fs()
    shadow: dict[str, bytearray] = {}
    for op in ops:
        apply_op(sim, fs, shadow, op)
    check_matches_shadow(sim, fs, shadow)


@given(ops=operations)
@settings(max_examples=25, deadline=None)
def test_lfs_remount_preserves_everything(ops):
    """After a clean unmount + remount, all state survives exactly."""
    sim, device, fs = fresh_fs()
    shadow: dict[str, bytearray] = {}
    for op in ops:
        apply_op(sim, fs, shadow, op)
    sim.run_process(fs.unmount())
    fs2 = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=64)
    sim.run_process(fs2.mount())
    check_matches_shadow(sim, fs2, shadow)


@given(ops=operations)
@settings(max_examples=25, deadline=None)
def test_lfs_crash_after_sync_is_durable(ops):
    """Data present at the last sync survives a crash (roll-forward)."""
    sim, device, fs = fresh_fs()
    shadow: dict[str, bytearray] = {}
    for op in ops:
        apply_op(sim, fs, shadow, op)
    sim.run_process(fs.sync())
    fs.crash()
    fs2 = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=64)
    sim.run_process(fs2.mount())
    check_matches_shadow(sim, fs2, shadow)


@given(ops=operations)
@settings(max_examples=20, deadline=None)
def test_cleaner_never_changes_observable_state(ops):
    sim, _device, fs = fresh_fs()
    shadow: dict[str, bytearray] = {}
    for op in ops:
        if op[0] == "clean":
            continue
        apply_op(sim, fs, shadow, op)
    sim.run_process(fs.sync())
    sim.run_process(fs.clean(max_segments=8))
    check_matches_shadow(sim, fs, shadow)


@given(ops=operations)
@settings(max_examples=20, deadline=None)
def test_usage_accounting_never_negative_and_rebuildable(ops):
    from repro.lfs import recovery

    sim, _device, fs = fresh_fs()
    shadow: dict[str, bytearray] = {}
    for op in ops:
        apply_op(sim, fs, shadow, op)
    for entry in fs.usage:
        assert entry.live_bytes >= 0
    sim.run_process(fs.checkpoint())
    incremental = [entry.live_bytes for entry in fs.usage]
    recovery.rebuild_usage(fs)
    rebuilt = [entry.live_bytes for entry in fs.usage]
    assert rebuilt == incremental
