"""Unit tests for the RAID controllers (timing + byte-level correctness)."""

import dataclasses
import random

import pytest

from repro.errors import UnrecoverableArrayError
from repro.hw import IBM_0661, DiskDrive
from repro.raid import (DirectDiskPath, Raid0Controller, Raid1Controller,
                        Raid3Controller, Raid5Controller)
from repro.sim import Simulator
from repro.units import KIB, MIB, SECTOR_SIZE

SMALL_DISK = dataclasses.replace(IBM_0661, capacity_bytes=4 * MIB)
UNIT = 16 * KIB


def make_array(sim, ndisks):
    return [DirectDiskPath(DiskDrive(sim, SMALL_DISK, name=f"d{i}"))
            for i in range(ndisks)]


def pattern(nbytes: int, seed: int = 0) -> bytes:
    rng = random.Random(seed)
    return rng.randbytes(nbytes)


@pytest.fixture
def sim():
    return Simulator()


# ---------------------------------------------------------------------------
# RAID 0
# ---------------------------------------------------------------------------

def test_raid0_roundtrip(sim):
    ctrl = Raid0Controller(sim, make_array(sim, 4), UNIT)
    payload = pattern(5 * UNIT + 3 * SECTOR_SIZE)

    def body():
        yield from ctrl.write(2 * SECTOR_SIZE, payload)
        data = yield from ctrl.read(2 * SECTOR_SIZE, len(payload))
        return data

    assert sim.run_process(body()) == payload


def test_raid0_failure_is_fatal(sim):
    paths = make_array(sim, 4)
    ctrl = Raid0Controller(sim, paths, UNIT)
    paths[1].disk.fail()

    def body():
        yield from ctrl.read(0, 4 * UNIT)

    with pytest.raises(UnrecoverableArrayError):
        sim.run_process(body())


def test_raid0_spreads_io_across_disks(sim):
    paths = make_array(sim, 4)
    ctrl = Raid0Controller(sim, paths, UNIT)

    def body():
        yield from ctrl.write(0, pattern(8 * UNIT))

    sim.run_process(body())
    assert all(path.disk.writes == 2 for path in paths)


# ---------------------------------------------------------------------------
# RAID 1
# ---------------------------------------------------------------------------

def test_raid1_roundtrip(sim):
    ctrl = Raid1Controller(sim, make_array(sim, 4), UNIT)
    payload = pattern(3 * UNIT)

    def body():
        yield from ctrl.write(0, payload)
        data = yield from ctrl.read(0, len(payload))
        return data

    assert sim.run_process(body()) == payload


def test_raid1_writes_both_copies(sim):
    paths = make_array(sim, 4)
    ctrl = Raid1Controller(sim, paths, UNIT)

    def body():
        yield from ctrl.write(0, pattern(2 * UNIT))

    sim.run_process(body())
    assert [path.disk.writes for path in paths] == [1, 1, 1, 1]


def test_raid1_reads_alternate_between_copies(sim):
    paths = make_array(sim, 2)
    ctrl = Raid1Controller(sim, paths, UNIT)

    def body():
        yield from ctrl.write(0, pattern(UNIT))
        for _ in range(6):
            yield from ctrl.read(0, UNIT)

    sim.run_process(body())
    assert paths[0].disk.reads == 3
    assert paths[1].disk.reads == 3


def test_raid1_survives_single_failure(sim):
    paths = make_array(sim, 2)
    ctrl = Raid1Controller(sim, paths, UNIT)
    payload = pattern(2 * UNIT)

    def body():
        yield from ctrl.write(0, payload)
        paths[0].disk.fail()
        data = yield from ctrl.read(0, len(payload))
        yield from ctrl.write(UNIT, pattern(UNIT, seed=9))
        follow_up = yield from ctrl.read(UNIT, UNIT)
        return data, follow_up

    data, follow_up = sim.run_process(body())
    assert data == payload
    assert follow_up == pattern(UNIT, seed=9)


def test_raid1_double_failure_fatal(sim):
    paths = make_array(sim, 2)
    ctrl = Raid1Controller(sim, paths, UNIT)
    paths[0].disk.fail()
    paths[1].disk.fail()

    def body():
        yield from ctrl.read(0, UNIT)

    with pytest.raises(UnrecoverableArrayError):
        sim.run_process(body())


def test_raid1_rebuild_restores_copy(sim):
    paths = make_array(sim, 2)
    ctrl = Raid1Controller(sim, paths, UNIT)
    payload = pattern(4 * UNIT)

    def body():
        yield from ctrl.write(0, payload)
        paths[0].disk.fail()
        paths[0].disk.repair()
        yield from ctrl.rebuild(0, max_rows=8)
        return paths[0].disk.peek(0, 4 * UNIT // SECTOR_SIZE)

    assert sim.run_process(body()) == payload


# ---------------------------------------------------------------------------
# RAID 5: correctness
# ---------------------------------------------------------------------------

def test_raid5_roundtrip_unaligned(sim):
    ctrl = Raid5Controller(sim, make_array(sim, 5), UNIT)
    payload = pattern(7 * UNIT + 5 * SECTOR_SIZE, seed=1)
    offset = 3 * SECTOR_SIZE

    def body():
        yield from ctrl.write(offset, payload)
        data = yield from ctrl.read(offset, len(payload))
        return data

    assert sim.run_process(body()) == payload
    assert ctrl.verify_parity(max_rows=4)


def test_raid5_full_stripe_write_detected(sim):
    ctrl = Raid5Controller(sim, make_array(sim, 5), UNIT)
    row_bytes = 4 * UNIT

    def body():
        yield from ctrl.write(0, pattern(row_bytes))

    sim.run_process(body())
    assert ctrl.full_stripe_writes == 1
    assert ctrl.rmw_writes == 0
    assert ctrl.verify_parity(max_rows=1)


def test_raid5_full_stripe_write_reads_nothing(sim):
    paths = make_array(sim, 5)
    ctrl = Raid5Controller(sim, paths, UNIT)

    def body():
        yield from ctrl.write(0, pattern(4 * UNIT))

    sim.run_process(body())
    assert sum(path.disk.reads for path in paths) == 0
    assert sum(path.disk.writes for path in paths) == 5  # 4 data + parity


def test_raid5_small_write_costs_four_accesses(sim):
    """The classic small-write penalty: 2 reads + 2 writes."""
    paths = make_array(sim, 5)
    ctrl = Raid5Controller(sim, paths, UNIT)

    def body():
        yield from ctrl.write(0, pattern(4 * KIB))

    sim.run_process(body())
    assert ctrl.rmw_writes == 1
    assert sum(path.disk.reads for path in paths) == 2
    assert sum(path.disk.writes for path in paths) == 2
    assert ctrl.verify_parity(max_rows=1)


def test_raid5_overwrite_keeps_parity_consistent(sim):
    ctrl = Raid5Controller(sim, make_array(sim, 5), UNIT)

    def body():
        yield from ctrl.write(0, pattern(8 * UNIT, seed=1))
        yield from ctrl.write(2 * UNIT, pattern(3 * UNIT, seed=2))
        yield from ctrl.write(5 * SECTOR_SIZE, pattern(2 * SECTOR_SIZE, seed=3))
        data = yield from ctrl.read(0, 8 * UNIT)
        return data

    data = sim.run_process(body())
    expected = bytearray(pattern(8 * UNIT, seed=1))
    expected[2 * UNIT:5 * UNIT] = pattern(3 * UNIT, seed=2)
    expected[5 * SECTOR_SIZE:7 * SECTOR_SIZE] = pattern(2 * SECTOR_SIZE, seed=3)
    assert data == bytes(expected)
    assert ctrl.verify_parity(max_rows=4)


def test_raid5_degraded_read_reconstructs(sim):
    paths = make_array(sim, 5)
    ctrl = Raid5Controller(sim, paths, UNIT)
    payload = pattern(8 * UNIT, seed=4)

    def body():
        yield from ctrl.write(0, payload)
        paths[2].disk.fail()
        data = yield from ctrl.read(0, len(payload))
        return data

    assert sim.run_process(body()) == payload
    assert ctrl.degraded_reads > 0


def test_raid5_degraded_write_then_read(sim):
    paths = make_array(sim, 5)
    ctrl = Raid5Controller(sim, paths, UNIT)

    def body():
        yield from ctrl.write(0, pattern(8 * UNIT, seed=5))
        paths[1].disk.fail()
        yield from ctrl.write(UNIT, pattern(2 * UNIT, seed=6))
        data = yield from ctrl.read(0, 8 * UNIT)
        return data

    data = sim.run_process(body())
    expected = bytearray(pattern(8 * UNIT, seed=5))
    expected[UNIT:3 * UNIT] = pattern(2 * UNIT, seed=6)
    assert data == bytes(expected)


def test_raid5_degraded_full_stripe_write(sim):
    paths = make_array(sim, 5)
    ctrl = Raid5Controller(sim, paths, UNIT)

    def body():
        paths[0].disk.fail()
        yield from ctrl.write(0, pattern(4 * UNIT, seed=7))
        data = yield from ctrl.read(0, 4 * UNIT)
        return data

    assert sim.run_process(body()) == pattern(4 * UNIT, seed=7)


def test_raid5_double_failure_fatal(sim):
    paths = make_array(sim, 5)
    ctrl = Raid5Controller(sim, paths, UNIT)

    def body():
        yield from ctrl.write(0, pattern(4 * UNIT))
        paths[0].disk.fail()
        paths[1].disk.fail()
        yield from ctrl.read(0, 4 * UNIT)

    with pytest.raises(UnrecoverableArrayError):
        sim.run_process(body())


def test_raid5_rebuild_restores_failed_disk(sim):
    paths = make_array(sim, 5)
    ctrl = Raid5Controller(sim, paths, UNIT)
    payload = pattern(16 * UNIT, seed=8)

    def body():
        yield from ctrl.write(0, payload)
        before = paths[3].disk.peek(0, 4 * UNIT // SECTOR_SIZE)
        paths[3].disk.fail()
        paths[3].disk.repair()  # replacement disk, blank
        yield from ctrl.rebuild(3, max_rows=4)
        after = paths[3].disk.peek(0, 4 * UNIT // SECTOR_SIZE)
        data = yield from ctrl.read(0, len(payload))
        return before, after, data

    before, after, data = sim.run_process(body())
    assert after == before
    assert data == payload
    assert ctrl.verify_parity(max_rows=4)


def test_raid5_concurrent_small_writes_same_row_stay_consistent(sim):
    paths = make_array(sim, 5)
    ctrl = Raid5Controller(sim, paths, UNIT)

    def writer(k, seed):
        yield from ctrl.write(k * UNIT, pattern(UNIT, seed=seed))

    for k in range(4):
        sim.process(writer(k, seed=10 + k))
    sim.run()
    assert ctrl.verify_parity(max_rows=1)
    for k in range(4):
        assert ctrl.peek(k * UNIT, UNIT) == pattern(UNIT, seed=10 + k)


def test_raid5_concurrent_small_writes_disjoint_disks_parallel():
    """Independent small I/Os on disjoint disks overlap in time.

    This is Level 5's advantage over Level 3 (Section 4.2).  Unit 1
    (row 0) uses disks {1, 4}; unit 7 (row 1) uses disks {2, 3} —
    disjoint, so the two RMW writes should proceed concurrently.
    """
    def run(concurrent):
        local = Simulator()
        ctrl = Raid5Controller(local, make_array(local, 5), UNIT)

        def writer(unit_index, seed):
            yield from ctrl.write(unit_index * UNIT, pattern(4 * KIB, seed))

        if concurrent:
            local.process(writer(1, 1))
            local.process(writer(7, 2))
            return local.run()

        def serial():
            yield from writer(1, 1)
            yield from writer(7, 2)

        local.run_process(serial())
        return local.now

    assert run(concurrent=True) < 0.7 * run(concurrent=False)


# ---------------------------------------------------------------------------
# RAID 3
# ---------------------------------------------------------------------------

def test_raid3_roundtrip(sim):
    ctrl = Raid3Controller(sim, make_array(sim, 5))
    payload = pattern(16 * KIB, seed=11)

    def body():
        yield from ctrl.write(0, payload)
        data = yield from ctrl.read(0, len(payload))
        return data

    assert sim.run_process(body()) == payload
    assert ctrl.verify_parity(max_rows=8)


def test_raid3_unaligned_write_rmw(sim):
    ctrl = Raid3Controller(sim, make_array(sim, 5))

    def body():
        yield from ctrl.write(0, pattern(8 * KIB, seed=12))
        yield from ctrl.write(3 * SECTOR_SIZE, pattern(SECTOR_SIZE, seed=13))
        data = yield from ctrl.read(0, 8 * KIB)
        return data

    data = sim.run_process(body())
    expected = bytearray(pattern(8 * KIB, seed=12))
    expected[3 * SECTOR_SIZE:4 * SECTOR_SIZE] = pattern(SECTOR_SIZE, seed=13)
    assert data == bytes(expected)
    assert ctrl.verify_parity(max_rows=4)


def test_raid3_engages_all_data_disks_per_read(sim):
    paths = make_array(sim, 5)
    ctrl = Raid3Controller(sim, paths, name="r3")

    def body():
        yield from ctrl.write(0, pattern(8 * KIB))
        for path in paths:
            path.disk.reads = 0
        yield from ctrl.read(0, 4 * KIB)

    sim.run_process(body())
    # All four data disks were read, even for a small request.
    assert all(path.disk.reads == 1 for path in paths[:4])


def test_raid3_serializes_concurrent_ios():
    """RAID 3 supports only one small I/O at a time (Section 4.2).

    Two concurrent small reads take as long as running them back to
    back — the array-wide lock forbids any overlap.
    """
    def run(concurrent):
        local = Simulator()
        ctrl = Raid3Controller(local, make_array(local, 5))

        def setup():
            yield from ctrl.write(0, pattern(64 * KIB))

        local.run_process(setup())
        base = local.now

        def reader(offset):
            yield from ctrl.read(offset, 4 * KIB)

        if concurrent:
            local.process(reader(0))
            local.process(reader(32 * KIB))
            local.run()
        else:
            def serial():
                yield from reader(0)
                yield from reader(32 * KIB)

            local.run_process(serial())
        return local.now - base

    concurrent_time = run(concurrent=True)
    serial_time = run(concurrent=False)
    assert concurrent_time >= 0.95 * serial_time
