"""Tests for the RAID file client library (raid_open/read/write/close)."""

import random

import pytest

from repro.client import RaidFileClient
from repro.errors import ProtocolError
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB, MIB


@pytest.fixture
def setup():
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    sim.run_process(server.setup_lfs())
    client = RaidFileClient(sim, server)
    return sim, server, client


def pattern(nbytes, seed=0):
    return random.Random(seed).randbytes(nbytes)


def test_open_write_read_close_roundtrip(setup):
    sim, _server, client = setup
    payload = pattern(1 * MIB, seed=1)

    def body():
        fd = yield from client.open("/data")
        yield from client.write(fd, 0, payload)
        data = yield from client.read(fd, 0, len(payload))
        yield from client.close(fd)
        return data

    assert sim.run_process(body()) == payload
    assert client.open_files == 0


def test_open_creates_missing_file(setup):
    sim, server, client = setup

    def body():
        fd = yield from client.open("/fresh")
        yield from client.close(fd)

    sim.run_process(body())
    assert sim.run_process(server.fs.exists("/fresh")) is True


def test_two_handles_independent(setup):
    sim, _server, client = setup

    def body():
        fd_a = yield from client.open("/a")
        fd_b = yield from client.open("/b")
        yield from client.write(fd_a, 0, b"A" * 8192)
        yield from client.write(fd_b, 0, b"B" * 8192)
        a = yield from client.read(fd_a, 0, 8192)
        b = yield from client.read(fd_b, 0, 8192)
        return a, b

    a, b = sim.run_process(body())
    assert a == b"A" * 8192
    assert b == b"B" * 8192
    assert client.open_files == 2


def test_closed_handle_rejected(setup):
    sim, _server, client = setup

    def body():
        fd = yield from client.open("/x")
        yield from client.close(fd)
        yield from client.read(fd, 0, 10)

    with pytest.raises(ProtocolError):
        sim.run_process(body())


def test_bad_fd_rejected(setup):
    sim, _server, client = setup

    def body():
        yield from client.read(99, 0, 10)

    with pytest.raises(ProtocolError):
        sim.run_process(body())


def test_transfer_rate_is_client_limited(setup):
    """A single SPARCstation client lands near the paper's ~3 MB/s."""
    sim, _server, client = setup
    payload = pattern(2 * MIB, seed=2)

    def body():
        fd = yield from client.open("/rate")
        start = sim.now
        yield from client.write(fd, 0, payload)
        write_time = sim.now - start
        start = sim.now
        yield from client.read(fd, 0, len(payload))
        read_time = sim.now - start
        return write_time, read_time

    write_time, read_time = sim.run_process(body())
    write_rate = len(payload) / 1e6 / write_time
    read_rate = len(payload) / 1e6 / read_time
    assert 2.0 < write_rate < 4.5
    assert 2.0 < read_rate < 4.5
