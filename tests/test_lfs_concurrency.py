"""Concurrency tests: LFS under simultaneous client activity.

The file system serializes operations on its op lock (one host CPU,
as on Sprite); these tests check that arbitrary interleavings of
concurrent processes never corrupt state or lose writes.
"""

import dataclasses
import random

import pytest

from repro.hw.specs import LFS_SPEC
from repro.lfs import LogStructuredFS
from repro.sim import Simulator
from repro.testing import MemoryDevice
from repro.units import KIB, MIB

FAST_SPEC = dataclasses.replace(LFS_SPEC, segment_bytes=128 * KIB,
                                fs_overhead_s=0.0005,
                                small_write_overhead_s=0.0005)


def make_fs(capacity=16 * MIB):
    sim = Simulator()
    device = MemoryDevice(sim, capacity)
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=128)
    sim.run_process(fs.format())
    return sim, device, fs


def pattern(nbytes, seed):
    return random.Random(seed).randbytes(nbytes)


def test_concurrent_writers_to_distinct_files():
    sim, _device, fs = make_fs()
    nwriters = 6
    per_file = 256 * KIB

    def writer(index):
        path = f"/w{index}"
        yield from fs.create(path)
        payload = pattern(per_file, seed=index)
        for position in range(0, per_file, 32 * KIB):
            yield from fs.write(path, position,
                                payload[position:position + 32 * KIB])

    for index in range(nwriters):
        sim.process(writer(index))
    sim.run()
    sim.run_process(fs.sync())

    for index in range(nwriters):
        data = sim.run_process(fs.read(f"/w{index}", 0, per_file))
        assert data == pattern(per_file, seed=index)


def test_concurrent_reader_and_writer_on_one_file():
    """A reader racing a writer sees either old or new bytes per op,
    never torn garbage, and the final state is the last write."""
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/shared"))
    versions = [pattern(64 * KIB, seed=100 + v) for v in range(8)]
    sim.run_process(fs.write("/shared", 0, versions[0]))
    observed = []

    def writer():
        for version in versions[1:]:
            yield from fs.write("/shared", 0, version)

    def reader():
        for _ in range(12):
            data = yield from fs.read("/shared", 0, 64 * KIB)
            observed.append(data)

    sim.process(writer())
    sim.process(reader())
    sim.run()

    valid = {bytes(v) for v in versions}
    for data in observed:
        assert data in valid
    final = sim.run_process(fs.read("/shared", 0, 64 * KIB))
    assert final == versions[-1]


def test_concurrent_namespace_operations():
    sim, _device, fs = make_fs()

    def creator(base):
        for index in range(10):
            yield from fs.create(f"/{base}-{index}")

    for base in ("a", "b", "c"):
        sim.process(creator(base))
    sim.run()
    entries = sim.run_process(fs.readdir("/"))
    assert len(entries) == 30


def test_concurrent_create_then_unlink_interleaved():
    sim, _device, fs = make_fs()

    def churner(base):
        for index in range(8):
            path = f"/{base}{index}"
            yield from fs.create(path)
            yield from fs.write(path, 0, pattern(8 * KIB, seed=index))
            if index % 2 == 0:
                yield from fs.unlink(path)

    sim.process(churner("x"))
    sim.process(churner("y"))
    sim.run()
    entries = sim.run_process(fs.readdir("/"))
    assert sorted(entries) == sorted(
        [f"x{i}" for i in range(8) if i % 2] +
        [f"y{i}" for i in range(8) if i % 2])


def test_sync_races_with_writes():
    """Periodic syncs interleaved with writers must not lose data."""
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    total = 512 * KIB
    payload = pattern(total, seed=7)

    def writer():
        for position in range(0, total, 16 * KIB):
            yield from fs.write("/f", position,
                                payload[position:position + 16 * KIB])

    def syncer():
        for _ in range(6):
            yield fs.sim.timeout(0.05)
            yield from fs.sync()

    sim.process(writer())
    sim.process(syncer())
    sim.run()
    sim.run_process(fs.sync())
    assert sim.run_process(fs.read("/f", 0, total)) == payload

    # And the synced state survives a crash.
    fs.crash()
    fs2 = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=128)
    sim.run_process(fs2.mount())
    assert sim.run_process(fs2.read("/f", 0, total)) == payload


def test_checkpoint_races_with_writes():
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    payload = pattern(256 * KIB, seed=9)

    def writer():
        for position in range(0, len(payload), 32 * KIB):
            yield from fs.write("/f", position,
                                payload[position:position + 32 * KIB])

    def checkpointer():
        for _ in range(3):
            yield fs.sim.timeout(0.07)
            yield from fs.checkpoint()

    sim.process(writer())
    sim.process(checkpointer())
    sim.run()
    sim.run_process(fs.checkpoint())
    fs.crash()
    fs2 = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=128)
    sim.run_process(fs2.mount())
    assert sim.run_process(fs2.read("/f", 0, len(payload))) == payload
