"""Tests for the offline LFS consistency checker."""

import dataclasses
import random

import pytest

from repro.analysis import fsck
from repro.errors import ConsistencyError
from repro.hw.specs import LFS_SPEC
from repro.lfs import LogStructuredFS
from repro.lfs.ondisk import BLOCK_SIZE, NULL_ADDR
from repro.sim import Simulator
from repro.testing import MemoryDevice, assert_fs_consistent
from repro.units import KIB, MIB

FAST_SPEC = dataclasses.replace(LFS_SPEC, segment_bytes=128 * KIB,
                                fs_overhead_s=0.0, small_write_overhead_s=0.0)


def make_fs(capacity=8 * MIB):
    sim = Simulator()
    device = MemoryDevice(sim, capacity)
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=256)
    sim.run_process(fs.format())
    return sim, device, fs


def populate(sim, fs):
    sim.run_process(fs.mkdir("/dir"))
    sim.run_process(fs.create("/dir/file"))
    payload = random.Random(0).randbytes(300 * KIB)  # spills into indirects
    sim.run_process(fs.write("/dir/file", 0, payload))
    sim.run_process(fs.create("/small"))
    sim.run_process(fs.write("/small", 0, b"tiny"))
    sim.run_process(fs.checkpoint())


def test_clean_volume_passes():
    sim, _device, fs = make_fs()
    populate(sim, fs)
    report = fsck(fs)
    assert report.ok, report.render()
    assert report.files == 2
    assert report.directories == 2  # root + /dir
    assert report.blocks_claimed > 0


def test_unflushed_state_is_reported():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"x"))
    report = fsck(fs)
    assert "FSCK-STATE" in report.codes()


def test_corrupted_imap_entry_is_caught():
    sim, _device, fs = make_fs()
    populate(sim, fs)
    # Point an allocated inode's imap entry one block off, bypassing the
    # dirty tracking so memory and disk now silently disagree.
    ino = next(iter(fs.iter_allocated_inodes()))
    fs.imap._addrs[ino] += 1
    report = fsck(fs)
    assert not report.ok
    assert "FSCK-IMAP" in report.codes()


def test_zeroed_inode_block_is_caught():
    sim, device, fs = make_fs()
    populate(sim, fs)
    addr = fs.imap.get(2)
    device.poke(addr * BLOCK_SIZE, bytes(BLOCK_SIZE))
    report = fsck(fs)
    assert "FSCK-INODE" in report.codes()


def test_double_allocation_is_caught():
    sim, _device, fs = make_fs()
    populate(sim, fs)
    # Make two inodes share one on-disk inode block.
    inos = list(fs.iter_allocated_inodes())
    a, b = inos[-2], inos[-1]
    fs.imap._addrs[b] = fs.imap._addrs[a]
    report = fsck(fs)
    assert "FSCK-DUP" in report.codes()


def test_orphaned_inode_is_caught():
    sim, _device, fs = make_fs()
    populate(sim, fs)
    # Drop a directory entry without freeing the inode.
    entries = sim.run_process(fs.readdir("/"))
    assert "small" in entries
    inode = sim.run_process(fs.stat("/small"))
    del entries["small"]
    root = fs._inodes[1]
    sim.run_process(fs._locked(fs._write_dir(root, entries)))
    sim.run_process(fs.checkpoint())
    report = fsck(fs)
    assert "FSCK-TREE" in report.codes()
    assert any(str(inode.ino) in f.message for f in report.findings)


def test_usage_table_drift_is_caught():
    sim, _device, fs = make_fs()
    populate(sim, fs)
    dirty = [entry for entry in fs.usage if entry.live_bytes]
    dirty[0].live_bytes += BLOCK_SIZE
    report = fsck(fs)
    assert "FSCK-USAGE" in report.codes()


def test_dangling_pointer_past_eof_is_caught():
    sim, _device, fs = make_fs()
    populate(sim, fs)
    inode = fs._inodes[1]  # root dir: small file, one block
    free_slot = next(i for i, a in enumerate(inode.direct)
                     if a == NULL_ADDR)
    inode.direct[free_slot] = fs.imap.get(1)  # any in-log address
    fs._dirty_inodes.add(1)
    sim.run_process(fs.checkpoint())  # persist the bad pointer
    report = fsck(fs)
    assert "FSCK-EOF" in report.codes()


def test_assert_fs_consistent_hook():
    sim, _device, fs = make_fs()
    populate(sim, fs)
    assert_fs_consistent(fs)  # flushes and passes

    ino = next(iter(fs.iter_allocated_inodes()))
    fs.imap._addrs[ino] += 1
    with pytest.raises(ConsistencyError) as excinfo:
        assert_fs_consistent(fs)
    assert "FSCK" in str(excinfo.value)
    fs.imap._addrs[ino] -= 1


def test_cli_fsck_exit_codes(tmp_path):
    from repro.analysis.__main__ import main

    sim, device, fs = make_fs(capacity=4 * MIB)
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"hello" * 1000))
    sim.run_process(fs.unmount())
    image = device.peek(0, device.capacity_bytes)

    good = tmp_path / "vol.img"
    good.write_bytes(image)
    assert main(["fsck", str(good)]) == 0

    # Re-mount a copy and zero the file's inode block on disk.
    sim2 = Simulator()
    device2 = MemoryDevice(sim2, len(image))
    device2.poke(0, image)
    fs2 = LogStructuredFS(sim2, device2, spec=FAST_SPEC)
    sim2.run_process(fs2.mount())
    addr = fs2.imap.get(2)
    device2.poke(addr * BLOCK_SIZE, bytes(BLOCK_SIZE))
    bad = tmp_path / "bad.img"
    bad.write_bytes(device2.peek(0, len(image)))
    assert main(["fsck", str(bad)]) != 0
