"""Unit tests for LFS on-disk structure serialization."""

import pytest

from repro.errors import CorruptFileSystemError
from repro.lfs.directory import (decode_directory, encode_directory,
                                 split_path, validate_name)
from repro.lfs.imap import PENDING, InodeMap
from repro.lfs.ondisk import (BLOCK_SIZE, MAX_FRAGMENT_PAYLOAD, BlockId,
                              BlockKind, Checkpoint, FileType,
                              FragmentSummary, Inode, SegmentState,
                              SegmentUsage, Superblock,
                              decode_pointer_block, encode_pointer_block,
                              ADDRS_PER_BLOCK, N_DIRECT)
from repro.errors import FileSystemError


# ---------------------------------------------------------------------------
# superblock
# ---------------------------------------------------------------------------

def make_superblock():
    return Superblock(block_size=BLOCK_SIZE, segment_blocks=240,
                      nsegments=100, first_segment_block=5,
                      checkpoint_blocks=2, checkpoint_a=1, checkpoint_b=3,
                      max_inodes=1024)


def test_superblock_roundtrip():
    sb = make_superblock()
    assert Superblock.decode(sb.encode()) == sb


def test_superblock_is_one_block():
    assert len(make_superblock().encode()) == BLOCK_SIZE


def test_superblock_corruption_detected():
    block = bytearray(make_superblock().encode())
    block[10] ^= 0xFF
    with pytest.raises(CorruptFileSystemError):
        Superblock.decode(bytes(block))


def test_superblock_zeros_rejected():
    with pytest.raises(CorruptFileSystemError):
        Superblock.decode(bytes(BLOCK_SIZE))


# ---------------------------------------------------------------------------
# checkpoint
# ---------------------------------------------------------------------------

def make_checkpoint():
    return Checkpoint(
        seq=7, next_fragment_seq=42, head_segment=3, head_offset=17,
        imap_addrs=[11, 12, 0],
        usage=[SegmentUsage(SegmentState.DIRTY, 8192, 5),
               SegmentUsage(SegmentState.CLEAN, 0, 0),
               SegmentUsage(SegmentState.CURRENT, 4096, 41)])


def test_checkpoint_roundtrip():
    cp = make_checkpoint()
    decoded = Checkpoint.decode(cp.encode(region_blocks=2))
    assert decoded.seq == cp.seq
    assert decoded.next_fragment_seq == cp.next_fragment_seq
    assert decoded.head_segment == cp.head_segment
    assert decoded.head_offset == cp.head_offset
    assert decoded.imap_addrs == cp.imap_addrs
    assert [(u.state, u.live_bytes, u.last_seq) for u in decoded.usage] == \
        [(u.state, u.live_bytes, u.last_seq) for u in cp.usage]


def test_checkpoint_corruption_detected():
    raw = bytearray(make_checkpoint().encode(region_blocks=2))
    raw[20] ^= 0x01
    with pytest.raises(CorruptFileSystemError):
        Checkpoint.decode(bytes(raw))


def test_checkpoint_too_big_for_region():
    cp = Checkpoint(seq=1, next_fragment_seq=1, head_segment=0,
                    head_offset=0, imap_addrs=[],
                    usage=[SegmentUsage() for _ in range(1000)])
    with pytest.raises(CorruptFileSystemError):
        cp.encode(region_blocks=1)


# ---------------------------------------------------------------------------
# fragment summary
# ---------------------------------------------------------------------------

def test_summary_roundtrip():
    entries = (BlockId(BlockKind.DATA, 5, 9),
               BlockId(BlockKind.INODE, 5, 0),
               BlockId(BlockKind.IMAP, 0, 1))
    summary = FragmentSummary(seq=9, segment=4, entries=entries)
    decoded = FragmentSummary.decode(summary.encode())
    assert decoded == summary


def test_summary_is_one_block():
    summary = FragmentSummary(seq=1, segment=0, entries=())
    assert len(summary.encode()) == BLOCK_SIZE


def test_summary_max_payload_fits():
    entries = tuple(BlockId(BlockKind.DATA, 1, i)
                    for i in range(MAX_FRAGMENT_PAYLOAD))
    summary = FragmentSummary(seq=1, segment=0, entries=entries)
    assert FragmentSummary.decode(summary.encode()).entries == entries


def test_summary_corruption_detected():
    summary = FragmentSummary(seq=1, segment=0,
                              entries=(BlockId(BlockKind.DATA, 1, 2),))
    raw = bytearray(summary.encode())
    raw[8] ^= 0xFF
    with pytest.raises(CorruptFileSystemError):
        FragmentSummary.decode(bytes(raw))


def test_summary_zeros_rejected():
    with pytest.raises(CorruptFileSystemError):
        FragmentSummary.decode(bytes(BLOCK_SIZE))


# ---------------------------------------------------------------------------
# inode
# ---------------------------------------------------------------------------

def test_inode_roundtrip():
    inode = Inode(7, FileType.REGULAR, size=123456, nlink=1, mtime=3.5)
    inode.direct[0] = 99
    inode.direct[N_DIRECT - 1] = 100
    inode.indirect = 101
    inode.dindirect = 102
    decoded = Inode.decode(inode.encode())
    assert decoded.ino == 7
    assert decoded.ftype == FileType.REGULAR
    assert decoded.size == 123456
    assert decoded.mtime == 3.5
    assert decoded.direct == inode.direct
    assert decoded.indirect == 101
    assert decoded.dindirect == 102


def test_inode_copy_is_independent():
    inode = Inode(1, FileType.DIRECTORY)
    dup = inode.copy()
    dup.direct[0] = 55
    assert inode.direct[0] == 0


def test_inode_corruption_detected():
    raw = bytearray(Inode(1, FileType.REGULAR).encode())
    raw[40] ^= 0xFF
    with pytest.raises(CorruptFileSystemError):
        Inode.decode(bytes(raw))


# ---------------------------------------------------------------------------
# pointer blocks
# ---------------------------------------------------------------------------

def test_pointer_block_roundtrip():
    addrs = list(range(ADDRS_PER_BLOCK))
    assert decode_pointer_block(encode_pointer_block(addrs)) == addrs


def test_pointer_block_wrong_size_rejected():
    with pytest.raises(CorruptFileSystemError):
        encode_pointer_block([1, 2, 3])


# ---------------------------------------------------------------------------
# inode map
# ---------------------------------------------------------------------------

def test_imap_allocate_and_free():
    imap = InodeMap(100)
    a = imap.allocate()
    b = imap.allocate()
    assert a != b
    assert imap.get(a) == PENDING
    imap.set(a, 500)
    imap.free(a)
    assert not imap.is_allocated(a)
    with pytest.raises(FileSystemError):
        imap.free(a)


def test_imap_block_roundtrip():
    imap = InodeMap(1024)
    imap.set(1, 111)
    imap.set(600, 222)
    other = InodeMap(1024)
    for index in range(imap.n_blocks):
        other.load_block(index, imap.encode_block(index))
    assert other.get(1) == 111
    assert other.get(600) == 222
    assert other.allocated_inodes() == [1, 600]


def test_imap_pending_never_encodes():
    imap = InodeMap(100)
    ino = imap.allocate()
    with pytest.raises(CorruptFileSystemError):
        imap.encode_block(ino // 512)


def test_imap_exhaustion():
    imap = InodeMap(2)  # rounds up to one imap block
    count = 0
    with pytest.raises(FileSystemError):
        while True:
            imap.allocate()
            count += 1
    assert count > 0


def test_imap_out_of_range():
    imap = InodeMap(100)
    with pytest.raises(FileSystemError):
        imap.get(0)
    with pytest.raises(FileSystemError):
        imap.get(imap.max_inodes)


# ---------------------------------------------------------------------------
# directories
# ---------------------------------------------------------------------------

def test_directory_roundtrip():
    entries = {"alpha": (2, FileType.REGULAR),
               "beta": (3, FileType.DIRECTORY)}
    assert decode_directory(encode_directory(entries)) == entries


def test_directory_empty():
    assert decode_directory(encode_directory({})) == {}


def test_directory_bad_names():
    for name in ("", ".", "..", "a/b", "nul\x00char", "x" * 300):
        with pytest.raises(FileSystemError):
            validate_name(name)


def test_directory_unicode_names():
    entries = {"héllo-wörld": (9, FileType.REGULAR)}
    assert decode_directory(encode_directory(entries)) == entries


def test_directory_truncated_rejected():
    payload = encode_directory({"abc": (2, FileType.REGULAR)})
    with pytest.raises(CorruptFileSystemError):
        decode_directory(payload[:-2])


def test_split_path():
    assert split_path("/") == []
    assert split_path("/a/b/c") == ["a", "b", "c"]
    assert split_path("/a//b/") == ["a", "b"]
    with pytest.raises(FileSystemError):
        split_path("relative/path")
