"""Crash-recovery tests: checkpoints, roll-forward, torn writes."""

import dataclasses
import random

import pytest

from repro.errors import CorruptFileSystemError
from repro.hw.specs import LFS_SPEC
from repro.lfs import LogStructuredFS
from repro.lfs.ondisk import BLOCK_SIZE
from repro.sim import Simulator
from repro.testing import CrashingDevice, MemoryDevice, PowerFailure
from repro.units import KIB, MIB

FAST_SPEC = dataclasses.replace(LFS_SPEC, segment_bytes=128 * KIB,
                                fs_overhead_s=0.0, small_write_overhead_s=0.0)


def make_fs(capacity=8 * MIB):
    sim = Simulator()
    device = MemoryDevice(sim, capacity)
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=256)
    sim.run_process(fs.format())
    return sim, device, fs


def remount(sim, device):
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=256)
    sim.run_process(fs.mount())
    return fs


def pattern(nbytes, seed=0):
    return random.Random(seed).randbytes(nbytes)


# ---------------------------------------------------------------------------
# clean shutdown / checkpoint behaviour
# ---------------------------------------------------------------------------

def test_checkpointed_state_survives_crash():
    sim, device, fs = make_fs()
    payload = pattern(50 * KIB, seed=1)
    sim.run_process(fs.mkdir("/dir"))
    sim.run_process(fs.create("/dir/file"))
    sim.run_process(fs.write("/dir/file", 0, payload))
    sim.run_process(fs.checkpoint())
    fs.crash()

    fs2 = remount(sim, device)
    assert sim.run_process(fs2.read("/dir/file", 0, len(payload))) == payload


def test_unsynced_data_lost_after_crash():
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.checkpoint())
    sim.run_process(fs.write("/f", 0, b"buffered only"))
    fs.crash()  # the segment buffer never reached disk

    fs2 = remount(sim, device)
    assert sim.run_process(fs2.read("/f", 0, 100)) == b""


def test_synced_but_not_checkpointed_data_rolls_forward():
    """sync() flushes fragments; roll-forward must recover them."""
    sim, device, fs = make_fs()
    payload = pattern(30 * KIB, seed=2)
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.checkpoint())
    sim.run_process(fs.write("/f", 0, payload))
    sim.run_process(fs.sync())  # fragments on disk, checkpoint stale
    fs.crash()

    fs2 = remount(sim, device)
    assert sim.run_process(fs2.read("/f", 0, len(payload))) == payload


def test_file_created_after_checkpoint_rolls_forward():
    sim, device, fs = make_fs()
    sim.run_process(fs.checkpoint())
    sim.run_process(fs.create("/late"))
    sim.run_process(fs.write("/late", 0, b"made it"))
    sim.run_process(fs.sync())
    fs.crash()

    fs2 = remount(sim, device)
    assert sim.run_process(fs2.read("/late", 0, 7)) == b"made it"


def test_unlink_after_checkpoint_rolls_forward():
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/doomed"))
    sim.run_process(fs.checkpoint())
    sim.run_process(fs.unlink("/doomed"))
    sim.run_process(fs.sync())
    fs.crash()

    fs2 = remount(sim, device)
    assert sim.run_process(fs2.exists("/doomed")) is False


def test_multiple_checkpoints_alternate_regions():
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    for round_no in range(4):
        sim.run_process(fs.write("/f", 0, b"round %d" % round_no))
        sim.run_process(fs.checkpoint())
    fs.crash()
    fs2 = remount(sim, device)
    assert sim.run_process(fs2.read("/f", 0, 7)) == b"round 3"


def test_mount_without_format_fails():
    sim = Simulator()
    device = MemoryDevice(sim, 8 * MIB)
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC)
    with pytest.raises(CorruptFileSystemError):
        sim.run_process(fs.mount())


def test_recovery_is_fast_relative_to_volume():
    """The paper's claim: recovery processes only the tail, not the disk.

    Mount time after a crash must not scale with the amount of
    checkpointed data (the instant usage scan is untimed; the timed
    part reads the checkpoint and imap only).
    """
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/big"))
    sim.run_process(fs.write("/big", 0, pattern(2 * MIB, seed=3)))
    sim.run_process(fs.checkpoint())
    fs.crash()

    start = sim.now
    remount(sim, device)
    mount_time = sim.now - start
    # Far less than reading 2 MiB at the device's 100 MB/s (20 ms+).
    assert mount_time < 0.01


# ---------------------------------------------------------------------------
# torn writes / power failures mid-flush
# ---------------------------------------------------------------------------

def crash_during_workload(budget_bytes):
    """Run a deterministic workload that dies after ``budget_bytes`` of
    device writes; return (sim, raw_device, shadow-of-checkpointed-data)."""
    sim = Simulator()
    raw = MemoryDevice(sim, 8 * MIB)
    fs = LogStructuredFS(sim, raw, spec=FAST_SPEC, max_inodes=256)
    sim.run_process(fs.format())
    payload_a = pattern(40 * KIB, seed=10)
    sim.run_process(fs.create("/stable"))
    sim.run_process(fs.write("/stable", 0, payload_a))
    sim.run_process(fs.checkpoint())
    fs.crash()

    # Phase 2: remount through a crashing device and write more.
    crashing = CrashingDevice(raw, budget_bytes)
    fs2 = LogStructuredFS(sim, crashing, spec=FAST_SPEC, max_inodes=256)
    sim.run_process(fs2.mount())
    died = False
    try:
        def work():
            yield from fs2.create("/fresh")
            for index in range(8):
                yield from fs2.write("/fresh", index * 8 * KIB,
                                     pattern(8 * KIB, seed=20 + index))
                yield from fs2.sync()
            yield from fs2.checkpoint()

        sim.run_process(work())
    except PowerFailure:
        died = True
    fs2.crash()
    return sim, raw, payload_a, died


@pytest.mark.parametrize("budget", [0, 1000, 5000, 20_000, 60_000, 120_000])
def test_recovery_after_power_failure_at_any_point(budget):
    """Whatever the crash point, mount succeeds and checkpointed data
    is intact; recovered state is a consistent prefix of the workload."""
    sim, raw, payload_a, _died = crash_during_workload(budget)
    fs = LogStructuredFS(sim, raw, spec=FAST_SPEC, max_inodes=256)
    sim.run_process(fs.mount())
    assert sim.run_process(fs.read("/stable", 0, len(payload_a))) == payload_a
    # /fresh either doesn't exist or holds a prefix of the writes.
    if sim.run_process(fs.exists("/fresh")):
        attrs = sim.run_process(fs.stat("/fresh"))
        assert attrs.size % (8 * KIB) == 0
        nchunks = attrs.size // (8 * KIB)
        for index in range(nchunks):
            got = sim.run_process(fs.read("/fresh", index * 8 * KIB, 8 * KIB))
            assert got == pattern(8 * KIB, seed=20 + index)


def test_torn_checkpoint_falls_back_to_older_region():
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"v1"))
    sim.run_process(fs.checkpoint())
    cp_seq = fs.checkpoint_seq
    sim.run_process(fs.write("/f", 0, b"v2"))
    sim.run_process(fs.checkpoint())
    # Corrupt the newest checkpoint region (the one cp_seq+1 used).
    sb = fs.sb
    region = sb.checkpoint_a if (cp_seq + 1) % 2 else sb.checkpoint_b
    device.poke(region * BLOCK_SIZE + 8, b"\xde\xad\xbe\xef")
    fs.crash()

    fs2 = remount(sim, device)
    # Fell back to the older checkpoint, then roll-forward replays the
    # v2 fragments — data is still current.
    assert sim.run_process(fs2.read("/f", 0, 2)) == b"v2"


def test_usage_rebuild_matches_accounting():
    """Live-byte accounting after remount equals the incremental one."""
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/a"))
    sim.run_process(fs.write("/a", 0, pattern(100 * KIB, seed=4)))
    sim.run_process(fs.create("/b"))
    sim.run_process(fs.write("/b", 0, pattern(60 * KIB, seed=5)))
    sim.run_process(fs.unlink("/a"))
    sim.run_process(fs.checkpoint())
    incremental = [entry.live_bytes for entry in fs.usage]
    fs.crash()

    fs2 = remount(sim, device)
    rebuilt = [entry.live_bytes for entry in fs2.usage]
    assert rebuilt == incremental
