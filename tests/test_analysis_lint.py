"""Unit tests for the static lint framework and its rules."""

import textwrap
from pathlib import Path

from repro.analysis import Linter, all_rules, lint_paths


def run(snippet: str):
    """Lint one dedented snippet and return the findings."""
    return Linter().run_text(textwrap.dedent(snippet))


def codes(snippet: str):
    return [finding.code for finding in run(snippet)]


def test_rules_are_registered():
    registered = {cls.code for cls in all_rules()}
    assert {"SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
            "UNIT001", "UNIT002"} <= registered


# ---------------------------------------------------------------------------
# SIM001: dropped Event / process calls
# ---------------------------------------------------------------------------

def test_sim001_unyielded_process_call_in_generator():
    found = run("""
        def transfer(nbytes):
            yield 1

        def body():
            transfer(100)
            yield 2
    """)
    assert [f.code for f in found] == ["SIM001"]
    assert "yield from" in found[0].message


def test_sim001_unyielded_process_call_in_plain_function():
    found = run("""
        def transfer(nbytes):
            yield 1

        def main():
            transfer(100)
    """)
    assert [f.code for f in found] == ["SIM001"]
    assert "run_process" in found[0].message


def test_sim001_event_call_dropped_inside_generator():
    assert codes("""
        def body(lock, sim):
            lock.acquire()
            sim.timeout(5)
            yield 1
    """) == ["SIM001", "SIM001"]


def test_sim001_clean_when_yielded():
    assert codes("""
        def transfer(nbytes):
            yield 1

        def body(lock):
            yield lock.acquire()
            yield from transfer(100)
    """) == []


def test_sim001_spawn_and_ambiguous_names_not_flagged():
    # sim.process() is fire-and-forget by design; list.append shares its
    # name with SegmentWriter.append and must not be flagged.
    assert codes("""
        def worker():
            yield 1

        def append(self, block):
            yield 2

        def main(sim):
            sim.process(worker())
            out = []
            out.append(3)
    """) == []


def test_sim001_line_pragma_suppresses():
    assert codes("""
        def transfer(nbytes):
            yield 1

        def main():
            transfer(100)  # lint: disable=SIM001
    """) == []


# ---------------------------------------------------------------------------
# SIM002: wall-clock / unseeded randomness
# ---------------------------------------------------------------------------

def test_sim002_wall_clock_and_global_random():
    assert codes("""
        import random
        import time

        def sample():
            t = time.time()
            time.sleep(1)
            return random.randrange(10) + t
    """) == ["SIM002", "SIM002", "SIM002"]


def test_sim002_datetime_now():
    assert "SIM002" in codes("""
        import datetime

        def stamp():
            return datetime.datetime.now()
    """)


def test_sim002_seeded_random_is_clean():
    assert codes("""
        import random

        def sample(seed):
            rng = random.Random(seed)
            return rng.randrange(10)
    """) == []


def test_sim002_file_pragma_suppresses():
    assert codes("""
        # lint: disable-file=SIM002
        import time

        def sample():
            return time.time()
    """) == []


# ---------------------------------------------------------------------------
# SIM003: swallowed SimulationError
# ---------------------------------------------------------------------------

def test_sim003_bare_except():
    assert codes("""
        def run(step):
            try:
                step()
            except:
                pass
    """) == ["SIM003"]


def test_sim003_broad_except_swallowing():
    assert codes("""
        def run(step):
            try:
                step()
            except Exception:
                pass
    """) == ["SIM003"]


def test_sim003_reraise_and_use_are_clean():
    assert codes("""
        def run(step, log):
            try:
                step()
            except Exception as exc:
                log(exc)
            try:
                step()
            except Exception:
                raise
    """) == []


def test_sim003_specific_exception_is_clean():
    assert codes("""
        def run(step):
            try:
                step()
            except ValueError:
                pass
    """) == []


# ---------------------------------------------------------------------------
# UNIT001 / UNIT002
# ---------------------------------------------------------------------------

def test_unit001_exact_literals_flagged_anywhere():
    found = run("""
        CACHE = 16 * 1048576
        LIMIT = 1000000
    """)
    assert [f.code for f in found] == ["UNIT001", "UNIT001"]
    assert "MIB" in found[0].message


def test_unit001_factor_literals_only_in_mult_div():
    # 512 as a multiplier is a unit conversion; 512 alone is a count.
    assert codes("""
        def f(nsectors):
            nbytes = nsectors * 512
            queue_depth = 512
            return nbytes + queue_depth
    """) == ["UNIT001"]


def test_unit001_pragma_suppresses():
    assert codes("""
        SECTOR = 512 * 1  # lint: disable=UNIT001
    """) == []


def test_unit002_mixed_families():
    found = run("""
        from repro.units import KIB, MB

        def rate(batch, elapsed):
            return batch * 64 * KIB / MB / elapsed
    """)
    assert [f.code for f in found] == ["UNIT002"]


def test_unit002_single_family_is_clean():
    assert codes("""
        from repro.units import KIB, MIB

        def size(n):
            return n * KIB + 2 * MIB
    """) == []


# ---------------------------------------------------------------------------
# SIM004: zero-copy discipline on the data path
# ---------------------------------------------------------------------------

def run_hot(snippet: str, path: str = "src/repro/hw/mod.py"):
    """Lint a snippet as if it lived inside the hw/raid/lfs data path."""
    return Linter().run_text(textwrap.dedent(snippet), path=path)


def test_sim004_bytes_of_buffer_flagged_in_hot_path():
    found = run_hot("""
        def f(view):
            return bytes(view)
    """)
    assert [f.code for f in found] == ["SIM004"]
    assert "bytes(view)" in found[0].message


def test_sim004_ignores_code_outside_hot_path():
    assert run_hot("""
        def f(view):
            return bytes(view)
    """, path="src/repro/experiments/mod.py") == []


def test_sim004_bytes_of_size_constant_is_clean():
    # bytes(BLOCK_SIZE) builds zeros; bytes(n - k) likewise.
    assert run_hot("""
        def f(cut):
            return bytes(BLOCK_SIZE) + bytes(BLOCK_SIZE - cut)
    """) == []


def test_sim004_bytes_of_slice_flagged():
    found = run_hot("""
        def f(buf, a, b):
            return bytes(buf[a:b])
    """)
    assert [f.code for f in found] == ["SIM004"]


def test_sim004_slicing_bytes_param_in_process_flagged():
    found = run_hot("""
        def body(data: bytes):
            piece = data[0:512]
            yield piece
    """)
    assert [f.code for f in found] == ["SIM004"]
    assert "memoryview" in found[0].message


def test_sim004_plain_helpers_may_slice():
    # Metadata codecs are not simulation processes; slicing there is
    # out of scope.
    assert run_hot("""
        def decode(data: bytes):
            return data[0:4], data[4:8]
    """) == []


def test_sim004_pragma_allowlists_durability_boundary():
    assert run_hot("""
        def body(view):
            yield view
            chunk = bytes(view)  # lint: disable=SIM004
            return chunk
    """) == []


# ---------------------------------------------------------------------------
# SIM005: spans must be context-managed
# ---------------------------------------------------------------------------

def test_sim005_bare_span_call_flagged():
    found = run_hot("""
        def body(self, nbytes):
            self.sim.tracer.span("disk.read", "d0", nbytes=nbytes)
            yield nbytes
    """)
    assert [f.code for f in found] == ["SIM005"]
    assert "with" in found[0].message


def test_sim005_span_assigned_to_variable_flagged():
    # Holding the handle without entering it never sets the end time.
    found = run_hot("""
        def body(tracer):
            handle = tracer.span("scsi.transfer", "s0")
            yield 1
    """, path="src/repro/server/mod.py")
    assert [f.code for f in found] == ["SIM005"]


def test_sim005_with_statement_is_clean():
    assert run_hot("""
        def body(self, nbytes):
            with self.sim.tracer.span("disk.read", "d0") as span:
                span.set(nbytes=nbytes)
                yield nbytes
    """) == []


def test_sim005_only_simulation_processes_checked():
    # Plain helpers (no yield) are outside the kernel's span scoping.
    assert run_hot("""
        def helper(tracer):
            return tracer.span("disk.read", "d0")
    """) == []


def test_sim005_ignores_code_outside_instrumented_dirs():
    assert run_hot("""
        def body(tracer):
            tracer.span("x", "y")
            yield 1
    """, path="src/repro/experiments/mod.py") == []


def test_sim005_other_span_methods_not_flagged():
    # A .span attribute on something that is not a tracer is fine.
    assert run_hot("""
        def body(layout):
            layout.span(3)
            yield 1
    """) == []


def test_sim005_pragma_suppresses():
    assert run_hot("""
        def body(tracer):
            tracer.span("disk.read", "d0")  # lint: disable=SIM005
            yield 1
    """) == []


# ---------------------------------------------------------------------------
# framework behaviour
# ---------------------------------------------------------------------------

def test_run_paths_expands_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(
        "def g():\n    yield 1\n\ndef f():\n    g()\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 1000000\n")
    findings = lint_paths([str(tmp_path / "pkg")])
    assert [f.code for f in findings] == ["SIM001"]
    assert findings[0].path.endswith("mod.py")


def test_repo_source_tree_is_lint_clean():
    """The acceptance criterion: the shipped tree has zero findings."""
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    assert lint_paths([str(src)]) == []


def test_cli_lint_exit_codes(tmp_path, capsys):
    from repro.analysis.__main__ import main

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def g():\n    yield 1\n\ndef f():\n    g()\n")
    assert main(["lint", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "SIM001" in out
