"""Segment cleaner tests: reclamation, liveness, data preservation."""

import dataclasses
import random

import pytest

from repro.errors import NoSpaceFsError
from repro.hw.specs import LFS_SPEC
from repro.lfs import CleanerPolicy, LogStructuredFS
from repro.lfs.cleaner import pick_victims
from repro.lfs.ondisk import SegmentState
from repro.sim import Simulator
from repro.testing import MemoryDevice
from repro.units import KIB, MIB

FAST_SPEC = dataclasses.replace(LFS_SPEC, segment_bytes=64 * KIB,
                                fs_overhead_s=0.0, small_write_overhead_s=0.0)


def make_fs(capacity=4 * MIB):
    sim = Simulator()
    device = MemoryDevice(sim, capacity)
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=128)
    sim.run_process(fs.format())
    return sim, device, fs


def pattern(nbytes, seed=0):
    return random.Random(seed).randbytes(nbytes)


def test_clean_reclaims_dead_segments():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/junk"))
    sim.run_process(fs.write("/junk", 0, pattern(256 * KIB, seed=1)))
    sim.run_process(fs.sync())
    free_before = fs.free_segments()
    sim.run_process(fs.unlink("/junk"))
    sim.run_process(fs.sync())

    reclaimed = sim.run_process(fs.clean(max_segments=8))
    assert len(reclaimed) >= 3
    assert fs.free_segments() > free_before


def test_clean_preserves_live_data():
    sim, _device, fs = make_fs()
    keep = pattern(40 * KIB, seed=2)
    sim.run_process(fs.create("/keep"))
    sim.run_process(fs.create("/junk"))
    # Interleave keeper and junk writes so segments hold a mix.
    for index in range(10):
        sim.run_process(fs.write("/keep", index * 4 * KIB,
                                 keep[index * 4 * KIB:(index + 1) * 4 * KIB]))
        sim.run_process(fs.write("/junk", index * 16 * KIB,
                                 pattern(16 * KIB, seed=100 + index)))
    sim.run_process(fs.sync())
    sim.run_process(fs.unlink("/junk"))
    sim.run_process(fs.sync())

    reclaimed = sim.run_process(fs.clean(max_segments=8))
    assert reclaimed
    assert sim.run_process(fs.read("/keep", 0, len(keep))) == keep


def test_cleaned_data_survives_crash():
    sim, device, fs = make_fs()
    keep = pattern(60 * KIB, seed=3)
    sim.run_process(fs.create("/keep"))
    sim.run_process(fs.write("/keep", 0, keep))
    sim.run_process(fs.create("/junk"))
    sim.run_process(fs.write("/junk", 0, pattern(200 * KIB, seed=4)))
    sim.run_process(fs.sync())
    sim.run_process(fs.unlink("/junk"))
    sim.run_process(fs.clean(max_segments=8))
    fs.crash()

    fs2 = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=128)
    sim.run_process(fs2.mount())
    assert sim.run_process(fs2.read("/keep", 0, len(keep))) == keep


def test_cleaning_enables_further_writes():
    """Fill the log, delete, clean, and keep writing (space recycles)."""
    sim, _device, fs = make_fs(capacity=3 * MIB // 2)
    sim.run_process(fs.create("/a"))
    sim.run_process(fs.write("/a", 0, pattern(800 * KIB, seed=5)))
    sim.run_process(fs.sync())
    sim.run_process(fs.unlink("/a"))
    sim.run_process(fs.sync())

    # Without cleaning this write would exhaust clean segments.
    def fill_again():
        yield from fs.create("/b")
        yield from fs.write("/b", 0, pattern(800 * KIB, seed=6))
        yield from fs.sync()

    with pytest.raises(NoSpaceFsError):
        sim.run_process(fill_again())

    sim.run_process(fs.clean(max_segments=32))
    sim.run_process(fs.create("/c"))
    sim.run_process(fs.write("/c", 0, pattern(400 * KIB, seed=7)))
    sim.run_process(fs.sync())
    assert sim.run_process(fs.read("/c", 0, 400 * KIB)) == pattern(
        400 * KIB, seed=7)


def test_greedy_picks_emptiest_segment():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/a"))
    sim.run_process(fs.write("/a", 0, pattern(256 * KIB, seed=8)))
    sim.run_process(fs.sync())
    # Punch holes: overwrite the first 64 KiB (first segment mostly dies).
    sim.run_process(fs.write("/a", 0, pattern(64 * KIB, seed=9)))
    sim.run_process(fs.sync())

    victims = pick_victims(fs, 1, CleanerPolicy.GREEDY)
    assert victims
    emptiest = min(
        (entry.live_bytes, seg) for seg, entry in enumerate(fs.usage)
        if entry.state == SegmentState.DIRTY)
    assert victims[0] == emptiest[1]


def test_cost_benefit_prefers_old_cold_segments():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/old"))
    sim.run_process(fs.write("/old", 0, pattern(64 * KIB, seed=10)))
    sim.run_process(fs.sync())
    old_seg_candidates = [seg for seg, entry in enumerate(fs.usage)
                          if entry.state == SegmentState.DIRTY]
    # Lots of newer activity.
    sim.run_process(fs.create("/new"))
    for index in range(8):
        sim.run_process(fs.write("/new", index * 32 * KIB,
                                 pattern(32 * KIB, seed=20 + index)))
        sim.run_process(fs.sync())
    # Kill most of the old segment's data and a bit of the new.
    sim.run_process(fs.write("/old", 0, pattern(48 * KIB, seed=30)))
    sim.run_process(fs.sync())

    victims = pick_victims(fs, 1, CleanerPolicy.COST_BENEFIT)
    assert victims
    assert victims[0] in old_seg_candidates


def test_clean_noop_when_nothing_dirty():
    sim, _device, fs = make_fs()
    before = fs.free_segments()
    reclaimed = sim.run_process(fs.clean(max_segments=4))
    # Only the segments that formatting itself dirtied are candidates;
    # they hold live data so nothing with zero benefit is forced.
    assert fs.free_segments() >= before
    assert isinstance(reclaimed, list)


def test_cleaner_counts_stat():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/junk"))
    sim.run_process(fs.write("/junk", 0, pattern(128 * KIB, seed=11)))
    sim.run_process(fs.sync())
    sim.run_process(fs.unlink("/junk"))
    sim.run_process(fs.sync())
    reclaimed = sim.run_process(fs.clean(max_segments=4))
    assert fs.segments_cleaned == len(reclaimed)
    assert fs.statfs()["segments_cleaned"] == len(reclaimed)
