"""Tests for LFS sequential read-ahead (Section 3.2 prefetch buffers)."""

import dataclasses
import random

import pytest

from repro.hw.specs import LFS_SPEC
from repro.lfs import LogStructuredFS
from repro.sim import Simulator
from repro.testing import MemoryDevice
from repro.units import KIB, MIB

RA_SPEC = dataclasses.replace(LFS_SPEC, segment_bytes=128 * KIB,
                              fs_overhead_s=0.0, small_write_overhead_s=0.0,
                              readahead_blocks=16)
NO_RA_SPEC = dataclasses.replace(RA_SPEC, readahead_blocks=0)


def make_fs(spec):
    sim = Simulator()
    device = MemoryDevice(sim, 16 * MIB, rate_mb_s=10.0,
                          per_op_latency_s=0.02)
    fs = LogStructuredFS(sim, device, spec=spec, max_inodes=64)
    sim.run_process(fs.format())
    return sim, device, fs


def pattern(nbytes, seed=0):
    return random.Random(seed).randbytes(nbytes)


def prime(sim, fs, nbytes=512 * KIB, seed=1):
    payload = pattern(nbytes, seed)
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, payload))
    sim.run_process(fs.sync())
    # Cold caches: drop anything the write path left behind.
    fs._readahead.clear()
    fs._next_expected.clear()
    return payload


def sequential_read_time(spec, request=8 * KIB, count=24):
    sim, _device, fs = make_fs(spec)
    payload = prime(sim, fs)
    start = sim.now

    def body():
        for index in range(count):
            yield from fs.read("/f", index * request, request)

    sim.run_process(body())
    checks = sim.run_process(fs.read("/f", 0, count * request))
    assert checks == payload[:count * request]
    return sim.now - start, fs


def test_sequential_small_reads_faster_with_readahead():
    with_ra, fs_ra = sequential_read_time(RA_SPEC)
    without_ra, _fs = sequential_read_time(NO_RA_SPEC)
    assert fs_ra.readahead_hits > 0
    assert with_ra < 0.6 * without_ra


def test_readahead_returns_correct_bytes():
    sim, _device, fs = make_fs(RA_SPEC)
    payload = prime(sim, fs)

    def body():
        out = []
        for index in range(32):
            data = yield from fs.read("/f", index * 8 * KIB, 8 * KIB)
            out.append(data)
        return b"".join(out)

    assert sim.run_process(body()) == payload[:32 * 8 * KIB]


def test_random_reads_do_not_trigger_readahead():
    sim, _device, fs = make_fs(RA_SPEC)
    prime(sim, fs)
    rng = random.Random(5)

    def body():
        for _ in range(10):
            offset = rng.randrange(0, 100) * 4 * KIB
            yield from fs.read("/f", offset, 4 * KIB)

    sim.run_process(body())
    assert fs.readahead_hits == 0


def test_write_invalidates_readahead():
    sim, _device, fs = make_fs(RA_SPEC)
    prime(sim, fs)

    def body():
        # Trigger read-ahead past block 2.
        yield from fs.read("/f", 0, 8 * KIB)
        yield from fs.read("/f", 8 * KIB, 8 * KIB)
        # Overwrite a block that is sitting in the prefetch buffers.
        yield from fs.write("/f", 16 * KIB, b"\xee" * (4 * KIB))
        data = yield from fs.read("/f", 16 * KIB, 4 * KIB)
        return data

    assert sim.run_process(body()) == b"\xee" * (4 * KIB)


def test_readahead_capped():
    sim, _device, fs = make_fs(RA_SPEC)
    prime(sim, fs)

    def body():
        for index in range(40):
            yield from fs.read("/f", index * 4 * KIB, 4 * KIB)

    sim.run_process(body())
    assert len(fs._readahead) <= 2 * RA_SPEC.readahead_blocks


def test_readahead_stops_at_eof():
    sim, _device, fs = make_fs(RA_SPEC)
    sim.run_process(fs.create("/tiny"))
    sim.run_process(fs.write("/tiny", 0, b"z" * (6 * KIB)))
    sim.run_process(fs.sync())

    def body():
        a = yield from fs.read("/tiny", 0, 4 * KIB)
        b = yield from fs.read("/tiny", 4 * KIB, 4 * KIB)
        return a, b

    a, b = sim.run_process(body())
    assert a == b"z" * (4 * KIB)
    assert b == b"z" * (2 * KIB)
