"""RAID behaviour under combined load: rebuild during traffic,
failures mid-request, multi-board independence."""

import dataclasses
import random

import pytest

from repro.errors import UnrecoverableArrayError
from repro.hw import IBM_0661, DiskDrive
from repro.raid import DirectDiskPath, Raid5Controller
from repro.sim import Simulator
from repro.units import KIB, MIB

SMALL_DISK = dataclasses.replace(IBM_0661, capacity_bytes=4 * MIB)
UNIT = 16 * KIB


def make_array(sim, ndisks=6):
    paths = [DirectDiskPath(DiskDrive(sim, SMALL_DISK, name=f"d{i}"))
             for i in range(ndisks)]
    return paths, Raid5Controller(sim, paths, UNIT)


def pattern(nbytes, seed):
    return random.Random(seed).randbytes(nbytes)


def test_rebuild_while_reads_continue():
    """Client reads proceed (degraded) while the rebuild runs; both
    finish with correct data and consistent parity."""
    sim = Simulator()
    paths, ctrl = make_array(sim)
    payload = pattern(40 * UNIT, seed=1)
    sim.run_process(ctrl.write(0, payload))

    paths[2].disk.fail()
    paths[2].disk.repair()  # blank replacement

    results = []

    def reader():
        for _ in range(6):
            data = yield from ctrl.read(0, 10 * UNIT)
            results.append(data)

    def rebuilder():
        yield from ctrl.rebuild(2, max_rows=8)

    sim.process(reader())
    sim.process(rebuilder())
    sim.run()

    assert all(r == payload[:10 * UNIT] for r in results)
    assert ctrl.verify_parity(max_rows=8)
    data = sim.run_process(ctrl.read(0, len(payload)))
    assert data == payload


def test_writes_during_rebuild_land_correctly():
    sim = Simulator()
    paths, ctrl = make_array(sim)
    base = pattern(40 * UNIT, seed=2)
    sim.run_process(ctrl.write(0, base))
    paths[1].disk.fail()
    paths[1].disk.repair()

    update = pattern(5 * UNIT, seed=3)

    def writer():
        yield from ctrl.write(20 * UNIT, update)

    def rebuilder():
        yield from ctrl.rebuild(1, max_rows=8)

    sim.process(rebuilder())
    sim.process(writer())
    sim.run()

    expected = bytearray(base)
    expected[20 * UNIT:25 * UNIT] = update
    data = sim.run_process(ctrl.read(0, len(base)))
    assert data == bytes(expected)


def test_failure_mid_request_recovers_within_request():
    """A disk dying between a request's pieces still yields correct
    data (the affected piece falls back to reconstruction)."""
    sim = Simulator()
    paths, ctrl = make_array(sim)
    payload = pattern(30 * UNIT, seed=4)
    sim.run_process(ctrl.write(0, payload))

    def killer():
        yield sim.timeout(0.015)
        paths[3].disk.fail()

    def reader():
        data = yield from ctrl.read(0, len(payload))
        return data

    sim.process(killer())
    proc = sim.process(reader())
    sim.run()
    assert proc.value == payload


def test_second_failure_during_degraded_read_is_fatal():
    sim = Simulator()
    paths, ctrl = make_array(sim)
    sim.run_process(ctrl.write(0, pattern(30 * UNIT, seed=5)))
    paths[0].disk.fail()

    def killer():
        yield sim.timeout(0.01)
        paths[1].disk.fail()

    def reader():
        yield from ctrl.read(0, 30 * UNIT)

    sim.process(killer())
    sim.process(reader())
    with pytest.raises(UnrecoverableArrayError):
        sim.run()


def test_two_arrays_are_independent():
    """Traffic on one array never blocks or corrupts another (the
    multi-XBUS-board scaling premise)."""
    sim = Simulator()
    _paths_a, ctrl_a = make_array(sim)
    _paths_b, ctrl_b = make_array(sim)
    a = pattern(20 * UNIT, seed=6)
    b = pattern(20 * UNIT, seed=7)

    def worker(ctrl, payload):
        yield from ctrl.write(0, payload)
        data = yield from ctrl.read(0, len(payload))
        return data

    proc_a = sim.process(worker(ctrl_a, a))
    proc_b = sim.process(worker(ctrl_b, b))
    sim.run()
    assert proc_a.value == a
    assert proc_b.value == b


def test_many_small_concurrent_ops_keep_parity_consistent():
    sim = Simulator()
    _paths, ctrl = make_array(sim)
    rng = random.Random(8)
    nworkers = 8

    def worker(seed):
        local = random.Random(seed)
        for index in range(10):
            offset = local.randrange(0, 200) * 4096
            yield from ctrl.write(offset, bytes([seed]) * 4096)

    for seed in range(nworkers):
        sim.process(worker(seed))
    sim.run()
    assert ctrl.verify_parity()


def test_rebuild_race_with_fault_plan_replays_identically():
    # Writes racing the rebuild frontier while an armed transient plan
    # fires: the whole tangle must replay bit-identically under the
    # determinism trace, land the written bytes, and scrub clean.
    from repro.faults import FaultPlan, TransientFault, attach_array
    from tests.test_sim_determinism import _traced

    def run():
        sim = Simulator()
        paths, ctrl = make_array(sim)
        base = pattern(40 * UNIT, seed=9)
        sim.run_process(ctrl.write(0, base))
        paths[1].disk.fail()
        paths[1].disk.repair()
        attach_array(FaultPlan.of(TransientFault(disk="d3", count=2)), ctrl)
        update = pattern(5 * UNIT, seed=10)

        def writer():
            yield from ctrl.write(20 * UNIT, update)

        rebuild_proc = sim.process(ctrl.rebuild(1, max_rows=12))
        sim.process(writer())
        sim.run()
        assert rebuild_proc.processed
        assert ctrl.verify_parity(max_rows=12)
        data = sim.run_process(ctrl.read(0, 40 * UNIT))
        return data

    result_a, trace_a = _traced(run)
    result_b, trace_b = _traced(run)
    assert trace_a == trace_b
    expected = bytearray(pattern(40 * UNIT, seed=9))
    expected[20 * UNIT:25 * UNIT] = pattern(5 * UNIT, seed=10)
    assert result_a == bytes(expected)
    assert result_b == bytes(expected)
