"""Functional tests for the Log-Structured File System core."""

import dataclasses
import random

import pytest

from repro.errors import (DirectoryNotEmptyFsError, FileExistsFsError,
                          FileNotFoundFsError, IsADirectoryFsError,
                          NoSpaceFsError, NotADirectoryFsError)
from repro.hw.specs import LFS_SPEC
from repro.lfs import FileType, LogStructuredFS
from repro.lfs.ondisk import BLOCK_SIZE, N_DIRECT, ADDRS_PER_BLOCK
from repro.sim import Simulator
from repro.testing import MemoryDevice
from repro.units import KIB, MIB

# Small segments make multi-segment behaviour cheap to exercise.
FAST_SPEC = dataclasses.replace(LFS_SPEC, segment_bytes=128 * KIB,
                                fs_overhead_s=0.0, small_write_overhead_s=0.0)


def make_fs(capacity=8 * MIB, spec=FAST_SPEC, max_inodes=256):
    sim = Simulator()
    device = MemoryDevice(sim, capacity)
    fs = LogStructuredFS(sim, device, spec=spec, max_inodes=max_inodes)
    sim.run_process(fs.format())
    return sim, device, fs


def pattern(nbytes, seed=0):
    return random.Random(seed).randbytes(nbytes)


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------

def test_format_creates_root():
    sim, _device, fs = make_fs()
    entries = sim.run_process(fs.readdir("/"))
    assert entries == {}
    attrs = sim.run_process(fs.stat("/"))
    assert attrs.ftype == FileType.DIRECTORY
    assert attrs.ino == 1


def test_format_then_fresh_mount():
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/hello"))
    sim.run_process(fs.write("/hello", 0, b"world"))
    sim.run_process(fs.unmount())

    fs2 = LogStructuredFS(sim, device, spec=FAST_SPEC)
    sim.run_process(fs2.mount())
    assert sim.run_process(fs2.read("/hello", 0, 5)) == b"world"


def test_device_too_small_rejected():
    sim = Simulator()
    device = MemoryDevice(sim, 256 * KIB)
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC)
    with pytest.raises(Exception):
        sim.run_process(fs.format())


def test_operations_require_mount():
    sim = Simulator()
    device = MemoryDevice(sim, 8 * MIB)
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC)
    with pytest.raises(Exception):
        sim.run_process(fs.read("/x", 0, 1))


# ---------------------------------------------------------------------------
# files: write / read
# ---------------------------------------------------------------------------

def test_small_file_roundtrip():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"hello lfs"))
    assert sim.run_process(fs.read("/f", 0, 100)) == b"hello lfs"


def test_read_beyond_eof_clamped():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"abc"))
    assert sim.run_process(fs.read("/f", 2, 100)) == b"c"
    assert sim.run_process(fs.read("/f", 3, 100)) == b""
    assert sim.run_process(fs.read("/f", 99, 1)) == b""


def test_sub_block_overwrite():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"A" * 100))
    sim.run_process(fs.write("/f", 50, b"B" * 10))
    data = sim.run_process(fs.read("/f", 0, 100))
    assert data == b"A" * 50 + b"B" * 10 + b"A" * 40


def test_sparse_file_reads_zeros():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 10 * BLOCK_SIZE, b"end"))
    data = sim.run_process(fs.read("/f", 0, BLOCK_SIZE))
    assert data == bytes(BLOCK_SIZE)
    assert sim.run_process(fs.read("/f", 10 * BLOCK_SIZE, 3)) == b"end"


def test_multi_block_file_roundtrip():
    sim, _device, fs = make_fs()
    payload = pattern(10 * BLOCK_SIZE + 123, seed=1)
    sim.run_process(fs.create("/big"))
    sim.run_process(fs.write("/big", 0, payload))
    assert sim.run_process(fs.read("/big", 0, len(payload))) == payload


def test_file_spanning_indirect_blocks():
    sim, _device, fs = make_fs(capacity=24 * MIB)
    nblocks = N_DIRECT + 40  # requires the single-indirect chunk
    payload = pattern(nblocks * BLOCK_SIZE, seed=2)
    sim.run_process(fs.create("/ind"))
    sim.run_process(fs.write("/ind", 0, payload))
    sim.run_process(fs.sync())
    assert sim.run_process(fs.read("/ind", 0, len(payload))) == payload


def test_file_spanning_double_indirect():
    sim, _device, fs = make_fs(capacity=24 * MIB)
    # Just over the single-indirect limit.
    nblocks = N_DIRECT + ADDRS_PER_BLOCK + 5
    payload = pattern(nblocks * BLOCK_SIZE, seed=3)
    sim.run_process(fs.create("/huge"))
    sim.run_process(fs.write("/huge", 0, payload))
    sim.run_process(fs.sync())
    assert sim.run_process(fs.read("/huge", 0, len(payload))) == payload


def test_read_after_sync_hits_disk():
    sim, device, fs = make_fs()
    payload = pattern(3 * BLOCK_SIZE, seed=4)
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, payload))
    sim.run_process(fs.sync())
    # Invalidate volatile caches to force a disk path.
    fs._inodes.clear()
    fs._chunks.clear()
    assert sim.run_process(fs.read("/f", 0, len(payload))) == payload


def test_write_at_offset_extends_size():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 100, b"xyz"))
    attrs = sim.run_process(fs.stat("/f"))
    assert attrs.size == 103
    data = sim.run_process(fs.read("/f", 0, 103))
    assert data == bytes(100) + b"xyz"


def test_truncate_shrinks_and_frees():
    sim, _device, fs = make_fs()
    payload = pattern(8 * BLOCK_SIZE, seed=5)
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, payload))
    sim.run_process(fs.truncate("/f", 5))
    attrs = sim.run_process(fs.stat("/f"))
    assert attrs.size == 5
    assert sim.run_process(fs.read("/f", 0, 100)) == payload[:5]


def test_overwrite_same_block_buffered_in_place():
    """Repeated writes to one block between flushes add no log blocks."""
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"v1"))
    appended_before = fs.writer.blocks_appended

    def body():
        for version in range(20):
            yield from fs.write("/f", 0, b"v%02d" % version)

    sim.run_process(body())
    assert fs.writer.blocks_appended == appended_before
    assert sim.run_process(fs.read("/f", 0, 3)) == b"v19"


# ---------------------------------------------------------------------------
# namespace
# ---------------------------------------------------------------------------

def test_nested_directories():
    sim, _device, fs = make_fs()
    sim.run_process(fs.mkdir("/a"))
    sim.run_process(fs.mkdir("/a/b"))
    sim.run_process(fs.create("/a/b/file"))
    sim.run_process(fs.write("/a/b/file", 0, b"deep"))
    assert sim.run_process(fs.read("/a/b/file", 0, 4)) == b"deep"
    entries = sim.run_process(fs.readdir("/a"))
    assert set(entries) == {"b"}
    assert entries["b"][1] == FileType.DIRECTORY


def test_create_existing_rejected():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    with pytest.raises(FileExistsFsError):
        sim.run_process(fs.create("/f"))
    with pytest.raises(FileExistsFsError):
        sim.run_process(fs.mkdir("/f"))


def test_lookup_missing_raises():
    sim, _device, fs = make_fs()
    with pytest.raises(FileNotFoundFsError):
        sim.run_process(fs.read("/nope", 0, 1))
    assert sim.run_process(fs.exists("/nope")) is False


def test_file_component_in_path_rejected():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    with pytest.raises(NotADirectoryFsError):
        sim.run_process(fs.create("/f/child"))


def test_read_directory_as_file_rejected():
    sim, _device, fs = make_fs()
    sim.run_process(fs.mkdir("/d"))
    with pytest.raises(IsADirectoryFsError):
        sim.run_process(fs.read("/d", 0, 1))


def test_unlink_then_recreate():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"old"))
    sim.run_process(fs.unlink("/f"))
    assert sim.run_process(fs.exists("/f")) is False
    sim.run_process(fs.create("/f"))
    assert sim.run_process(fs.read("/f", 0, 10)) == b""


def test_unlink_missing_raises():
    sim, _device, fs = make_fs()
    with pytest.raises(FileNotFoundFsError):
        sim.run_process(fs.unlink("/ghost"))


def test_unlink_directory_rejected():
    sim, _device, fs = make_fs()
    sim.run_process(fs.mkdir("/d"))
    with pytest.raises(IsADirectoryFsError):
        sim.run_process(fs.unlink("/d"))


def test_rmdir_empty_only():
    sim, _device, fs = make_fs()
    sim.run_process(fs.mkdir("/d"))
    sim.run_process(fs.create("/d/f"))
    with pytest.raises(DirectoryNotEmptyFsError):
        sim.run_process(fs.rmdir("/d"))
    sim.run_process(fs.unlink("/d/f"))
    sim.run_process(fs.rmdir("/d"))
    assert sim.run_process(fs.exists("/d")) is False


def test_many_files_in_directory():
    sim, _device, fs = make_fs()

    def body():
        for index in range(50):
            yield from fs.create(f"/file{index:03d}")

    sim.run_process(body())
    entries = sim.run_process(fs.readdir("/"))
    assert len(entries) == 50


def test_stat_reports_mtime_progression():
    sim, _device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    first = sim.run_process(fs.stat("/f")).mtime

    def later():
        yield sim.timeout(1.0)
        yield from fs.write("/f", 0, b"x")

    sim.run_process(later())
    second = sim.run_process(fs.stat("/f")).mtime
    assert second > first


# ---------------------------------------------------------------------------
# log mechanics
# ---------------------------------------------------------------------------

def test_segment_buffer_groups_small_writes():
    """Many small writes produce few, large device writes (LFS's point)."""
    sim, device, fs = make_fs()
    sim.run_process(fs.create("/f"))
    writes_before = device.writes

    def body():
        for index in range(100):
            yield from fs.write("/f", index * 1024, pattern(1024, seed=index))

    sim.run_process(body())
    buffered_only = device.writes - writes_before
    sim.run_process(fs.sync())
    # 100 KiB of small writes: nothing hits the device until the
    # segment fills or syncs, and the sync is a handful of big writes.
    assert buffered_only == 0
    assert device.writes - writes_before <= 4


def test_log_advances_across_segments():
    sim, _device, fs = make_fs()
    payload = pattern(300 * KIB, seed=9)  # > 2 segments of 128 KiB
    sim.run_process(fs.create("/big"))
    sim.run_process(fs.write("/big", 0, payload))
    sim.run_process(fs.sync())
    assert fs.writer.segments_started >= 3
    assert sim.run_process(fs.read("/big", 0, len(payload))) == payload


def test_out_of_space_raises():
    sim, _device, fs = make_fs(capacity=1 * MIB)

    def body():
        yield from fs.create("/f")
        yield from fs.write("/f", 0, pattern(900 * KIB))
        yield from fs.sync()

    with pytest.raises(NoSpaceFsError):
        sim.run_process(body())


def test_statfs_counts():
    sim, _device, fs = make_fs()
    stats = fs.statfs()
    assert stats["segments"] > 10
    assert stats["clean_segments"] < stats["segments"]
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, pattern(200 * KIB)))
    sim.run_process(fs.sync())
    assert fs.statfs()["live_bytes"] > 200 * KIB
