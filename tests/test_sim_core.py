"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Interrupt, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def body():
        yield sim.timeout(1.5)
        return sim.now

    assert sim.run_process(body()) == 1.5
    assert sim.now == 1.5


def test_timeouts_fire_in_order():
    sim = Simulator()
    fired = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        fired.append(tag)

    sim.process(waiter(3.0, "c"))
    sim.process(waiter(1.0, "a"))
    sim.process(waiter(2.0, "b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []

    def waiter(tag):
        yield sim.timeout(1.0)
        fired.append(tag)

    for tag in ("first", "second", "third"):
        sim.process(waiter(tag))
    sim.run()
    assert fired == ["first", "second", "third"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def body():
        yield sim.timeout(0.1)
        return 42

    assert sim.run_process(body()) == 42


def test_process_join():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "done"

    def parent():
        result = yield sim.process(child())
        return result, sim.now

    assert sim.run_process(parent()) == ("done", 2.0)


def test_joining_already_finished_process():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "early"

    def parent(proc):
        yield sim.timeout(5.0)
        result = yield proc
        return result

    proc = sim.process(child())
    assert sim.run_process(parent(proc)) == "early"
    assert sim.now == 5.0


def test_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return f"caught {exc}"

    assert sim.run_process(parent()) == "caught boom"


def test_unhandled_exception_raises_from_run():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        raise RuntimeError("unobserved")

    sim.process(body())
    with pytest.raises(RuntimeError, match="unobserved"):
        sim.run()


def test_run_until_stops_clock():
    sim = Simulator()
    done = []

    def body():
        yield sim.timeout(10.0)
        done.append(True)

    sim.process(body())
    assert sim.run(until=4.0) == 4.0
    assert not done
    sim.run()
    assert done


def test_run_until_advances_past_empty_queue():
    sim = Simulator()
    assert sim.run(until=7.0) == 7.0
    assert sim.now == 7.0


def test_yielding_non_event_fails():
    sim = Simulator()

    def body():
        yield 42

    with pytest.raises(SimulationError, match="yielded"):
        sim.run_process(body())


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()

    def opener():
        yield sim.timeout(3.0)
        gate.succeed("open sesame")

    def waiter():
        value = yield gate
        return value, sim.now

    sim.process(opener())
    assert sim.run_process(waiter()) == ("open sesame", 3.0)


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()
    with pytest.raises(SimulationError):
        event.fail(ValueError())


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def worker(delay, value):
        yield sim.timeout(delay)
        return value

    def body():
        procs = [sim.process(worker(d, d * 10)) for d in (3.0, 1.0, 2.0)]
        values = yield sim.all_of(procs)
        return values, sim.now

    values, now = sim.run_process(body())
    assert values == [30.0, 10.0, 20.0]
    assert now == 3.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def body():
        values = yield sim.all_of([])
        return values, sim.now

    assert sim.run_process(body()) == ([], 0.0)


def test_any_of_fires_on_first():
    sim = Simulator()

    def worker(delay, value):
        yield sim.timeout(delay)
        return value

    def body():
        procs = [sim.process(worker(d, d)) for d in (3.0, 1.0, 2.0)]
        first = yield sim.any_of(procs)
        return first, sim.now

    assert sim.run_process(body()) == (1.0, 1.0)


def test_all_of_propagates_failure():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise KeyError("broken")

    def good():
        yield sim.timeout(5.0)

    def body():
        with pytest.raises(KeyError):
            yield sim.all_of([sim.process(bad()), sim.process(good())])
        return "survived"

    assert sim.run_process(body()) == "survived"


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
            return "overslept"
        except Interrupt as intr:
            return f"interrupted:{intr.cause} at {sim.now}"

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt("alarm")

    proc = sim.process(sleeper())
    sim.process(interrupter(proc))
    sim.run()
    assert proc.value == "interrupted:alarm at 2.0"


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(1.0)
        return "done"

    proc = sim.process(sleeper())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.value == "done"


def test_interrupt_racing_with_completion_is_noop():
    # Regression: two interrupts delivered in the same instant.  The
    # first wakes the process, which catches it and *returns*; the
    # second must notice the process already completed rather than
    # throwing into an exhausted generator (which used to surface as a
    # SimulationError from failing an already-triggered event).
    sim = Simulator()
    caught = []

    def body():
        try:
            yield sim.timeout(10.0)
        except Interrupt as intr:
            caught.append(intr.cause)
        return "finished"

    proc = sim.process(body())

    def killer():
        yield sim.timeout(1.0)
        proc.interrupt("first")
        proc.interrupt("second")

    sim.process(killer())
    sim.run()
    assert caught == ["first"]
    assert proc.value == "finished"


def test_deadlock_detected_by_run_process():
    sim = Simulator()

    def body():
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(body())


def test_nested_subroutine_with_yield_from():
    sim = Simulator()

    def inner():
        yield sim.timeout(1.0)
        return 10

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b, sim.now

    assert sim.run_process(outer()) == (20, 2.0)
