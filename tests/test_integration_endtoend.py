"""Full-stack end-to-end scenario: a life in the day of the prototype.

One continuous story through every layer: format, a mixed client
population (HIPPI library clients + Ethernet clients), a disk failure
with degraded service, a rebuild, the cleaner reclaiming space, a
power failure, and a roll-forward remount — with byte-exact
verification at each stage.
"""

import random

import pytest

from repro.client import RaidFileClient
from repro.lfs import LogStructuredFS
from repro.net import UltranetLink
from repro.server import Raid2Config, Raid2Server
from repro.server.raid2 import make_sparcstation_client
from repro.sim import Simulator
from repro.units import KIB, MIB


def pattern(nbytes, seed):
    return random.Random(seed).randbytes(nbytes)


@pytest.fixture(scope="module")
def story():
    """Run the whole scenario once; individual tests assert stages."""
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    sim.run_process(server.setup_lfs())
    record = {"sim": sim, "server": server}

    # --- stage 1: mixed client population writes data ---
    hippi_client = RaidFileClient(sim, server, name="super")
    dataset = pattern(3 * MIB, seed=1)

    def hippi_session():
        fd = yield from hippi_client.open("/bulk.dat")
        yield from hippi_client.write(fd, 0, dataset)
        data = yield from hippi_client.read(fd, 0, len(dataset))
        yield from hippi_client.close(fd)
        return data

    record["hippi_roundtrip"] = sim.run_process(hippi_session())
    record["dataset"] = dataset

    small_files = {}

    def ethernet_population():
        yield from server.fs.mkdir("/mail")
        for index in range(12):
            path = f"/mail/msg{index:02d}"
            payload = pattern(6 * KIB, seed=50 + index)
            small_files[path] = payload
            yield from server.fs.create(path)
            yield from server.ethernet_write(path, 0, payload)

    sim.run_process(ethernet_population())
    record["small_files"] = small_files
    sim.run_process(server.fs.checkpoint())

    # --- stage 2: disk failure, degraded service continues ---
    victim = server.raid.paths[4].disk
    victim.fail()
    record["degraded_read"] = sim.run_process(
        server.fs.read("/bulk.dat", 0, len(dataset)))
    record["degraded_reconstructions"] = server.raid.degraded_reads

    # --- stage 3: replace and rebuild while traffic continues ---
    victim.repair()
    rebuild = sim.process(server.raid.rebuild(4, max_rows=48))
    during = sim.run_process(server.fs.read("/bulk.dat", 1 * MIB, 512 * KIB))
    record["read_during_rebuild"] = during
    sim.run()
    record["rebuild_done"] = rebuild.processed
    record["parity_ok_after_rebuild"] = server.raid.verify_parity(max_rows=48)

    # --- stage 4: churn + cleaning ---
    def churn():
        for index in range(8):
            path = f"/tmp{index}"
            yield from server.fs.create(path)
            yield from server.fs.write(path, 0, pattern(256 * KIB,
                                                        seed=90 + index))
        yield from server.fs.sync()
        for index in range(8):
            yield from server.fs.unlink(f"/tmp{index}")
        yield from server.fs.sync()

    sim.run_process(churn())
    record["reclaimed"] = sim.run_process(server.fs.clean(max_segments=6))

    # --- stage 5: power failure and remount ---
    sim.run_process(server.fs.write("/bulk.dat", 0, pattern(64 * KIB,
                                                            seed=99)))
    sim.run_process(server.fs.sync())
    server.fs.crash()
    fs2 = LogStructuredFS(sim, server.raid, spec=server.config.lfs,
                          max_inodes=server.config.max_inodes,
                          host=server.host)
    sim.run_process(fs2.mount())
    record["fs2"] = fs2
    return record


def test_hippi_client_roundtrip(story):
    assert story["hippi_roundtrip"] == story["dataset"]


def test_degraded_reads_correct(story):
    assert story["degraded_read"] == story["dataset"]
    assert story["degraded_reconstructions"] > 0


def test_service_during_rebuild(story):
    assert story["read_during_rebuild"] == \
        story["dataset"][1 * MIB:1 * MIB + 512 * KIB]
    assert story["rebuild_done"]
    assert story["parity_ok_after_rebuild"]


def test_cleaner_reclaimed_churn(story):
    assert len(story["reclaimed"]) >= 1


def test_remount_recovers_everything(story):
    sim, fs2 = story["sim"], story["fs2"]
    expected = bytearray(story["dataset"])
    expected[:64 * KIB] = pattern(64 * KIB, seed=99)
    assert sim.run_process(fs2.read("/bulk.dat", 0, len(expected))) == \
        bytes(expected)
    for path, payload in story["small_files"].items():
        assert sim.run_process(fs2.read(path, 0, len(payload))) == payload
    # Deleted churn files stayed deleted.
    assert sim.run_process(fs2.exists("/tmp0")) is False
