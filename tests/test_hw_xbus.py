"""Unit tests for VME ports, XBUS memory, parity engine and the board."""

import pytest

from repro.errors import HardwareError
from repro.hw import (VME_CONTROL_PORT_SPEC, VME_DATA_PORT_SPEC, ParityEngine,
                      VmePort, XbusBoard, XbusMemory)
from repro.hw.parity import xor_blocks
from repro.hw.vme import Direction
from repro.hw.xbus_board import XbusConfig
from repro.sim import Simulator
from repro.units import KIB, MB, MIB


@pytest.fixture
def sim():
    return Simulator()


# ---------------------------------------------------------------------------
# VME ports
# ---------------------------------------------------------------------------

def test_vme_read_rate(sim):
    port = VmePort(sim)

    def body():
        yield from port.transfer(6_900_000, Direction.READ)
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed == pytest.approx(1.0, rel=0.01)


def test_vme_write_slower_than_read(sim):
    port = VmePort(sim)
    read_time = port.transfer_time(1 * MB, Direction.READ)
    write_time = port.transfer_time(1 * MB, Direction.WRITE)
    assert write_time > read_time
    assert 1 * MB / (write_time) == pytest.approx(5.9 * MB, rel=0.02)


def test_vme_control_port_slower_than_data_port():
    assert (VME_CONTROL_PORT_SPEC.read_rate_mb_s
            < VME_DATA_PORT_SPEC.read_rate_mb_s)


def test_vme_serializes(sim):
    port = VmePort(sim)
    done = []

    def mover(tag):
        yield from port.transfer(690_000, Direction.READ)
        done.append((tag, sim.now))

    sim.process(mover("a"))
    sim.process(mover("b"))
    sim.run()
    assert done[1][1] == pytest.approx(2 * done[0][1], rel=0.05)


def test_vme_negative_size_rejected(sim):
    port = VmePort(sim)
    with pytest.raises(Exception):
        port.transfer_time(-1, Direction.READ)


# ---------------------------------------------------------------------------
# XBUS memory
# ---------------------------------------------------------------------------

def test_memory_aggregate_rate(sim):
    memory = XbusMemory(sim)

    def body():
        yield from memory.access(160 * MB // 100)
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed == pytest.approx(0.01, rel=0.01)


def test_memory_bank_accounting_spreads_bytes(sim):
    memory = XbusMemory(sim)

    def body():
        yield from memory.access(400)

    sim.run_process(body())
    assert sum(memory.bank_bytes_moved) == 400
    assert max(memory.bank_bytes_moved) == 100


def test_memory_capacity(sim):
    memory = XbusMemory(sim)
    assert memory.capacity_bytes == 32 * MIB


def test_memory_allocator_tracks_high_water(sim):
    memory = XbusMemory(sim)
    memory.allocate(5 * MB)
    memory.allocate(3 * MB)
    memory.free(4 * MB)
    assert memory.allocated_bytes == 4 * MB
    assert memory.allocation_high_water == 8 * MB
    with pytest.raises(HardwareError):
        memory.free(5 * MB)


# ---------------------------------------------------------------------------
# parity engine
# ---------------------------------------------------------------------------

def test_xor_blocks_correctness():
    a = bytes([0b1010] * 16)
    b = bytes([0b0110] * 16)
    c = bytes([0b0001] * 16)
    parity = xor_blocks([a, b, c])
    assert parity == bytes([0b1101] * 16)
    # XOR-ing parity back in recovers any block.
    assert xor_blocks([parity, b, c]) == a


def test_xor_blocks_length_mismatch_rejected():
    with pytest.raises(HardwareError):
        xor_blocks([b"ab", b"abc"])


def test_xor_blocks_empty_rejected():
    with pytest.raises(HardwareError):
        xor_blocks([])


def test_xor_blocks_accepts_memoryviews_and_bytearrays():
    a = bytes(range(64))
    b = bytearray(x ^ 0x5A for x in range(64))
    expected = xor_blocks([a, bytes(b)])
    assert xor_blocks([memoryview(a), b]) == expected
    assert xor_blocks([a, memoryview(b)]) == expected


def test_xor_blocks_adjacent_slices_match_separate_blocks():
    # The zero-copy write path hands xor_blocks consecutive memoryview
    # slices of one payload; they must agree with standalone copies of
    # the same blocks bit for bit.
    import random
    payload = random.Random(7).randbytes(4 * 512)
    view = memoryview(payload)
    adjacent = [view[i * 512:(i + 1) * 512] for i in range(4)]
    separate = [bytes(block) for block in adjacent]
    assert xor_blocks(adjacent) == xor_blocks(separate)


def test_xor_blocks_length_mismatch_names_offender():
    with pytest.raises(HardwareError, match="block 2"):
        xor_blocks([b"aaaa", b"bbbb", b"ccc"])


def test_xor_blocks_single_block_returns_copy():
    block = bytearray(b"\x01\x02\x03\x04")
    parity = xor_blocks([block])
    assert parity == b"\x01\x02\x03\x04"
    block[0] = 0xFF
    assert parity == b"\x01\x02\x03\x04"


def test_parity_engine_timed_compute(sim):
    engine = ParityEngine(sim)
    blocks = [bytes([i]) * (64 * KIB) for i in range(4)]

    def body():
        parity = yield from engine.compute(blocks)
        return parity, sim.now

    parity, elapsed = sim.run_process(body())
    assert parity == xor_blocks(blocks)
    # 4 inputs + 1 output = 5 * 64 KB over a 40 MB/s port.
    assert elapsed == pytest.approx(5 * 64 * KIB / (40 * MB), rel=0.01)
    assert engine.verify(blocks, parity)


# ---------------------------------------------------------------------------
# the assembled board
# ---------------------------------------------------------------------------

def test_board_default_config(sim):
    board = XbusBoard(sim)
    assert len(board.cougars) == 4
    assert len(board.disks) == 24
    assert len(board.disk_paths()) == 24


def test_board_control_cougar_adds_six_disks(sim):
    board = XbusBoard(sim, XbusConfig(control_cougar=True))
    assert len(board.cougars) == 5
    assert len(board.disks) == 30


def test_board_rejects_too_many_data_cougars(sim):
    with pytest.raises(HardwareError):
        XbusBoard(sim, XbusConfig(data_cougars=5))


def test_disk_path_order_interleaves_strings_last(sim):
    """First 12 paths use string 0 of each cougar; second string only after."""
    board = XbusBoard(sim)
    paths = board.disk_paths()
    for path in paths[:12]:
        assert path.cougar.strings[0] is path.cougar.string_of(path.disk)
    for path in paths[12:]:
        assert path.cougar.strings[1] is path.cougar.string_of(path.disk)
    # Consecutive units land on different cougars.
    first_four = [path.cougar.name for path in paths[:4]]
    assert len(set(first_four)) == 4


def test_disk_paths_limit(sim):
    board = XbusBoard(sim)
    assert len(board.disk_paths(limit=16)) == 16
    with pytest.raises(HardwareError):
        board.disk_paths(limit=25)


def test_disk_path_roundtrip(sim):
    board = XbusBoard(sim)
    path = board.disk_paths()[5]
    payload = b"\x77" * (64 * KIB)

    def body():
        yield from path.write(0, payload)
        data = yield from path.read(0, 128)
        return data

    assert sim.run_process(body()) == payload


def test_disk_path_read_slower_than_raw_disk(sim):
    """The full path charges at least the VME-port time."""
    board = XbusBoard(sim)
    path = board.disk_paths()[0]

    def body():
        yield from path.read(0, 128)
        return sim.now

    elapsed = sim.run_process(body())
    vme_floor = path.port.transfer_time(64 * KIB, Direction.READ)
    assert elapsed > vme_floor


def test_hippi_loopback_moves_both_directions(sim):
    board = XbusBoard(sim)

    def body():
        yield from board.hippi_loopback(1 * MB)
        return sim.now

    elapsed = sim.run_process(body())
    # Both directions stream concurrently: the loopback takes one
    # direction's time, sustaining 38.5 MB/s each way.
    one_way = 1 * MB / (38.5 * MB) + 0.0011
    assert elapsed == pytest.approx(one_way, rel=0.05)
    assert board.hippi_source.packets_sent == 1
    assert board.hippi_dest.packets_sent == 1


def test_board_parity_matches_pure_xor(sim):
    board = XbusBoard(sim)
    blocks = [bytes([i + 1]) * 1024 for i in range(3)]

    def body():
        parity = yield from board.compute_parity(blocks)
        return parity

    assert sim.run_process(body()) == xor_blocks(blocks)


def test_host_transfers_use_control_port(sim):
    board = XbusBoard(sim)

    def body():
        yield from board.to_host(100 * KIB)
        yield from board.from_host(100 * KIB)

    sim.run_process(body())
    assert board.control_port.bytes_moved == 200 * KIB
