"""Unit tests for units helpers, server configs, Ultranet and the CLI."""

import pytest

from repro.errors import ReproError
from repro.hw.xbus_board import XbusConfig
from repro.net import UltranetLink
from repro.server import Raid2Config
from repro.sim import Simulator
from repro.units import (GB, KB, KIB, MB, MIB, MS, SECTOR_SIZE, ios_per_s,
                         mb_per_s, transfer_time)


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------

def test_unit_constants():
    assert KB == 1000 and MB == 10 ** 6 and GB == 10 ** 9
    assert KIB == 1024 and MIB == 1024 ** 2
    assert SECTOR_SIZE == 512
    assert MS == 1e-3


def test_mb_per_s():
    assert mb_per_s(10 * MB, 2.0) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        mb_per_s(1, 0.0)


def test_ios_per_s():
    assert ios_per_s(100, 4.0) == pytest.approx(25.0)
    with pytest.raises(ValueError):
        ios_per_s(1, -1.0)


def test_transfer_time():
    assert transfer_time(10 * MB, 10.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        transfer_time(1, 0.0)


# ---------------------------------------------------------------------------
# configurations
# ---------------------------------------------------------------------------

def test_xbus_config_disk_totals():
    assert XbusConfig().total_disks == 24
    assert XbusConfig(control_cougar=True).total_disks == 30
    assert XbusConfig(disks_per_string=2).total_disks == 16


def test_raid2_config_presets():
    assert Raid2Config.paper_default().xbus.total_disks == 24
    assert Raid2Config.table1_sequential().xbus.control_cougar
    assert Raid2Config.table2_small_io(15).disks_used == 15
    assert Raid2Config.fig8_lfs().xbus.total_disks == 16


def test_lfs_spec_matches_paper_numbers():
    config = Raid2Config.paper_default()
    assert config.lfs.stripe_unit_bytes == 64 * KIB
    assert config.lfs.segment_bytes == 960 * KIB
    assert config.stripe_unit_bytes == 64 * KIB


# ---------------------------------------------------------------------------
# Ultranet
# ---------------------------------------------------------------------------

def test_ultranet_rpc_round_trip_latency():
    sim = Simulator()
    link = UltranetLink(sim)

    def body():
        yield from link.rpc()
        return sim.now

    elapsed = sim.run_process(body())
    assert elapsed == pytest.approx(2 * UltranetLink.CONTROL_LATENCY_S)
    assert link.rpcs == 1


def test_ultranet_data_rate():
    sim = Simulator()
    link = UltranetLink(sim, rate_mb_s=100.0)

    def body():
        yield from link.data(100 * MB)
        return sim.now

    assert sim.run_process(body()) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# experiments CLI
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "zebra" in out


def test_cli_unknown_experiment(capsys):
    from repro.experiments.__main__ import main

    assert main(["no-such-thing"]) == 2


def test_cli_runs_an_experiment(capsys):
    from repro.experiments.__main__ import main

    assert main(["vme-ports"]) == 0
    out = capsys.readouterr().out
    assert "vme_read_mb_s" in out


def test_registry_covers_every_table_and_figure():
    from repro.experiments.__main__ import REGISTRY

    for required in ("fig5", "fig6", "fig7", "fig8", "table1", "table2"):
        assert required in REGISTRY
