"""Unit tests for the disk drive model."""

import pytest

from repro.errors import DiskFailedError, HardwareError
from repro.hw import IBM_0661, SEAGATE_WREN_IV, DiskDrive
from repro.sim import Simulator
from repro.units import KIB, MB, SECTOR_SIZE


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def disk(sim):
    return DiskDrive(sim, IBM_0661, name="d0")


def test_spec_derived_geometry():
    assert IBM_0661.revolution_time_s == pytest.approx(60.0 / 4316.0)
    assert IBM_0661.track_bytes == 60 * 512
    assert IBM_0661.media_rate_mb_s == pytest.approx(2.21, abs=0.05)
    assert IBM_0661.avg_seek_s == pytest.approx(0.0125, abs=0.0002)
    assert SEAGATE_WREN_IV.avg_seek_s == pytest.approx(0.0175, abs=0.0002)
    assert SEAGATE_WREN_IV.media_rate_mb_s == pytest.approx(1.44, abs=0.05)


def test_write_then_read_roundtrip(sim, disk):
    payload = bytes(range(256)) * 8  # 2 KB = 4 sectors

    def body():
        yield from disk.write(100, payload)
        data = yield from disk.read(100, 4)
        return data

    assert sim.run_process(body()) == payload


def test_unwritten_sectors_read_as_zero(sim, disk):
    def body():
        data = yield from disk.read(0, 2)
        return data

    assert sim.run_process(body()) == bytes(2 * SECTOR_SIZE)


def test_partial_overwrite(sim, disk):
    def body():
        yield from disk.write(10, b"\xaa" * (4 * SECTOR_SIZE))
        yield from disk.write(11, b"\xbb" * SECTOR_SIZE)
        data = yield from disk.read(10, 4)
        return data

    data = sim.run_process(body())
    assert data[:SECTOR_SIZE] == b"\xaa" * SECTOR_SIZE
    assert data[SECTOR_SIZE:2 * SECTOR_SIZE] == b"\xbb" * SECTOR_SIZE
    assert data[2 * SECTOR_SIZE:] == b"\xaa" * (2 * SECTOR_SIZE)


def test_random_read_charges_seek_and_rotation(sim, disk):
    far_lba = disk.num_sectors - 128

    def body():
        yield from disk.read(far_lba, 128)
        return sim.now

    elapsed = sim.run_process(body())
    spec = disk.spec
    expected_min = (spec.per_op_overhead_s + spec.avg_rotational_latency_s
                    + disk.media_transfer_time(128 * SECTOR_SIZE))
    # A far seek adds close to max_seek.
    assert elapsed > expected_min + 0.8 * spec.max_seek_s


def test_sequential_read_skips_seek_and_rotation(sim, disk):
    nsectors = 128  # 64 KB

    def body():
        yield from disk.read(0, nsectors)
        first = sim.now
        yield from disk.read(nsectors, nsectors)
        second = sim.now - first
        return second

    second_op = sim.run_process(body())
    expected = (disk.spec.per_op_overhead_s
                + disk.media_transfer_time(nsectors * SECTOR_SIZE))
    assert second_op == pytest.approx(expected)


def test_sequential_write_pays_rotation_fraction(sim, disk):
    payload = bytes(64 * KIB)

    def body():
        yield from disk.write(0, payload)
        first = sim.now
        yield from disk.write(128, payload)
        return sim.now - first

    second_op = sim.run_process(body())
    spec = disk.spec
    expected = (spec.per_op_overhead_s
                + spec.sequential_write_rotation_fraction * spec.revolution_time_s
                + disk.media_transfer_time(len(payload)))
    assert second_op == pytest.approx(expected)


def test_sequential_read_rate_near_two_mb_s(sim, disk):
    """One disk streaming 64 KB reads sustains ~2 MB/s (Figure 7 anchor)."""
    total = 2 * MB
    unit = 64 * KIB

    def body():
        for index in range(total // unit):
            yield from disk.read(index * 128, 128)
        return sim.now

    elapsed = sim.run_process(body())
    rate = total / MB / elapsed
    assert 1.8 < rate < 2.3


def test_random_4k_service_time_near_23ms(sim, disk):
    """4 KB random ops on the IBM 0661 average ~23 ms (Table 2 anchor)."""
    import random

    rng = random.Random(42)
    lbas = [rng.randrange(0, disk.num_sectors - 8) for _ in range(50)]

    def body():
        for lba in lbas:
            yield from disk.read(lba, 8)
        return sim.now

    elapsed = sim.run_process(body())
    per_op = elapsed / len(lbas)
    assert 0.019 < per_op < 0.027


def test_failed_disk_raises(sim, disk):
    disk.fail()

    def body():
        yield from disk.read(0, 1)

    with pytest.raises(DiskFailedError):
        sim.run_process(body())


def test_repair_wipes_contents(sim, disk):
    def write_body():
        yield from disk.write(0, b"\x11" * SECTOR_SIZE)

    sim.run_process(write_body())
    disk.fail()
    disk.repair()
    assert disk.peek(0, 1) == bytes(SECTOR_SIZE)
    assert not disk.failed


def test_repair_can_preserve_contents(sim, disk):
    disk.poke(0, b"\x22" * SECTOR_SIZE)
    disk.fail()
    disk.repair(wipe=False)
    assert disk.peek(0, 1) == b"\x22" * SECTOR_SIZE


def test_out_of_range_extent_rejected(sim, disk):
    with pytest.raises(HardwareError):
        disk.peek(disk.num_sectors, 1)
    with pytest.raises(HardwareError):
        disk.peek(-1, 1)

    def body():
        yield from disk.read(disk.num_sectors - 1, 2)

    with pytest.raises(HardwareError):
        sim.run_process(body())


def test_unaligned_write_rejected(sim, disk):
    def body():
        yield from disk.write(0, b"odd-size")

    with pytest.raises(HardwareError):
        sim.run_process(body())


def test_zero_length_transfer_rejected(disk):
    with pytest.raises(HardwareError):
        disk.peek(0, 0)


def test_disk_serializes_commands(sim, disk):
    """Two concurrent reads are serviced one at a time."""
    done = []

    def reader(tag):
        yield from disk.read(0, 128)
        done.append((tag, sim.now))

    sim.process(reader("a"))
    sim.process(reader("b"))
    sim.run()
    assert len(done) == 2
    assert done[1][1] > done[0][1]


def test_stats_accumulate(sim, disk):
    def body():
        yield from disk.write(0, bytes(1024))
        yield from disk.read(0, 2)

    sim.run_process(body())
    assert disk.reads == 1
    assert disk.writes == 1
    assert disk.bytes_read == 1024
    assert disk.bytes_written == 1024
    assert disk.busy.busy_time > 0


def test_poke_peek_do_not_advance_clock(sim, disk):
    disk.poke(5, b"\x01" * SECTOR_SIZE)
    assert disk.peek(5, 1) == b"\x01" * SECTOR_SIZE
    assert sim.now == 0.0
