"""Tests for the Zebra striped network file system (Section 5.2)."""

import random

import pytest

from repro.errors import FileNotFoundFsError, ProtocolError, RaidError
from repro.sim import Simulator
from repro.units import KIB, MIB
from repro.zebra import ZebraClient, ZebraStorageServer


def make_ensemble(sim, nservers=4, fragment_bytes=64 * KIB):
    servers = [ZebraStorageServer(sim, name=f"zs{index}")
               for index in range(nservers)]
    client = ZebraClient(sim, servers, fragment_bytes=fragment_bytes)
    return servers, client


def pattern(nbytes, seed=0):
    return random.Random(seed).randbytes(nbytes)


@pytest.fixture
def sim():
    return Simulator()


def test_requires_three_servers(sim):
    servers = [ZebraStorageServer(sim) for _ in range(2)]
    with pytest.raises(RaidError):
        ZebraClient(sim, servers)


def test_fragment_size_must_be_block_multiple(sim):
    servers = [ZebraStorageServer(sim) for _ in range(3)]
    with pytest.raises(RaidError):
        ZebraClient(sim, servers, fragment_bytes=5000)


def test_roundtrip_through_buffer(sim):
    _servers, client = make_ensemble(sim)
    payload = pattern(20 * KIB, seed=1)
    client.create("/f")
    sim.run_process(client.write("/f", 0, payload))
    assert sim.run_process(client.read("/f", 0, len(payload))) == payload


def test_roundtrip_after_flush(sim):
    servers, client = make_ensemble(sim)
    payload = pattern(1 * MIB, seed=2)
    client.create("/f")
    sim.run_process(client.write("/f", 0, payload))
    sim.run_process(client.sync())
    assert client.stripes_flushed >= 5
    assert sim.run_process(client.read("/f", 0, len(payload))) == payload
    # Fragments really landed on the servers.
    assert sum(server.fragments_stored for server in servers) >= 5 * 4


def test_parity_rotates_across_servers(sim):
    _servers, client = make_ensemble(sim, nservers=4)
    assert [client.parity_server(stripe) for stripe in range(5)] == \
        [0, 1, 2, 3, 0]
    for stripe in range(4):
        parity = client.parity_server(stripe)
        data_nodes = [client.data_server(stripe, pos) for pos in range(3)]
        assert parity not in data_nodes
        assert sorted(data_nodes + [parity]) == [0, 1, 2, 3]


def test_sub_block_overwrite(sim):
    _servers, client = make_ensemble(sim)
    client.create("/f")
    sim.run_process(client.write("/f", 0, b"A" * 10_000))
    sim.run_process(client.sync())
    sim.run_process(client.write("/f", 100, b"B" * 50))
    data = sim.run_process(client.read("/f", 0, 10_000))
    assert data == b"A" * 100 + b"B" * 50 + b"A" * 9850


def test_buffered_rewrite_replaces_in_place(sim):
    _servers, client = make_ensemble(sim)
    client.create("/f")
    sim.run_process(client.write("/f", 0, pattern(4096, seed=3)))
    buffered = len(client._buffer)
    sim.run_process(client.write("/f", 0, pattern(4096, seed=4)))
    assert len(client._buffer) == buffered  # absorbed, no new log block
    assert sim.run_process(client.read("/f", 0, 4096)) == pattern(4096,
                                                                  seed=4)


def test_holes_read_as_zeros(sim):
    _servers, client = make_ensemble(sim)
    client.create("/f")
    sim.run_process(client.write("/f", 100 * KIB, b"tail"))
    data = sim.run_process(client.read("/f", 0, 4096))
    assert data == bytes(4096)


def test_single_server_loss_is_survivable(sim):
    servers, client = make_ensemble(sim)
    payload = pattern(1 * MIB, seed=5)
    client.create("/f")
    sim.run_process(client.write("/f", 0, payload))
    sim.run_process(client.sync())

    servers[1].fail()
    data = sim.run_process(client.read("/f", 0, len(payload)))
    assert data == payload
    assert client.fragments_rebuilt > 0


def test_double_server_loss_is_fatal(sim):
    servers, client = make_ensemble(sim)
    client.create("/f")
    sim.run_process(client.write("/f", 0, pattern(1 * MIB, seed=6)))
    sim.run_process(client.sync())
    servers[1].fail()
    servers[2].fail()

    def body():
        yield from client.read("/f", 0, 1 * MIB)

    with pytest.raises(RaidError):
        sim.run_process(body())


def test_restored_server_serves_again(sim):
    servers, client = make_ensemble(sim)
    payload = pattern(512 * KIB, seed=7)
    client.create("/f")
    sim.run_process(client.write("/f", 0, payload))
    sim.run_process(client.sync())
    servers[0].fail()
    assert sim.run_process(client.read("/f", 0, len(payload))) == payload
    servers[0].restore()
    rebuilt_before = client.fragments_rebuilt
    assert sim.run_process(client.read("/f", 0, len(payload))) == payload
    assert client.fragments_rebuilt == rebuilt_before  # no rebuild needed


def test_delete_removes_mappings(sim):
    _servers, client = make_ensemble(sim)
    client.create("/f")
    sim.run_process(client.write("/f", 0, b"x" * 4096))
    client.delete("/f")
    assert not client.exists("/f")
    with pytest.raises(FileNotFoundFsError):
        client.size_of("/f")


def test_server_rejects_duplicate_and_unknown_fragments(sim):
    server = ZebraStorageServer(sim)

    def body():
        yield from server.store((0, 0, 0), bytes(4096))
        yield from server.store((0, 0, 0), bytes(4096))

    with pytest.raises(ProtocolError):
        sim.run_process(body())

    def fetch_missing():
        yield from server.fetch((9, 9, 9))

    with pytest.raises(ProtocolError):
        sim.run_process(fetch_missing())


def test_multiple_files_interleaved(sim):
    _servers, client = make_ensemble(sim)
    a = pattern(300 * KIB, seed=8)
    b = pattern(300 * KIB, seed=9)
    client.create("/a")
    client.create("/b")

    def body():
        for index in range(0, 300 * KIB, 50 * KIB):
            yield from client.write("/a", index, a[index:index + 50 * KIB])
            yield from client.write("/b", index, b[index:index + 50 * KIB])
        yield from client.sync()

    sim.run_process(body())
    assert sim.run_process(client.read("/a", 0, len(a))) == a
    assert sim.run_process(client.read("/b", 0, len(b))) == b
