"""Crash-consistency sweep: crash at every device-write boundary.

A scripted LFS workload is first run against a
:class:`CrashableDevice` with an *empty* plan to count its device
writes; then, for every ``n`` up to that count, a fresh stack is built
and crashed at write ``n`` via :class:`HostCrash`.  The media snapshot
carried by the :class:`CrashPoint` is laid onto another fresh stack,
remounted (LFS roll-forward), and checked with the offline fsck — and,
on the RAID stack, a parity scrub.
"""

import dataclasses
import random

from repro.errors import CrashPoint
from repro.faults import (CrashableDevice, FaultInjector, FaultPlan,
                          HostCrash, restore_media)
from repro.hw import IBM_0661, DiskDrive
from repro.hw.specs import LFS_SPEC
from repro.lfs import LogStructuredFS
from repro.raid import DirectDiskPath, Raid5Controller
from repro.sim import Simulator
from repro.testing import (MemoryDevice, assert_fs_consistent,
                           assert_parity_clean)
from repro.units import KIB, MIB

FAST_SPEC = dataclasses.replace(LFS_SPEC, segment_bytes=128 * KIB,
                                fs_overhead_s=0.0, small_write_overhead_s=0.0)
SMALL_DISK = dataclasses.replace(IBM_0661, capacity_bytes=4 * MIB)
UNIT = 16 * KIB


def pattern(nbytes, seed):
    return random.Random(seed).randbytes(nbytes)


def _mem_stack(sim):
    """(device, controller-or-None, segment alignment)."""
    return MemoryDevice(sim, 8 * MIB), None, None


def _raid_stack(sim):
    paths = [DirectDiskPath(DiskDrive(sim, SMALL_DISK, name=f"d{i}"))
             for i in range(5)]
    ctrl = Raid5Controller(sim, paths, UNIT)
    row_bytes = ctrl.layout.data_units_per_row * ctrl.stripe_unit_bytes
    return ctrl, ctrl, row_bytes


def _workload(fs):
    yield from fs.create("/a")
    for index in range(4):
        yield from fs.write("/a", index * 24 * KIB,
                            pattern(24 * KIB, seed=30 + index))
        yield from fs.sync()
    yield from fs.create("/b")
    yield from fs.write("/b", 0, pattern(40 * KIB, seed=50))
    yield from fs.sync()
    yield from fs.checkpoint()


def _run_until_crash(make_stack, plan):
    """Format, mount through a crashable wrapper, run the workload.

    Returns ``(injector, crash-or-None)``.
    """
    sim = Simulator()
    device, _ctrl, align = make_stack(sim)
    formatter = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=64,
                                align_segments_to=align)
    sim.run_process(formatter.format())

    injector = FaultInjector(sim, plan)
    wrapped = CrashableDevice(device, injector)
    fs = LogStructuredFS(sim, wrapped, spec=FAST_SPEC, max_inodes=64,
                         align_segments_to=align)
    try:
        sim.run_process(fs.mount())
        sim.run_process(_workload(fs))
    except CrashPoint as crash:
        return injector, crash
    return injector, None


def _recover(make_stack, snapshot):
    """Fresh stack + snapshot + remount; returns (fs, controller)."""
    sim = Simulator()
    device, ctrl, align = make_stack(sim)
    restore_media(snapshot, device)
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=64,
                         align_segments_to=align)
    sim.run_process(fs.mount())
    return fs, ctrl


def _sweep(make_stack, torn_fraction):
    baseline, crash = _run_until_crash(make_stack, FaultPlan())
    assert crash is None
    total = baseline.device_writes
    assert total >= 6, f"workload too small to sweep ({total} writes)"

    for nth in range(1, total + 1):
        plan = FaultPlan.of(HostCrash(nth_write=nth,
                                      torn_fraction=torn_fraction))
        injector, crash = _run_until_crash(make_stack, plan)
        assert crash is not None, f"crash #{nth} never fired"
        assert injector.crashed
        assert crash.snapshot is not None

        fs, ctrl = _recover(make_stack, crash.snapshot)
        assert_fs_consistent(fs)
        if ctrl is not None:
            assert_parity_clean(ctrl)


def test_crash_at_every_write_boundary_memory_device():
    _sweep(_mem_stack, torn_fraction=0.0)


def test_crash_with_torn_writes_memory_device():
    _sweep(_mem_stack, torn_fraction=0.5)


def test_crash_at_every_write_boundary_raid5():
    _sweep(_raid_stack, torn_fraction=0.0)
