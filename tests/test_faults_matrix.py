"""Fault matrix: the same fault plans replayed across RAID levels 1/3/5.

CI runs this file once per level (``FAULT_MATRIX_LEVEL=1|3|5``); with
the variable unset, a local run covers all three.  Each level must
survive a mid-stream disk death with every byte intact, heal a
transient burst invisibly, and scrub clean after repair + rebuild.
"""

import dataclasses
import os
import random

import pytest

from repro.faults import DiskDeath, FaultPlan, TransientFault, attach_array
from repro.hw import IBM_0661, DiskDrive
from repro.raid import (DirectDiskPath, Raid1Controller, Raid3Controller,
                        Raid5Controller)
from repro.sim import Simulator
from repro.testing import assert_parity_clean
from repro.units import KIB, MIB, SECTOR_SIZE

SMALL_DISK = dataclasses.replace(IBM_0661, capacity_bytes=4 * MIB)
UNIT = 16 * KIB
SIZE = 512 * KIB

_LEVEL = os.environ.get("FAULT_MATRIX_LEVEL")
LEVELS = [int(_LEVEL)] if _LEVEL else [1, 3, 5]


def pattern(nbytes, seed):
    return random.Random(seed).randbytes(nbytes)


def make_level(sim, level):
    ndisks = 4 if level == 1 else 5
    paths = [DirectDiskPath(DiskDrive(sim, SMALL_DISK, name=f"d{i}"))
             for i in range(ndisks)]
    if level == 1:
        return paths, Raid1Controller(sim, paths, UNIT)
    if level == 3:
        return paths, Raid3Controller(sim, paths)
    return paths, Raid5Controller(sim, paths, UNIT)


def _scrub_rows(ctrl):
    layout = ctrl.layout
    row_bytes = layout.data_units_per_row * layout.unit_sectors * SECTOR_SIZE
    return -(-SIZE // row_bytes) + 1


@pytest.mark.parametrize("level", LEVELS)
def test_disk_death_mid_stream_then_rebuild(level):
    sim = Simulator()
    paths, ctrl = make_level(sim, level)
    base = pattern(SIZE, seed=level)
    sim.run_process(ctrl.write(0, base))

    start = sim.now
    assert sim.run_process(ctrl.read(0, SIZE)) == base
    elapsed = sim.now - start

    # d0 sees reads on every level (RAID 1's copy alternation skips
    # some drives entirely on a pure read stream).
    inj = attach_array(FaultPlan.of(
        DiskDeath(disk="d0", at_s=sim.now + elapsed / 2)), ctrl)

    def reader():
        for _ in range(4):
            data = yield from ctrl.read(0, SIZE)
            assert data == base

    sim.run_process(reader())
    assert paths[0].disk.failed
    assert ctrl.degraded_reads > 0
    assert inj.m_disk_deaths.value == 1

    paths[0].disk.repair()
    rows = _scrub_rows(ctrl)
    sim.run_process(ctrl.rebuild(0, max_rows=rows))
    assert_parity_clean(ctrl, max_rows=rows)
    assert sim.run_process(ctrl.read(0, SIZE)) == base


@pytest.mark.parametrize("level", LEVELS)
def test_transient_burst_is_invisible(level):
    sim = Simulator()
    _, ctrl = make_level(sim, level)
    base = pattern(SIZE, seed=10 + level)
    sim.run_process(ctrl.write(0, base))

    second = "d3" if level == 1 else "d2"
    inj = attach_array(FaultPlan.of(
        TransientFault(disk="d0", count=2),
        TransientFault(disk=second, count=1)), ctrl)

    assert sim.run_process(ctrl.read(0, SIZE)) == base
    assert sim.run_process(ctrl.read(0, SIZE)) == base
    assert ctrl.transient_retries == 3
    assert inj.m_transient_errors.value == 3
    assert ctrl.degraded_reads == 0
    assert_parity_clean(ctrl, max_rows=_scrub_rows(ctrl))
