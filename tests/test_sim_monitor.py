"""Unit tests for measurement monitors."""

import pytest

from repro.errors import SimulationError
from repro.sim import BusyMonitor, LatencyMonitor, Simulator, ThroughputMeter
from repro.units import MB


def test_throughput_meter_mb_per_s():
    sim = Simulator()
    meter = ThroughputMeter(sim)

    def body():
        meter.start()
        yield sim.timeout(2.0)
        meter.record(10 * MB)

    sim.run_process(body())
    assert meter.mb_per_s == pytest.approx(5.0)
    assert meter.ios_per_s == pytest.approx(0.5)
    assert meter.bytes_done == 10 * MB


def test_throughput_meter_requires_samples():
    meter = ThroughputMeter(Simulator())
    with pytest.raises(SimulationError):
        _ = meter.elapsed


def test_throughput_meter_autostarts_on_first_record():
    sim = Simulator()
    meter = ThroughputMeter(sim)

    def body():
        yield sim.timeout(1.0)
        meter.record(MB)
        yield sim.timeout(1.0)
        meter.record(MB)

    sim.run_process(body())
    assert meter.elapsed == pytest.approx(1.0)


def test_throughput_meter_zero_window_without_duration():
    # A single record in a zero-width window has no rate to report:
    # the meter answers a clear 0.0 (ZeroWindow), never float('inf').
    from repro.sim.monitor import ZeroWindow

    sim = Simulator()
    meter = ThroughputMeter(sim)
    meter.record(10 * MB)
    assert meter.elapsed == 0.0
    rate = meter.mb_per_s
    assert isinstance(rate, ZeroWindow)
    assert rate == 0.0
    assert not (rate == float("inf"))
    assert isinstance(meter.ios_per_s, ZeroWindow)


def test_throughput_meter_zero_window_uses_op_duration():
    # When the operation reports its own service time the meter can
    # still produce a meaningful rate from a single record.
    sim = Simulator()
    meter = ThroughputMeter(sim)
    meter.record(10 * MB, duration=2.0)
    assert meter.elapsed == 0.0
    assert meter.mb_per_s == pytest.approx(5.0)
    assert meter.ios_per_s == pytest.approx(0.5)


def test_throughput_meter_elapsed_window_wins_over_duration():
    sim = Simulator()
    meter = ThroughputMeter(sim)

    def body():
        meter.start()
        yield sim.timeout(2.0)
        meter.record(10 * MB, duration=0.5)

    sim.run_process(body())
    assert meter.mb_per_s == pytest.approx(5.0)


def test_latency_monitor_stats():
    mon = LatencyMonitor()
    for value in (0.01, 0.03, 0.02, 0.04):
        mon.record(value)
    assert len(mon) == 4
    assert mon.mean == pytest.approx(0.025)
    assert mon.maximum == pytest.approx(0.04)
    assert mon.percentile(50) == pytest.approx(0.02)
    assert mon.percentile(100) == pytest.approx(0.04)
    assert mon.percentile(0) == pytest.approx(0.01)


def test_latency_monitor_rejects_negative():
    mon = LatencyMonitor()
    with pytest.raises(SimulationError):
        mon.record(-1.0)


def test_latency_monitor_empty_rejected():
    mon = LatencyMonitor()
    with pytest.raises(SimulationError):
        _ = mon.mean
    with pytest.raises(SimulationError):
        mon.percentile(50)


def test_latency_monitor_single_sample_percentiles():
    # Nearest-rank on one sample: every percentile is that sample.
    mon = LatencyMonitor()
    mon.record(0.042)
    assert mon.percentile(0) == pytest.approx(0.042)
    assert mon.percentile(50) == pytest.approx(0.042)
    assert mon.percentile(100) == pytest.approx(0.042)
    assert mon.mean == pytest.approx(0.042)
    assert mon.maximum == pytest.approx(0.042)


def test_busy_monitor_tracks_utilization():
    sim = Simulator()
    mon = BusyMonitor(sim)

    def body():
        mon.enter()
        yield sim.timeout(3.0)
        mon.exit()
        yield sim.timeout(1.0)

    sim.run_process(body())
    assert mon.busy_time == pytest.approx(3.0)
    assert mon.utilization(4.0) == pytest.approx(0.75)


def test_busy_monitor_nesting():
    sim = Simulator()
    mon = BusyMonitor(sim)

    def body():
        mon.enter()
        yield sim.timeout(1.0)
        mon.enter()  # nested: should not double count
        yield sim.timeout(1.0)
        mon.exit()
        yield sim.timeout(1.0)
        mon.exit()

    sim.run_process(body())
    assert mon.busy_time == pytest.approx(3.0)


def test_busy_monitor_exit_without_enter():
    mon = BusyMonitor(Simulator())
    with pytest.raises(SimulationError):
        mon.exit()


def test_busy_monitor_counts_open_interval():
    sim = Simulator()
    mon = BusyMonitor(sim)

    def body():
        mon.enter()
        yield sim.timeout(2.0)

    sim.run_process(body())
    assert mon.utilization(2.0) == pytest.approx(1.0)


def test_busy_monitor_overfull_raises():
    # busy_time greater than the elapsed window means the intervals
    # overlap or exit() accounting went wrong; that is a bug, not a
    # 100%-utilization reading, so it must raise — never clamp.
    sim = Simulator()
    mon = BusyMonitor(sim)

    def body():
        mon.enter()
        yield sim.timeout(3.0)
        mon.exit()

    sim.run_process(body())
    with pytest.raises(SimulationError, match="busy"):
        mon.utilization(2.0)
    # Float noise just above 1.0 is tolerated and reported as 1.0.
    assert mon.utilization(3.0 * (1.0 - 1e-12)) == pytest.approx(1.0)
