"""Unit tests for RAID striping layouts."""

import pytest

from repro.errors import RaidError
from repro.raid import Raid0Layout, Raid1Layout, Raid3Layout, Raid5Layout
from repro.units import KIB, MIB, SECTOR_SIZE

UNIT = 64 * KIB
DISK = 8 * MIB


# ---------------------------------------------------------------------------
# RAID 0
# ---------------------------------------------------------------------------

def test_raid0_capacity_uses_all_disks():
    layout = Raid0Layout(4, UNIT, DISK)
    assert layout.capacity_bytes == 4 * (DISK // UNIT) * UNIT


def test_raid0_consecutive_units_rotate_disks():
    layout = Raid0Layout(4, UNIT, DISK)
    pieces = layout.map_data(0, 4 * UNIT)
    assert [piece.disk for piece in pieces] == [0, 1, 2, 3]
    assert all(piece.lba == layout.row_lba(piece.row) for piece in pieces)


def test_raid0_second_row_advances_lba():
    layout = Raid0Layout(4, UNIT, DISK)
    pieces = layout.map_data(4 * UNIT, UNIT)
    assert pieces[0].disk == 0
    assert pieces[0].row == 1
    assert pieces[0].lba == UNIT // SECTOR_SIZE


def test_map_data_sub_unit_piece():
    layout = Raid0Layout(4, UNIT, DISK)
    pieces = layout.map_data(UNIT + 2 * SECTOR_SIZE, 3 * SECTOR_SIZE)
    assert len(pieces) == 1
    piece = pieces[0]
    assert piece.disk == 1
    assert piece.unit_offset == 2 * SECTOR_SIZE
    assert piece.lba == 2
    assert piece.nsectors == 3


def test_map_data_spanning_units_splits():
    layout = Raid0Layout(4, UNIT, DISK)
    pieces = layout.map_data(UNIT - SECTOR_SIZE, 2 * SECTOR_SIZE)
    assert len(pieces) == 2
    assert pieces[0].disk == 0
    assert pieces[1].disk == 1
    assert pieces[0].nbytes == SECTOR_SIZE
    assert pieces[1].nbytes == SECTOR_SIZE


def test_map_data_preserves_order_and_coverage():
    layout = Raid0Layout(3, UNIT, DISK)
    offset, nbytes = 5 * SECTOR_SIZE, 7 * UNIT
    pieces = layout.map_data(offset, nbytes)
    assert pieces[0].logical_offset == offset
    position = offset
    for piece in pieces:
        assert piece.logical_offset == position
        position += piece.nbytes
    assert position == offset + nbytes


def test_check_range_rejects_misaligned():
    layout = Raid0Layout(4, UNIT, DISK)
    with pytest.raises(RaidError):
        layout.map_data(1, SECTOR_SIZE)
    with pytest.raises(RaidError):
        layout.map_data(0, 100)
    with pytest.raises(RaidError):
        layout.map_data(0, 0)
    with pytest.raises(RaidError):
        layout.map_data(layout.capacity_bytes, SECTOR_SIZE)


def test_rows_of():
    layout = Raid0Layout(4, UNIT, DISK)
    row_bytes = 4 * UNIT
    assert list(layout.rows_of(0, SECTOR_SIZE)) == [0]
    assert list(layout.rows_of(0, row_bytes)) == [0]
    assert list(layout.rows_of(0, row_bytes + SECTOR_SIZE)) == [0, 1]
    assert list(layout.rows_of(row_bytes * 2, row_bytes)) == [2]


# ---------------------------------------------------------------------------
# RAID 5
# ---------------------------------------------------------------------------

def test_raid5_capacity_excludes_parity():
    layout = Raid5Layout(5, UNIT, DISK)
    assert layout.capacity_bytes == 4 * (DISK // UNIT) * UNIT


def test_raid5_parity_rotates_left_symmetric():
    layout = Raid5Layout(5, UNIT, DISK)
    assert [layout.parity_disk(row) for row in range(6)] == [4, 3, 2, 1, 0, 4]


def test_raid5_data_never_on_parity_disk():
    layout = Raid5Layout(5, UNIT, DISK)
    for row in range(10):
        parity = layout.parity_disk(row)
        data_disks = [layout.data_disk(row, k) for k in range(4)]
        assert parity not in data_disks
        assert sorted(data_disks + [parity]) == [0, 1, 2, 3, 4]


def test_raid5_left_symmetric_sequential_spreads_over_all_disks():
    """Consecutive logical units visit consecutive disks modulo N."""
    layout = Raid5Layout(5, UNIT, DISK)
    pieces = layout.map_data(0, 8 * UNIT)
    disks = [piece.disk for piece in pieces]
    # Row 0: parity on disk 4, data on 0,1,2,3; row 1: parity on 3,
    # data continues 4,0,1,2 (left-symmetric).
    assert disks == [0, 1, 2, 3, 4, 0, 1, 2]


def test_raid5_minimum_disks():
    with pytest.raises(RaidError):
        Raid5Layout(2, UNIT, DISK)


def test_raid5_logical_offset_of_unit_inverts_mapping():
    layout = Raid5Layout(5, UNIT, DISK)
    for row in (0, 1, 7):
        for k in range(4):
            offset = layout.logical_offset_of_unit(row, k)
            piece = layout.map_data(offset, UNIT)[0]
            assert piece.row == row
            assert piece.disk == layout.data_disk(row, k)


# ---------------------------------------------------------------------------
# RAID 1
# ---------------------------------------------------------------------------

def test_raid1_capacity_is_half():
    layout = Raid1Layout(6, UNIT, DISK)
    assert layout.capacity_bytes == 3 * (DISK // UNIT) * UNIT


def test_raid1_mirror_pairs():
    layout = Raid1Layout(6, UNIT, DISK)
    assert layout.mirror_of(0) == 3
    assert layout.mirror_of(3) == 0
    assert layout.mirror_of(2) == 5


def test_raid1_requires_even_disks():
    with pytest.raises(RaidError):
        Raid1Layout(3, UNIT, DISK)


# ---------------------------------------------------------------------------
# RAID 3
# ---------------------------------------------------------------------------

def test_raid3_sector_interleave():
    layout = Raid3Layout(5, DISK)
    assert layout.stripe_unit_bytes == SECTOR_SIZE
    pieces = layout.map_data(0, 8 * SECTOR_SIZE)
    assert [piece.disk for piece in pieces] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_raid3_fixed_parity_disk():
    layout = Raid3Layout(5, DISK)
    assert all(layout.parity_disk(row) == 4 for row in range(10))


def test_bad_stripe_unit_rejected():
    with pytest.raises(RaidError):
        Raid0Layout(4, 1000, DISK)  # not sector aligned
    with pytest.raises(RaidError):
        Raid0Layout(0, UNIT, DISK)
