"""Host file cache on the standard (Ethernet) path: hits and coherence."""

import random

import pytest

from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB, MIB


@pytest.fixture
def setup():
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    sim.run_process(server.setup_lfs())
    payload = random.Random(4).randbytes(256 * KIB)

    def body():
        yield from server.fs.create("/file")
        yield from server.fs.write("/file", 0, payload)
        yield from server.fs.sync()

    sim.run_process(body())
    return sim, server, payload


def test_repeat_read_hits_host_cache(setup):
    sim, server, payload = setup
    start = sim.now
    first = sim.run_process(server.ethernet_read("/file", 0, 64 * KIB))
    cold = sim.now - start
    start = sim.now
    second = sim.run_process(server.ethernet_read("/file", 0, 64 * KIB))
    warm = sim.now - start
    assert first == second == payload[:64 * KIB]
    assert server.host_cache.hits == 1
    # The warm read skips the array and control port; only the
    # Ethernet leg remains, so it is measurably faster.
    assert warm < 0.9 * cold


def test_cache_hit_skips_array_io(setup):
    sim, server, _payload = setup
    sim.run_process(server.ethernet_read("/file", 0, 32 * KIB))
    reads_before = sum(d.reads for d in server.board.disks)
    sim.run_process(server.ethernet_read("/file", 0, 32 * KIB))
    assert sum(d.reads for d in server.board.disks) == reads_before


def test_write_invalidates_cached_ranges(setup):
    sim, server, _payload = setup
    sim.run_process(server.ethernet_read("/file", 0, 32 * KIB))
    assert len(server.host_cache) == 1
    sim.run_process(server.ethernet_write("/file", 0, b"\xff" * 4096))
    assert len(server.host_cache) == 0
    data = sim.run_process(server.ethernet_read("/file", 0, 4096))
    assert data == b"\xff" * 4096


def test_write_to_other_file_keeps_cache(setup):
    sim, server, _payload = setup
    sim.run_process(server.ethernet_read("/file", 0, 32 * KIB))

    def body():
        yield from server.fs.create("/other")
        yield from server.ethernet_write("/other", 0, b"x" * 4096)

    sim.run_process(body())
    assert len(server.host_cache) == 1


def test_cache_distinguishes_ranges(setup):
    sim, server, payload = setup
    a = sim.run_process(server.ethernet_read("/file", 0, 16 * KIB))
    b = sim.run_process(server.ethernet_read("/file", 16 * KIB, 16 * KIB))
    assert a == payload[:16 * KIB]
    assert b == payload[16 * KIB:32 * KIB]
    assert len(server.host_cache) == 2
