"""Tests for LFS rename semantics."""

import dataclasses

import pytest

from repro.errors import (FileExistsFsError, FileNotFoundFsError,
                          FileSystemError)
from repro.hw.specs import LFS_SPEC
from repro.lfs import FileType, LogStructuredFS
from repro.sim import Simulator
from repro.testing import MemoryDevice
from repro.units import KIB, MIB

FAST_SPEC = dataclasses.replace(LFS_SPEC, segment_bytes=128 * KIB,
                                fs_overhead_s=0.0, small_write_overhead_s=0.0)


@pytest.fixture
def setup():
    sim = Simulator()
    device = MemoryDevice(sim, 8 * MIB)
    fs = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=64)
    sim.run_process(fs.format())
    return sim, device, fs


def test_rename_within_directory(setup):
    sim, _device, fs = setup
    sim.run_process(fs.create("/old"))
    sim.run_process(fs.write("/old", 0, b"contents"))
    sim.run_process(fs.rename("/old", "/new"))
    assert sim.run_process(fs.exists("/old")) is False
    assert sim.run_process(fs.read("/new", 0, 8)) == b"contents"


def test_rename_across_directories(setup):
    sim, _device, fs = setup
    sim.run_process(fs.mkdir("/a"))
    sim.run_process(fs.mkdir("/b"))
    sim.run_process(fs.create("/a/f"))
    sim.run_process(fs.write("/a/f", 0, b"moved"))
    sim.run_process(fs.rename("/a/f", "/b/g"))
    assert sim.run_process(fs.readdir("/a")) == {}
    assert sim.run_process(fs.read("/b/g", 0, 5)) == b"moved"


def test_rename_preserves_inode(setup):
    sim, _device, fs = setup
    sim.run_process(fs.create("/f"))
    before = sim.run_process(fs.stat("/f")).ino
    sim.run_process(fs.rename("/f", "/g"))
    assert sim.run_process(fs.stat("/g")).ino == before


def test_rename_replaces_existing_file(setup):
    sim, _device, fs = setup
    sim.run_process(fs.create("/src"))
    sim.run_process(fs.write("/src", 0, b"winner"))
    sim.run_process(fs.create("/dst"))
    sim.run_process(fs.write("/dst", 0, b"loser"))
    sim.run_process(fs.rename("/src", "/dst"))
    assert sim.run_process(fs.exists("/src")) is False
    assert sim.run_process(fs.read("/dst", 0, 6)) == b"winner"


def test_rename_directory(setup):
    sim, _device, fs = setup
    sim.run_process(fs.mkdir("/dir"))
    sim.run_process(fs.create("/dir/child"))
    sim.run_process(fs.rename("/dir", "/renamed"))
    entries = sim.run_process(fs.readdir("/renamed"))
    assert "child" in entries


def test_rename_directory_into_itself_rejected(setup):
    sim, _device, fs = setup
    sim.run_process(fs.mkdir("/dir"))
    with pytest.raises(FileSystemError):
        sim.run_process(fs.rename("/dir", "/dir/sub"))


def test_rename_onto_directory_rejected(setup):
    sim, _device, fs = setup
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.mkdir("/d"))
    with pytest.raises(FileExistsFsError):
        sim.run_process(fs.rename("/f", "/d"))


def test_rename_missing_source_rejected(setup):
    sim, _device, fs = setup
    with pytest.raises(FileNotFoundFsError):
        sim.run_process(fs.rename("/ghost", "/new"))


def test_rename_onto_itself_is_noop(setup):
    sim, _device, fs = setup
    sim.run_process(fs.create("/f"))
    sim.run_process(fs.write("/f", 0, b"same"))
    sim.run_process(fs.rename("/f", "/f"))
    assert sim.run_process(fs.read("/f", 0, 4)) == b"same"


def test_rename_survives_crash_after_sync(setup):
    sim, device, fs = setup
    sim.run_process(fs.create("/before"))
    sim.run_process(fs.write("/before", 0, b"data"))
    sim.run_process(fs.checkpoint())
    sim.run_process(fs.rename("/before", "/after"))
    sim.run_process(fs.sync())
    fs.crash()

    fs2 = LogStructuredFS(sim, device, spec=FAST_SPEC, max_inodes=64)
    sim.run_process(fs2.mount())
    assert sim.run_process(fs2.exists("/before")) is False
    assert sim.run_process(fs2.read("/after", 0, 4)) == b"data"
