"""Integration tests for the assembled RAID-II and RAID-I servers.

These include the first calibration anchors: the RAID-I 2.3 MB/s
ceiling, hardware-level throughput in the right regime, and the
network-client rates of Section 3.4.
"""

import random

import pytest

from repro.net import UltranetLink
from repro.server import Raid1Server, Raid2Config, Raid2Server
from repro.server.raid2 import make_sparcstation_client
from repro.sim import Simulator
from repro.units import KIB, MB, MIB
from repro.workloads import (random_aligned_offsets, run_request_stream,
                             sequential_offsets)


def pattern(nbytes, seed=0):
    return random.Random(seed).randbytes(nbytes)


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------

def test_default_server_shape():
    sim = Simulator()
    server = Raid2Server(sim)
    assert len(server.boards) == 1
    assert len(server.raid.paths) == 24
    assert server.raid.capacity_bytes > 7000 * MB  # 23/24 of 24 x 320 MB


def test_table1_config_has_thirty_disks():
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.table1_sequential())
    assert len(server.raid.paths) == 30


def test_fig8_config_has_sixteen_disks():
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    assert len(server.raid.paths) == 16


def test_multi_board_server():
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config(boards=2))
    assert len(server.boards) == 2
    assert len(server.raids) == 2


# ---------------------------------------------------------------------------
# hardware system level paths
# ---------------------------------------------------------------------------

def test_hw_write_then_read_roundtrip_data():
    sim = Simulator()
    server = Raid2Server(sim)

    def body():
        yield from server.hw_write(0, 512 * KIB, fill=0xAB)
        yield from server.hw_read(0, 512 * KIB)

    sim.run_process(body())
    assert server.raid.peek(0, 512 * KIB) == b"\xab" * (512 * KIB)
    assert server.raid.verify_parity(max_rows=1)


def test_hw_large_random_read_rate_near_20_mb_s():
    """Figure 5 anchor: large random reads land near 20 MB/s."""
    sim = Simulator()
    server = Raid2Server(sim)
    rng = random.Random(11)
    requests = random_aligned_offsets(
        rng, server.raid.capacity_bytes, 1536 * KIB, 10, alignment=512)

    def op(offset, size):
        yield from server.hw_read(offset, size)

    result = run_request_stream(sim, op, requests)
    assert 15.0 < result.mb_per_s < 26.0


def test_hw_sequential_read_faster_than_random():
    """Table 1 vs Figure 5: the streaming sequential harness beats
    synchronous random requests.

    The sequential test strides by whole stripe rows and keeps three
    requests in flight (the read-ahead/double-buffering any streaming
    driver provides); the random test issues synchronous back-to-back
    requests, as Figure 5's harness did.
    """
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.table1_sequential())
    row = server.raid.layout.data_units_per_row * server.raid.stripe_unit_bytes
    stride = -(-1600 * KIB // row) * row
    seq = [(i * stride, 1600 * KIB) for i in range(20)]

    def op(offset, size):
        yield from server.hw_read(offset, size)

    sequential_rate = run_request_stream(sim, op, seq,
                                         concurrency=3).mb_per_s

    sim2 = Simulator()
    server2 = Raid2Server(sim2, Raid2Config.paper_default())
    rng = random.Random(3)
    rand = random_aligned_offsets(
        rng, server2.raid.capacity_bytes, 1600 * KIB, 20, alignment=512)

    def op2(offset, size):
        yield from server2.hw_read(offset, size)

    random_rate = run_request_stream(sim2, op2, rand).mb_per_s
    assert sequential_rate > 1.25 * random_rate


def test_hw_reads_faster_than_writes():
    """Writes pay parity traffic and get no read-ahead (Section 2.3)."""
    sim = Simulator()
    server = Raid2Server(sim)
    seq = sequential_offsets(server.raid.capacity_bytes, 1536 * KIB, 6)

    def read_op(offset, size):
        yield from server.hw_read(offset, size)

    read_rate = run_request_stream(sim, read_op, seq).mb_per_s

    sim2 = Simulator()
    server2 = Raid2Server(sim2)

    def write_op(offset, size):
        yield from server2.hw_write(offset, size)

    write_rate = run_request_stream(sim2, write_op, seq).mb_per_s
    assert read_rate > write_rate


# ---------------------------------------------------------------------------
# LFS on the server
# ---------------------------------------------------------------------------

def test_lfs_on_server_roundtrip():
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    sim.run_process(server.setup_lfs())
    payload = pattern(2 * MIB, seed=5)

    def body():
        yield from server.fs.create("/data")
        yield from server.fs.write("/data", 0, payload)
        yield from server.fs.sync()
        data = yield from server.fs.read("/data", 0, len(payload))
        return data

    assert sim.run_process(body()) == payload
    assert server.raid.verify_parity(max_rows=8)


def test_lfs_segment_flush_uses_full_stripe_writes():
    """LFS's large sequential segments become efficient array writes."""
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    sim.run_process(server.setup_lfs())

    def body():
        yield from server.fs.create("/f")
        yield from server.fs.write("/f", 0, pattern(4 * MIB, seed=6))
        yield from server.fs.sync()

    sim.run_process(body())
    # Each whole-segment flush (960 KiB = one stripe row of the 16-disk
    # array) lands as one full-stripe write; only checkpoint-region and
    # partial-fragment writes fall back to read-modify-write.
    assert server.raid.full_stripe_writes >= 3


# ---------------------------------------------------------------------------
# network clients (Section 3.4 anchors)
# ---------------------------------------------------------------------------

def make_lfs_server_with_file(sim, nbytes, seed=7):
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    sim.run_process(server.setup_lfs())
    payload = pattern(nbytes, seed=seed)

    def body():
        yield from server.fs.create("/file")
        yield from server.fs.write("/file", 0, payload)
        yield from server.fs.sync()

    sim.run_process(body())
    return server, payload


def test_client_read_rate_near_3_mb_s():
    sim = Simulator()
    server, payload = make_lfs_server_with_file(sim, 4 * MIB)
    client = make_sparcstation_client(sim)
    link = UltranetLink(sim)

    start = sim.now
    data = sim.run_process(
        server.client_read(client, link, "/file", 0, len(payload)))
    rate = len(payload) / MB / (sim.now - start)
    assert data == payload
    assert 2.4 < rate < 4.2


def test_client_write_rate_near_3_mb_s():
    sim = Simulator()
    server, _payload = make_lfs_server_with_file(sim, 64 * KIB)
    client = make_sparcstation_client(sim)
    link = UltranetLink(sim)
    blob = pattern(4 * MIB, seed=8)

    start = sim.now
    sim.run_process(server.client_write(client, link, "/file", 0, blob))
    rate = len(blob) / MB / (sim.now - start)
    assert 2.3 < rate < 4.0


def test_client_write_leaves_host_cpu_nearly_idle():
    """Section 3.4: host utilization 'close to zero' during client writes."""
    sim = Simulator()
    server, _payload = make_lfs_server_with_file(sim, 64 * KIB)
    client = make_sparcstation_client(sim)
    link = UltranetLink(sim)
    blob = pattern(2 * MIB, seed=9)

    start = sim.now
    sim.run_process(server.client_write(client, link, "/file", 0, blob))
    elapsed = sim.now - start
    assert server.host.cpu_utilization(elapsed) < 0.15


def test_ethernet_path_is_slow_but_correct():
    sim = Simulator()
    server, payload = make_lfs_server_with_file(sim, 256 * KIB)
    start = sim.now
    data = sim.run_process(server.ethernet_read("/file", 0, len(payload)))
    rate = len(payload) / MB / (sim.now - start)
    assert data == payload
    assert rate < 1.3  # Ethernet line rate bound


def test_ethernet_write_roundtrip():
    sim = Simulator()
    server, _payload = make_lfs_server_with_file(sim, 64 * KIB)
    blob = pattern(32 * KIB, seed=10)
    sim.run_process(server.ethernet_write("/file", 0, blob))
    data = sim.run_process(server.ethernet_read("/file", 0, len(blob)))
    assert data == blob


# ---------------------------------------------------------------------------
# the RAID-I baseline (Section 1 anchors)
# ---------------------------------------------------------------------------

def test_raid1_app_read_saturates_near_2_3_mb_s():
    """The famous ceiling: 2.3 MB/s to a user-level application."""
    sim = Simulator()
    server = Raid1Server(sim)
    seq = sequential_offsets(server.raid.capacity_bytes, 1 * MIB, 8)

    def op(offset, size):
        yield from server.app_read(offset, size)

    rate = run_request_stream(sim, op, seq).mb_per_s
    assert 2.0 < rate < 2.6


def test_raid1_single_disk_read_near_1_3_mb_s():
    sim = Simulator()
    server = Raid1Server(sim)
    disk = server.paths[0].disk
    requests = sequential_offsets(disk.spec.capacity_bytes, 64 * KIB, 16)

    def op(offset, size):
        yield from server.single_disk_read(0, offset // 512, size // 512)

    # Two outstanding requests: the user-space copy of one overlaps the
    # disk transfer of the next (the kernel's read-ahead).
    rate = run_request_stream(sim, op, requests, concurrency=2).mb_per_s
    assert 1.1 < rate < 1.5


def test_raid2_hw_order_of_magnitude_faster_than_raid1():
    """The paper's headline: RAID-II is ~10x RAID-I on bandwidth."""
    sim1 = Simulator()
    raid1 = Raid1Server(sim1)
    seq1 = sequential_offsets(raid1.raid.capacity_bytes, 1 * MIB, 6)

    def op1(offset, size):
        yield from raid1.app_read(offset, size)

    rate1 = run_request_stream(sim1, op1, seq1).mb_per_s

    sim2 = Simulator()
    raid2 = Raid2Server(sim2)
    seq2 = sequential_offsets(raid2.raid.capacity_bytes, 1536 * KIB, 6)

    def op2(offset, size):
        yield from raid2.hw_read(offset, size)

    rate2 = run_request_stream(sim2, op2, seq2).mb_per_s
    assert rate2 > 7 * rate1
