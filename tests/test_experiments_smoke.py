"""Smoke tests for the experiment modules (full runs live in benchmarks/)."""

import pytest

from repro.experiments import (base, fig5_degraded, fig6_hippi_loopback,
                               fig7_string_scaling, rebuild_under_load,
                               vme_ports)
from repro.experiments.base import ExperimentResult, Point, Series


def test_series_helpers():
    series = Series("s", "x", "y")
    series.add(1, 10.0)
    series.add(2, 20.0)
    assert series.y_at(2) == 20.0
    assert series.max_y == 20.0
    with pytest.raises(KeyError):
        series.y_at(3)


def test_result_render_contains_anchors():
    result = ExperimentResult(
        experiment_id="x", title="T",
        series=[Series("s", "KB", "MB/s", [Point(1, 2.0)])],
        scalars={"rate": 12.34}, paper={"rate": 10.0},
        notes=["a note"])
    text = result.render()
    assert "x: T" in text
    assert "12.34" in text
    assert "(paper: 10)" in text
    assert "a note" in text


def test_result_series_lookup():
    result = ExperimentResult("x", "T", series=[Series("a", "x", "y")])
    assert result.series_named("a").name == "a"
    with pytest.raises(KeyError):
        result.series_named("b")


def test_ratio_helper():
    assert base.ratio(5.0, 10.0) == 0.5
    assert base.ratio(5.0, None) is None
    assert base.ratio(5.0, 0) is None


def test_vme_ports_quick():
    result = vme_ports.run(quick=True)
    assert result.experiment_id == "vme-ports"
    assert 6.0 < result.scalars["vme_read_mb_s"] < 7.0


def test_fig7_quick():
    result = fig7_string_scaling.run(quick=True)
    measured = result.series_named("measured")
    assert len(measured.points) == 5
    assert measured.points[0].y < measured.points[-1].y


def test_fig6_quick():
    result = fig6_hippi_loopback.run(quick=True)
    series = result.series_named("loopback throughput")
    ys = [point.y for point in series.points]
    assert ys == sorted(ys)  # monotone in transfer size


def test_fig5_degraded_quick():
    result = fig5_degraded.run(quick=True)
    assert result.experiment_id == "fig5-degraded"
    scalars = result.scalars
    assert scalars["healthy_plateau_mb_s"] > 0
    assert 0 < scalars["degraded_fraction"] <= 1.0
    assert scalars["degraded_reads_total"] > 0
    assert scalars["parity_clean_after_rebuild"] == 1.0


def test_rebuild_under_load_quick():
    result = rebuild_under_load.run(quick=True)
    assert result.experiment_id == "rebuild-under-load"
    scalars = result.scalars
    assert scalars["rebuild_idle_mb_s"] > 0
    # Contention slows both sides; neither should stall outright.
    assert 0 < scalars["rebuild_slowdown_fraction"] <= 1.0
    assert 0 < scalars["client_slowdown_fraction"] <= 1.0
    assert scalars["parity_clean_after_rebuild"] == 1.0
