"""Property-based tests for Zebra: shadow-model equivalence and
single-server-loss recoverability under arbitrary operation mixes."""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator
from repro.units import KIB
from repro.zebra import ZebraClient, ZebraStorageServer

FILES = ["/a", "/b"]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.sampled_from(FILES),
                  st.integers(0, 40), st.integers(1, 24),
                  st.integers(0, 255)),
        st.tuples(st.just("sync"),),
        st.tuples(st.just("delete"), st.sampled_from(FILES)),
    ),
    min_size=1, max_size=10,
)

BLOCK = 4 * KIB


def build(nservers=4):
    sim = Simulator()
    servers = [ZebraStorageServer(sim, name=f"zs{index}")
               for index in range(nservers)]
    client = ZebraClient(sim, servers, fragment_bytes=32 * KIB)
    return sim, servers, client


def apply_ops(sim, client, shadow, ops):
    for op in ops:
        if op[0] == "write":
            _k, path, start_block, nblocks, fill = op
            offset = start_block * BLOCK
            payload = bytes([fill]) * (nblocks * BLOCK)
            if path not in shadow:
                client.create(path)
                shadow[path] = bytearray()
            data = shadow[path]
            end = offset + len(payload)
            if len(data) < end:
                data.extend(bytes(end - len(data)))
            data[offset:end] = payload
            sim.run_process(client.write(path, offset, payload))
        elif op[0] == "sync":
            sim.run_process(client.sync())
        elif op[0] == "delete":
            _k, path = op
            if path in shadow:
                del shadow[path]
                client.delete(path)


def check(sim, client, shadow):
    for path in FILES:
        if path in shadow:
            expected = bytes(shadow[path])
            assert client.size_of(path) == len(expected)
            got = sim.run_process(client.read(path, 0, len(expected)))
            assert got == expected
        else:
            assert not client.exists(path)


@given(ops=operations)
@settings(max_examples=25, deadline=None)
def test_zebra_matches_shadow_model(ops):
    sim, _servers, client = build()
    shadow: dict[str, bytearray] = {}
    apply_ops(sim, client, shadow, ops)
    check(sim, client, shadow)


@given(ops=operations, victim=st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_zebra_single_server_loss_never_loses_data(ops, victim):
    sim, servers, client = build()
    shadow: dict[str, bytearray] = {}
    apply_ops(sim, client, shadow, ops)
    sim.run_process(client.sync())
    servers[victim].fail()
    check(sim, client, shadow)


@given(ops=operations)
@settings(max_examples=15, deadline=None)
def test_zebra_stripe_parity_invariant(ops):
    """Every flushed stripe's parity fragment equals the XOR of its
    data fragments, verified against the servers' raw stores."""
    from repro.hw.parity import xor_blocks

    sim, servers, client = build()
    shadow: dict[str, bytearray] = {}
    apply_ops(sim, client, shadow, ops)
    sim.run_process(client.sync())

    for stripe in range(client.stripes_flushed):
        fragments = []
        for position in range(len(servers) - 1):
            node = servers[client.data_server(stripe, position)]
            key = (client.client_id, stripe, position)
            assert node.has_fragment(key)
            fragments.append(sim.run_process(node.fetch(key)))
        parity_node = servers[client.parity_server(stripe)]
        parity = sim.run_process(parity_node.fetch(
            (client.client_id, stripe, len(servers) - 1)))
        assert xor_blocks(fragments) == parity
