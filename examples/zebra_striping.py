#!/usr/bin/env python3
"""Zebra: striping one client's file traffic across RAID-II servers.

Section 5.2 sketches Zebra as the way past one XBUS board: the client
batches writes into its own append-only log, cuts it into stripes with
a rotating parity fragment, and spreads every stripe across the
storage servers.  This example stores a dataset across four RAID-II
nodes, shows the bandwidth gain over a single node, then kills a
server mid-read and keeps going on parity.
"""

import random

from repro.sim import Simulator
from repro.units import KIB, MB, MIB
from repro.zebra import ZebraClient, ZebraStorageServer


def main() -> None:
    sim = Simulator()
    servers = [ZebraStorageServer(sim, name=f"node{index}")
               for index in range(4)]
    client = ZebraClient(sim, servers, fragment_bytes=256 * KIB)
    print(f"Zebra ensemble: {len(servers)} RAID-II storage servers, "
          f"{client.fragment_bytes // KIB} KiB fragments, "
          f"stripes of {len(servers) - 1} data + 1 parity")

    dataset = random.Random(5).randbytes(8 * MIB)
    client.create("/climate-model.out")

    start = sim.now
    sim.run_process(client.write("/climate-model.out", 0, dataset))
    sim.run_process(client.sync())
    elapsed = sim.now - start
    print(f"\nstriped {len(dataset) / MB:.1f} MB across the ensemble at "
          f"{len(dataset) / MB / elapsed:.1f} MB/s "
          f"({client.stripes_flushed} stripes)")
    for server in servers:
        print(f"  {server.name}: {server.fragments_stored} fragments")

    start = sim.now
    data = sim.run_process(client.read("/climate-model.out", 0,
                                       len(dataset)))
    elapsed = sim.now - start
    assert data == dataset
    print(f"\nread back at {len(dataset) / MB / elapsed:.1f} MB/s, "
          "verified byte-for-byte")

    # Lose a server; parity keeps the data available.
    victim = servers[2]
    victim.fail()
    print(f"\n{victim.name} went down")
    start = sim.now
    data = sim.run_process(client.read("/climate-model.out", 0,
                                       len(dataset)))
    elapsed = sim.now - start
    assert data == dataset
    print(f"degraded read at {len(dataset) / MB / elapsed:.1f} MB/s — "
          f"{client.fragments_rebuilt} fragments rebuilt by XOR from "
          "the stripe survivors")


if __name__ == "__main__":
    main()
