#!/usr/bin/env python3
"""Video storage and playback server — the Gigabit Test Bed scenario.

Section 5.1: "RAID-II will act as a high-bandwidth video storage and
playback server.  Data collected from an electron microscope at LBL
will be sent from a video digitizer across an extended HIPPI network
for storage on RAID-II", and the InfoPad project will stream video
back out to a network of base stations.

This example ingests a simulated digitizer feed over the HIPPI path,
then serves several concurrent playback streams, checking that each
stream sustains its required frame rate.
"""

import random

from repro.net import UltranetLink
from repro.server import Raid2Config, Raid2Server
from repro.server.raid2 import make_sparcstation_client
from repro.sim import Simulator
from repro.units import KIB, MB, MIB

FRAME_BYTES = 300 * KIB      # one digitized microscope frame
FRAMES = 60
PLAYBACK_STREAMS = 3
#: Per-stream frame rate each InfoPad base station must sustain
#: (~0.6 MB/s per stream; the 3 MB/s clients have headroom).
STREAM_RATE_HZ = 2.0


def main() -> None:
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.paper_default())
    sim.run_process(server.setup_lfs())
    fs = server.fs
    rng = random.Random(11)

    # ---- ingest: the digitizer pushes frames over the HIPPI path ----
    sim.run_process(fs.mkdir("/video"))
    sim.run_process(fs.create("/video/session1"))
    feed = rng.randbytes(FRAME_BYTES)

    start = sim.now

    def ingest():
        for frame in range(FRAMES):
            yield from server.board.receive_hippi(FRAME_BYTES)
            yield from fs.write("/video/session1", frame * FRAME_BYTES, feed)
        yield from fs.sync()

    sim.run_process(ingest())
    elapsed = sim.now - start
    total = FRAMES * FRAME_BYTES
    print(f"ingested {FRAMES} frames ({total / MB:.1f} MB) "
          f"at {total / MB / elapsed:.1f} MB/s "
          f"({FRAMES / elapsed:.0f} frames/s)")

    # ---- playback: concurrent client streams with a frame deadline ----
    clients = [make_sparcstation_client(sim, name=f"pad{index}")
               for index in range(PLAYBACK_STREAMS)]
    links = [UltranetLink(sim, name=f"link{index}")
             for index in range(PLAYBACK_STREAMS)]
    deadline = 1.0 / STREAM_RATE_HZ
    late_frames = [0]

    def playback(client, link, stream_index):
        for frame in range(0, FRAMES, PLAYBACK_STREAMS):
            frame_start = sim.now
            yield from server.client_read(
                client, link, "/video/session1",
                frame * FRAME_BYTES, FRAME_BYTES)
            if sim.now - frame_start > deadline:
                late_frames[0] += 1

    start = sim.now
    for client, link, index in zip(clients, links, range(PLAYBACK_STREAMS)):
        sim.process(playback(client, link, index))
    sim.run()
    elapsed = sim.now - start
    served = FRAMES  # across all streams
    print(f"served {PLAYBACK_STREAMS} playback streams "
          f"({served * FRAME_BYTES / MB:.1f} MB) in {elapsed:.2f} s "
          f"simulated -> {served * FRAME_BYTES / MB / elapsed:.1f} MB/s "
          f"aggregate")
    print(f"late frames (> {deadline * 1000:.0f} ms deadline): "
          f"{late_frames[0]} of {served}")

    print(f"host CPU utilization during playback: "
          f"{server.host.cpu_utilization(elapsed):.0%} "
          f"(bulk data bypasses the host)")


if __name__ == "__main__":
    main()
