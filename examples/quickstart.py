#!/usr/bin/env python3
"""Quickstart: build the RAID-II prototype, store a file, read it back.

Runs the full simulated stack — 24 IBM 0661 drives on SCSI strings
behind Cougar controllers, the XBUS crossbar board with its parity
engine and HIPPI ports, RAID 5, and the Log-Structured File System —
and reports the simulated time and bandwidth of each step.
"""

import random

from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import MB, MIB


def main() -> None:
    sim = Simulator()
    # The paper's LFS configuration: 16 disks, so a 960 KB segment is
    # exactly one stripe row and every segment flush is a full-stripe
    # write (Section 3.4).
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    print("RAID-II prototype up:")
    print(f"  disks        : {len(server.raid.paths)}")
    print(f"  array size   : {server.raid.capacity_bytes / MB:.0f} MB "
          f"(RAID 5, one parity group)")
    print(f"  stripe unit  : {server.raid.stripe_unit_bytes // 1024} KiB")

    sim.run_process(server.setup_lfs())
    print(f"  file system  : LFS, "
          f"{server.fs.sb.segment_blocks * 4096 // 1024} KiB segments, "
          f"{server.fs.sb.nsegments} segments")

    payload = random.Random(7).randbytes(8 * MIB)

    start = sim.now
    sim.run_process(server.fs.create("/demo/data".replace("/demo", "")))
    sim.run_process(server.fs.write("/data", 0, payload))
    sim.run_process(server.fs.sync())
    write_elapsed = sim.now - start
    print(f"\nwrote {len(payload) / MB:.1f} MB in {write_elapsed * 1000:.1f} "
          f"simulated ms -> {len(payload) / MB / write_elapsed:.1f} MB/s")

    start = sim.now
    data = sim.run_process(server.fs.read("/data", 0, len(payload)))
    read_elapsed = sim.now - start
    print(f"read  {len(data) / MB:.1f} MB in {read_elapsed * 1000:.1f} "
          f"simulated ms -> {len(data) / MB / read_elapsed:.1f} MB/s")

    assert data == payload, "read-back mismatch!"
    print("read-back verified byte-for-byte")

    assert server.raid.verify_parity(max_rows=16)
    print("RAID-5 parity verified across the written rows")

    stats = server.fs.statfs()
    print(f"\nlog state: {stats['clean_segments']}/{stats['segments']} "
          f"segments clean, {stats['live_bytes'] / MB:.1f} MB live, "
          f"{stats['fragments_flushed']} fragments flushed")


if __name__ == "__main__":
    main()
