#!/usr/bin/env python3
"""Failure injection tour: degraded reads, rebuild, crash recovery.

Exercises the redundancy machinery end to end on the real byte store:

1. a disk dies mid-workload — reads keep returning correct data,
   reconstructed through parity;
2. the disk is replaced and rebuilt byte-for-byte from its peers;
3. the server loses power with unflushed state — remounting rolls the
   log forward from the last checkpoint and recovers every synced byte
   (and only loses what was never flushed, as it should).
"""

import random

from repro.lfs import LogStructuredFS
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB, MB, MIB


def main() -> None:
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    sim.run_process(server.setup_lfs())
    fs = server.fs
    rng = random.Random(99)

    dataset = rng.randbytes(4 * MIB)
    sim.run_process(fs.create("/archive"))
    sim.run_process(fs.write("/archive", 0, dataset))
    sim.run_process(fs.checkpoint())
    print(f"stored {len(dataset) / MB:.1f} MB and checkpointed")

    # ---- 1. disk failure: degraded operation ----
    victim = server.raid.paths[5].disk
    victim.fail()
    print(f"\nfailed {victim.name} — array now degraded")

    start = sim.now
    data = sim.run_process(fs.read("/archive", 0, len(dataset)))
    elapsed = sim.now - start
    assert data == dataset
    print(f"degraded read of the full file: correct, "
          f"{len(dataset) / MB / elapsed:.1f} MB/s "
          f"({server.raid.degraded_reads} reconstructions through parity)")

    # Writes still work while degraded.
    update = rng.randbytes(256 * KIB)
    sim.run_process(fs.write("/archive", 1 * MIB, update))
    sim.run_process(fs.sync())
    print("degraded write applied and synced")

    # ---- 2. replace and rebuild ----
    victim.repair()  # blank replacement drive
    start = sim.now
    sim.run_process(server.raid.rebuild(5, max_rows=64))
    print(f"\nrebuilt replacement disk from peers in "
          f"{sim.now - start:.2f} s simulated")
    assert server.raid.verify_parity(max_rows=64)
    print("parity verified across rebuilt rows")

    expected = bytearray(dataset)
    expected[1 * MIB:1 * MIB + len(update)] = update
    data = sim.run_process(fs.read("/archive", 0, len(dataset)))
    assert data == bytes(expected)
    print("full read-back after rebuild: byte-for-byte correct")

    # ---- 3. power failure and roll-forward ----
    sim.run_process(fs.write("/archive", 2 * MIB, b"\x42" * (64 * KIB)))
    sim.run_process(fs.sync())          # this write is durable
    sim.run_process(fs.write("/archive", 3 * MIB, b"\x43" * (64 * KIB)))
    # ... and this one is still buffered when the power dies:
    fs.crash()
    print("\npower failure with one synced and one unsynced write")

    fs2 = LogStructuredFS(sim, server.raid, spec=server.config.lfs,
                          max_inodes=server.config.max_inodes,
                          host=server.host)
    start = sim.now
    sim.run_process(fs2.mount())
    print(f"remounted in {(sim.now - start) * 1000:.1f} ms simulated "
          "(checkpoint + roll-forward, no full-disk fsck)")

    synced = sim.run_process(fs2.read("/archive", 2 * MIB, 64 * KIB))
    unsynced = sim.run_process(fs2.read("/archive", 3 * MIB, 64 * KIB))
    assert synced == b"\x42" * (64 * KIB), "synced write must survive"
    assert unsynced != b"\x43" * (64 * KIB), "unsynced write must be lost"
    print("synced write survived; unsynced write correctly lost")


if __name__ == "__main__":
    main()
