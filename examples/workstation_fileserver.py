#!/usr/bin/env python3
"""A workstation file-server day: small NFS-style traffic on the
standard (Ethernet) path next to one bandwidth-hungry HIPPI client.

RAID-II was designed to do both well: "Any client request can be
serviced using either access mode, but we maximize utilization ... if
smaller requests use the Ethernet network and larger requests use the
HIPPI network" (Section 2.1.1).
"""

import random

from repro.net import UltranetLink
from repro.server import Raid2Config, Raid2Server
from repro.server.raid2 import make_sparcstation_client
from repro.sim import Simulator
from repro.units import KIB, MB, MIB


def main() -> None:
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.paper_default())
    sim.run_process(server.setup_lfs())
    fs = server.fs
    rng = random.Random(23)

    # Populate a small home-directory tree.
    def populate():
        yield from fs.mkdir("/home")
        for user in ("amy", "ben", "eva"):
            yield from fs.mkdir(f"/home/{user}")
            for index in range(6):
                path = f"/home/{user}/file{index}"
                yield from fs.create(path)
                yield from fs.write(path, 0, rng.randbytes(12 * KIB))
        yield from fs.sync()

    sim.run_process(populate())
    print("populated 3 home directories x 6 files of 12 KiB")

    # ---- standard mode: small reads/writes over the Ethernet ----
    ops = 40
    start = sim.now

    def nfs_client(user):
        for index in range(ops):
            path = f"/home/{user}/file{index % 6}"
            if index % 3 == 2:
                yield from server.ethernet_write(
                    path, 0, rng.randbytes(4 * KIB))
            else:
                yield from server.ethernet_read(path, 0, 8 * KIB)

    for user in ("amy", "ben", "eva"):
        sim.process(nfs_client(user))
    sim.run()
    elapsed = sim.now - start
    total_ops = 3 * ops
    print(f"standard mode: {total_ops} small NFS-style ops in "
          f"{elapsed:.2f} s simulated -> {total_ops / elapsed:.0f} ops/s "
          f"over the 10 Mb/s Ethernet")

    # ---- high-bandwidth mode: one big dataset over the HIPPI path ----
    dataset = rng.randbytes(6 * MIB)

    def store_dataset():
        yield from fs.create("/home/eva/simulation.dat")
        yield from fs.write("/home/eva/simulation.dat", 0, dataset)
        yield from fs.sync()

    sim.run_process(store_dataset())

    client = make_sparcstation_client(sim)
    link = UltranetLink(sim)
    start = sim.now
    data = sim.run_process(server.client_read(
        client, link, "/home/eva/simulation.dat", 0, len(dataset)))
    elapsed = sim.now - start
    assert data == dataset
    print(f"high-bandwidth mode: {len(dataset) / MB:.1f} MB dataset "
          f"to a HIPPI client at {len(dataset) / MB / elapsed:.1f} MB/s "
          f"(client-limited)")

    stats = server.fs.statfs()
    print(f"log: {stats['fragments_flushed']} fragments flushed, "
          f"{stats['clean_segments']}/{stats['segments']} segments clean")


if __name__ == "__main__":
    main()
