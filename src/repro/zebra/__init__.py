"""Zebra: striping files across multiple file servers (Section 5.2).

The paper closes by pointing at Zebra (Hartman & Ousterhout) as the
way to push past a single XBUS board: "striping high-bandwidth file
accesses over multiple network connections, and therefore across
multiple XBUS boards", combining "from RAID, the ideas of combining
many relatively low-performance devices into a single high-performance
logical device, and using parity to survive device failures; and from
LFS the concept of treating the storage system as a log".

This subpackage implements that future-work system over the RAID-II
substrate: a :class:`ZebraClient` forms its writes into a per-client
append-only log, cuts the log into stripes of fragments, computes a
parity fragment per stripe, and spreads each stripe across a set of
:class:`ZebraStorageServer` nodes (each one a RAID-II server whose
"very simple operation" is storing opaque log fragments).  Any single
storage server can be lost: reads reconstruct through the stripe
parity, exactly as RAID does across disks.
"""

from repro.zebra.client import ZebraClient
from repro.zebra.server import ZebraStorageServer

__all__ = ["ZebraClient", "ZebraStorageServer"]
