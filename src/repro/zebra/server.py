"""A Zebra storage server: a RAID-II node that stores opaque fragments.

"The servers in Zebra perform very simple operations, merely storing
blocks of the logical log of files without examining the content of
the blocks.  Little communication would be needed between the XBUS
board and the host workstation, allowing data to flow between the
network and the disk array efficiently" (Section 5.2).

Each server wraps a full RAID-II instance: fragments arrive over the
HIPPI destination port into XBUS memory and are appended sequentially
to the server's RAID-5 array; fetches read the array and stream out
the HIPPI source port.  The fragment index (client, stripe, position)
-> extent is kept in server memory — Zebra's real servers logged it;
index durability is outside this reproduction's scope and noted in
DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import HardwareError, ProtocolError
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator

FragmentKey = tuple[int, int, int]  # (client_id, stripe_index, position)


class ZebraStorageServer:
    """One storage node of a Zebra ensemble."""

    def __init__(self, sim: Simulator, config: Optional[Raid2Config] = None,
                 name: str = "zserver"):
        self.sim = sim
        self.name = name
        self.node = Raid2Server(sim, config or Raid2Config.fig8_lfs(),
                                name=name)
        self._index: dict[FragmentKey, tuple[int, int]] = {}
        self._append_offset = 0
        self.failed = False
        self.fragments_stored = 0
        self.fragments_served = 0

    @property
    def capacity_bytes(self) -> int:
        return self.node.raid.capacity_bytes

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Take the whole server offline (crash / network partition)."""
        self.failed = True

    def restore(self) -> None:
        self.failed = False

    # ------------------------------------------------------------------
    def store(self, key: FragmentKey, data: bytes):
        """Process: receive one fragment over HIPPI and append it."""
        if self.failed:
            raise ProtocolError(f"{self.name} is offline")
        if len(data) % 512:
            raise HardwareError(
                f"fragment length {len(data)} is not sector-aligned")
        if key in self._index:
            raise ProtocolError(f"fragment {key} already stored")
        if self._append_offset + len(data) > self.capacity_bytes:
            raise HardwareError(f"{self.name}: fragment store full")
        offset = self._append_offset
        self._append_offset += len(data)
        legs = [
            self.sim.process(self.node.board.receive_hippi(len(data))),
            self.sim.process(self.node.raid.write(offset, data)),
        ]
        yield self.sim.all_of(legs)
        self._index[key] = (offset, len(data))
        self.fragments_stored += 1
        return None

    def fetch(self, key: FragmentKey):
        """Process: read one fragment and stream it out over HIPPI."""
        if self.failed:
            raise ProtocolError(f"{self.name} is offline")
        extent = self._index.get(key)
        if extent is None:
            raise ProtocolError(f"{self.name}: no fragment {key}")
        offset, length = extent
        read_proc = self.sim.process(self.node.raid.read(offset, length))
        send_proc = self.sim.process(self.node.board.send_hippi(length))
        values = yield self.sim.all_of([read_proc, send_proc])
        self.fragments_served += 1
        return values[0]

    def has_fragment(self, key: FragmentKey) -> bool:
        return key in self._index
