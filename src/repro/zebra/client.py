"""The Zebra client: per-client log striping with rotating parity.

The client batches all of its writes into an append-only log, cuts the
log into *stripes* of ``nservers - 1`` data fragments plus one parity
fragment, and spreads each stripe across the storage servers (parity
placement rotating per stripe, RAID-5 style).  Because the log is
append-only, parity is always computed over fresh data — "small writes
and parity updates are avoided" (Section 5.2) — and the loss of any
single storage server is survivable: missing fragments are rebuilt by
XOR from the stripe's survivors.

File metadata (the block map: file block -> log position) lives with
the client, as in Zebra's file manager; its durability is out of scope
here (see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import FileNotFoundFsError, ProtocolError, RaidError
from repro.hw.parity import xor_blocks
from repro.sim import Simulator
from repro.units import KIB
from repro.zebra.server import ZebraStorageServer

BLOCK = 4 * KIB


class ZebraClient:
    """One client's striped log across a set of storage servers."""

    def __init__(self, sim: Simulator,
                 servers: Sequence[ZebraStorageServer],
                 client_id: int = 0, fragment_bytes: int = 256 * KIB,
                 name: str = "zebra"):
        if len(servers) < 3:
            raise RaidError(
                f"Zebra needs >= 3 storage servers for parity striping, "
                f"got {len(servers)}")
        if fragment_bytes % BLOCK:
            raise RaidError(
                f"fragment size {fragment_bytes} must be a multiple of "
                f"the {BLOCK}-byte block")
        self.sim = sim
        self.servers = list(servers)
        self.client_id = client_id
        self.fragment_bytes = fragment_bytes
        self.name = name

        self._nstripe_data = len(servers) - 1
        self._stripe_data_bytes = self._nstripe_data * fragment_bytes
        self._stripe_index = 0
        self._buffer = bytearray()
        #: (file, block index) -> (stripe, byte offset within the
        #: stripe's data region)
        self._block_map: dict[tuple[str, int], tuple[int, int]] = {}
        self._sizes: dict[str, int] = {}
        self.stripes_flushed = 0
        self.fragments_rebuilt = 0

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def parity_server(self, stripe: int) -> int:
        return stripe % len(self.servers)

    def data_server(self, stripe: int, position: int) -> int:
        """Server index holding data fragment ``position`` of ``stripe``."""
        parity = self.parity_server(stripe)
        candidates = [index for index in range(len(self.servers))
                      if index != parity]
        return candidates[position]

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def create(self, path: str) -> None:
        if path in self._sizes:
            raise ProtocolError(f"{path} already exists")
        self._sizes[path] = 0

    def exists(self, path: str) -> bool:
        return path in self._sizes

    def size_of(self, path: str) -> int:
        if path not in self._sizes:
            raise FileNotFoundFsError(path)
        return self._sizes[path]

    def delete(self, path: str) -> None:
        if path not in self._sizes:
            raise FileNotFoundFsError(path)
        del self._sizes[path]
        for key in [key for key in self._block_map if key[0] == path]:
            del self._block_map[key]

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def write(self, path: str, offset: int, data: bytes):
        """Process: append ``data`` to the client log at file ``offset``."""
        if path not in self._sizes:
            raise FileNotFoundFsError(path)
        end = offset + len(data)
        first = offset // BLOCK
        last = (end - 1) // BLOCK if data else first - 1
        for bidx in range(first, last + 1):
            block_start = bidx * BLOCK
            lo = max(offset, block_start)
            hi = min(end, block_start + BLOCK)
            piece = data[lo - offset:hi - offset]
            if hi - lo < BLOCK:
                old = yield from self._read_block(path, bidx)
                merged = bytearray(old)
                merged[lo - block_start:hi - block_start] = piece
                piece = bytes(merged)
            yield from self._append_block(path, bidx, piece)
        self._sizes[path] = max(self._sizes[path], end)
        return None

    def _read_block(self, path: str, bidx: int):
        """Process: fetch one whole file block (zeros if unwritten)."""
        location = self._block_map.get((path, bidx))
        if location is None:
            return bytes(BLOCK)
        stripe, position = location
        if stripe == self._stripe_index:
            return bytes(self._buffer[position:position + BLOCK])
        fragment = yield from self._fetch_fragment(
            stripe, position // self.fragment_bytes)
        inside = position % self.fragment_bytes
        return fragment[inside:inside + BLOCK]

    def _append_block(self, path: str, bidx: int, block: bytes):
        # Rewriting a block that is still buffered replaces it in place
        # (the same absorption LFS's segment buffer provides).
        location = self._block_map.get((path, bidx))
        if location is not None and location[0] == self._stripe_index:
            position = location[1]
            self._buffer[position:position + BLOCK] = block
            return None
        if len(self._buffer) + BLOCK > self._stripe_data_bytes:
            yield from self._flush_stripe()
        position = len(self._buffer)
        self._buffer.extend(block)
        self._block_map[(path, bidx)] = (self._stripe_index, position)
        return None

    def _flush_stripe(self):
        """Process: pad, cut into fragments, store data + parity."""
        if not self._buffer:
            return None
        self._buffer.extend(bytes(self._stripe_data_bytes
                                  - len(self._buffer)))
        stripe = self._stripe_index
        fragments = [
            bytes(self._buffer[index * self.fragment_bytes:
                               (index + 1) * self.fragment_bytes])
            for index in range(self._nstripe_data)
        ]
        parity = xor_blocks(fragments)
        procs = []
        for position, fragment in enumerate(fragments):
            server = self.servers[self.data_server(stripe, position)]
            procs.append(self.sim.process(
                server.store((self.client_id, stripe, position), fragment)))
        parity_node = self.servers[self.parity_server(stripe)]
        procs.append(self.sim.process(parity_node.store(
            (self.client_id, stripe, self._nstripe_data), parity)))
        yield self.sim.all_of(procs)
        self._stripe_index += 1
        self._buffer = bytearray()
        self.stripes_flushed += 1
        return None

    def sync(self):
        """Process: push the partial stripe out (zero-padded)."""
        yield from self._flush_stripe()
        return None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def read(self, path: str, offset: int, nbytes: int):
        """Process: read up to ``nbytes`` at ``offset`` (clamped at EOF)."""
        size = self.size_of(path)
        if offset >= size or nbytes <= 0:
            return b""
        nbytes = min(nbytes, size - offset)
        first = offset // BLOCK
        last = (offset + nbytes - 1) // BLOCK

        # Which flushed fragments do we need?
        needed: dict[tuple[int, int], None] = {}
        for bidx in range(first, last + 1):
            location = self._block_map.get((path, bidx))
            if location is None:
                continue
            stripe, position = location
            if stripe == self._stripe_index:
                continue  # still in the client buffer
            needed[(stripe, position // self.fragment_bytes)] = None

        fetched: dict[tuple[int, int], bytes] = {}
        procs = {key: self.sim.process(self._fetch_fragment(*key))
                 for key in needed}
        if procs:
            values = yield self.sim.all_of(list(procs.values()))
            fetched = dict(zip(procs.keys(), values))

        out = bytearray((last - first + 1) * BLOCK)
        for bidx in range(first, last + 1):
            location = self._block_map.get((path, bidx))
            if location is None:
                continue  # hole: zeros
            stripe, position = location
            at = (bidx - first) * BLOCK
            if stripe == self._stripe_index:
                out[at:at + BLOCK] = self._buffer[position:position + BLOCK]
                continue
            fragment = fetched[(stripe, position // self.fragment_bytes)]
            inside = position % self.fragment_bytes
            out[at:at + BLOCK] = fragment[inside:inside + BLOCK]
        start = offset - first * BLOCK
        return bytes(out[start:start + nbytes])

    def _fetch_fragment(self, stripe: int, position: int):
        """Process: fetch one data fragment, reconstructing if its
        server is down."""
        key = (self.client_id, stripe, position)
        server = self.servers[self.data_server(stripe, position)]
        if not server.failed:
            data = yield from server.fetch(key)
            return data
        # Rebuild from the stripe's survivors plus parity.
        procs = []
        for other in range(self._nstripe_data):
            if other == position:
                continue
            node = self.servers[self.data_server(stripe, other)]
            if node.failed:
                raise RaidError("two Zebra storage servers are down")
            procs.append(self.sim.process(node.fetch(
                (self.client_id, stripe, other))))
        parity_node = self.servers[self.parity_server(stripe)]
        if parity_node.failed:
            raise RaidError("two Zebra storage servers are down")
        procs.append(self.sim.process(parity_node.fetch(
            (self.client_id, stripe, self._nstripe_data))))
        blocks = yield self.sim.all_of(procs)
        self.fragments_rebuilt += 1
        return xor_blocks(blocks)
