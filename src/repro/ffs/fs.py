"""An update-in-place file system with fixed block allocation.

Deliberately simple — its purpose is to be the *traditional* baseline
whose small random writes turn into RAID-5 read-modify-writes.  Layout:

* block 0: superblock (magic, geometry),
* a block-allocation bitmap,
* a fixed inode table (one inode per slot, direct + single-indirect
  pointers),
* the data area.

Writes go directly to their home blocks (no log, no write buffering),
and each data write also rewrites the inode in place — the access
pattern of a 1990s UNIX FFS without its cylinder-group tricks.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import (FileExistsFsError, FileNotFoundFsError,
                          FileSystemError, NoSpaceFsError)
from repro.lfs.ondisk import (ADDRS_PER_BLOCK, BLOCK_SIZE, decode_pointer_block,
                              encode_pointer_block)
from repro.sim import Simulator

_FFS_MAGIC = 0x46465321  # "FFS!"
_N_DIRECT = 12
_NULL = 0


class _FfsInode:
    __slots__ = ("used", "size", "direct", "indirect")

    def __init__(self):
        self.used = False
        self.size = 0
        self.direct = [_NULL] * _N_DIRECT
        self.indirect = _NULL

    def encode(self) -> bytes:
        body = struct.pack("<IBxxxQ", _FFS_MAGIC, 1 if self.used else 0,
                           self.size)
        body += struct.pack(f"<{_N_DIRECT}Q", *self.direct)
        body += struct.pack("<Q", self.indirect)
        return body

    @classmethod
    def decode(cls, raw: bytes) -> "_FfsInode":
        inode = cls()
        magic, used, size = struct.unpack("<IBxxxQ", raw[:16])
        if magic != _FFS_MAGIC:
            raise FileSystemError("bad FFS inode magic")
        inode.used = bool(used)
        inode.size = size
        at = 16
        inode.direct = list(struct.unpack(
            f"<{_N_DIRECT}Q", raw[at:at + 8 * _N_DIRECT]))
        at += 8 * _N_DIRECT
        inode.indirect = struct.unpack("<Q", raw[at:at + 8])[0]
        return inode

    @classmethod
    def slot_bytes(cls) -> int:
        return 16 + 8 * _N_DIRECT + 8


class UpdateInPlaceFS:
    """Flat-namespace update-in-place file system (the FFS baseline).

    The namespace is a single level (no subdirectories) because the
    baseline exists for data-path benchmarking; names map to inode
    slots through an in-memory table persisted in the superblock area.
    """

    def __init__(self, sim: Simulator, device, max_files: int = 256,
                 name: str = "ffs"):
        self.sim = sim
        self.device = device
        self.max_files = max_files
        self.name = name
        self.mounted = False
        self._names: dict[str, int] = {}
        self._inodes: list[_FfsInode] = []
        self._bitmap: Optional[bytearray] = None
        self._bitmap_blocks = 0
        self._inode_table_block = 0
        self._inode_blocks = 0
        self._data_start = 0
        self._total_blocks = 0
        self.data_writes = 0
        self.data_reads = 0

    # ------------------------------------------------------------------
    def format(self):
        """Process: lay out and initialize an empty volume."""
        self._total_blocks = self.device.capacity_bytes // BLOCK_SIZE
        self._bitmap_blocks = -(-self._total_blocks // (8 * BLOCK_SIZE))
        per_block = BLOCK_SIZE // _FfsInode.slot_bytes()
        self._inode_blocks = -(-self.max_files // per_block)
        self._inode_table_block = 1 + self._bitmap_blocks
        self._data_start = self._inode_table_block + self._inode_blocks
        if self._data_start + 8 >= self._total_blocks:
            raise FileSystemError("device too small for FFS layout")
        self._bitmap = bytearray(self._bitmap_blocks * BLOCK_SIZE)
        for block in range(self._data_start):
            self._set_bit(block)
        self._inodes = [_FfsInode() for _ in range(self.max_files)]
        self._names = {}
        yield from self._write_inode_table()
        yield from self._write_bitmap()
        self.mounted = True
        return None

    def _write_inode_table(self):
        per_block = BLOCK_SIZE // _FfsInode.slot_bytes()
        payload = bytearray(self._inode_blocks * BLOCK_SIZE)
        for slot, inode in enumerate(self._inodes):
            block, index = divmod(slot, per_block)
            at = block * BLOCK_SIZE + index * _FfsInode.slot_bytes()
            payload[at:at + _FfsInode.slot_bytes()] = inode.encode()
        yield from self.device.write(self._inode_table_block * BLOCK_SIZE,
                                     bytes(payload))
        return None

    def _write_inode(self, slot: int):
        """Process: rewrite one inode slot in place."""
        per_block = BLOCK_SIZE // _FfsInode.slot_bytes()
        block = self._inode_table_block + slot // per_block
        index = slot % per_block
        raw = yield from self.device.read(block * BLOCK_SIZE, BLOCK_SIZE)
        updated = bytearray(raw)
        at = index * _FfsInode.slot_bytes()
        updated[at:at + _FfsInode.slot_bytes()] = self._inodes[slot].encode()
        yield from self.device.write(block * BLOCK_SIZE, bytes(updated))
        return None

    def _write_bitmap(self):
        yield from self.device.write(1 * BLOCK_SIZE, bytes(self._bitmap))
        return None

    # ------------------------------------------------------------------
    def _set_bit(self, block: int) -> None:
        self._bitmap[block // 8] |= 1 << (block % 8)

    def _clear_bit(self, block: int) -> None:
        self._bitmap[block // 8] &= ~(1 << (block % 8))

    def _test_bit(self, block: int) -> bool:
        return bool(self._bitmap[block // 8] & (1 << (block % 8)))

    def _allocate_block(self) -> int:
        for block in range(self._data_start, self._total_blocks):
            if not self._test_bit(block):
                self._set_bit(block)
                return block
        raise NoSpaceFsError("FFS volume full")

    # ------------------------------------------------------------------
    def create(self, path: str):
        """Process: create an empty file."""
        self._require_mounted()
        if path in self._names:
            raise FileExistsFsError(path)
        for slot, inode in enumerate(self._inodes):
            if not inode.used:
                inode.used = True
                inode.size = 0
                inode.direct = [_NULL] * _N_DIRECT
                inode.indirect = _NULL
                self._names[path] = slot
                yield from self._write_inode(slot)
                return slot
        raise NoSpaceFsError("out of FFS inodes")

    def _slot_of(self, path: str) -> int:
        slot = self._names.get(path)
        if slot is None:
            raise FileNotFoundFsError(path)
        return slot

    def _get_block(self, inode: _FfsInode, bidx: int):
        """Process: resolve a file block address (NULL if unallocated)."""
        if bidx < _N_DIRECT:
            return inode.direct[bidx]
        rel = bidx - _N_DIRECT
        if rel >= ADDRS_PER_BLOCK:
            raise FileSystemError("file too large for the FFS baseline")
        if inode.indirect == _NULL:
            return _NULL
        raw = yield from self.device.read(inode.indirect * BLOCK_SIZE,
                                          BLOCK_SIZE)
        return decode_pointer_block(raw)[rel]

    def _set_block(self, inode: _FfsInode, bidx: int, addr: int):
        """Process: point a file block at ``addr`` (updates in place)."""
        if bidx < _N_DIRECT:
            inode.direct[bidx] = addr
            return None
        rel = bidx - _N_DIRECT
        if rel >= ADDRS_PER_BLOCK:
            raise FileSystemError("file too large for the FFS baseline")
        if inode.indirect == _NULL:
            inode.indirect = self._allocate_block()
            pointers = [_NULL] * ADDRS_PER_BLOCK
        else:
            raw = yield from self.device.read(inode.indirect * BLOCK_SIZE,
                                              BLOCK_SIZE)
            pointers = decode_pointer_block(raw)
        pointers[rel] = addr
        yield from self.device.write(inode.indirect * BLOCK_SIZE,
                                     encode_pointer_block(pointers))
        return None

    def write(self, path: str, offset: int, data: bytes):
        """Process: write in place — every block goes to its home spot."""
        self._require_mounted()
        slot = self._slot_of(path)
        inode = self._inodes[slot]
        end = offset + len(data)
        first = offset // BLOCK_SIZE
        last = (end - 1) // BLOCK_SIZE if data else first - 1
        for bidx in range(first, last + 1):
            block_start = bidx * BLOCK_SIZE
            lo = max(offset, block_start)
            hi = min(end, block_start + BLOCK_SIZE)
            piece = data[lo - offset:hi - offset]
            addr = yield from self._get_block(inode, bidx)
            if addr == _NULL:
                addr = self._allocate_block()
                yield from self._set_block(inode, bidx, addr)
            if hi - lo < BLOCK_SIZE:
                raw = yield from self.device.read(addr * BLOCK_SIZE,
                                                  BLOCK_SIZE)
                merged = bytearray(raw)
                merged[lo - block_start:hi - block_start] = piece
                piece = bytes(merged)
            yield from self.device.write(addr * BLOCK_SIZE, piece)
            self.data_writes += 1
        inode.size = max(inode.size, end)
        yield from self._write_inode(slot)
        return None

    def read(self, path: str, offset: int, nbytes: int):
        """Process: read up to ``nbytes`` (clamped at EOF)."""
        self._require_mounted()
        slot = self._slot_of(path)
        inode = self._inodes[slot]
        if offset >= inode.size or nbytes <= 0:
            return b""
        nbytes = min(nbytes, inode.size - offset)
        first = offset // BLOCK_SIZE
        last = (offset + nbytes - 1) // BLOCK_SIZE
        chunks = []
        for bidx in range(first, last + 1):
            addr = yield from self._get_block(inode, bidx)
            if addr == _NULL:
                chunks.append(bytes(BLOCK_SIZE))
            else:
                raw = yield from self.device.read(addr * BLOCK_SIZE,
                                                  BLOCK_SIZE)
                chunks.append(raw)
            self.data_reads += 1
        blob = b"".join(chunks)
        start = offset - first * BLOCK_SIZE
        return blob[start:start + nbytes]

    def unlink(self, path: str):
        """Process: remove a file, freeing its blocks."""
        self._require_mounted()
        slot = self._slot_of(path)
        inode = self._inodes[slot]
        nblocks = -(-inode.size // BLOCK_SIZE)
        for bidx in range(nblocks):
            addr = yield from self._get_block(inode, bidx)
            if addr != _NULL:
                self._clear_bit(addr)
        if inode.indirect != _NULL:
            self._clear_bit(inode.indirect)
        inode.used = False
        inode.size = 0
        del self._names[path]
        yield from self._write_inode(slot)
        yield from self._write_bitmap()
        return None

    def fsck(self):
        """Process: a UNIX-style full consistency check.

        Reads the block bitmap and the entire inode table, then walks
        every used inode's pointers (direct and indirect, with the
        indirect blocks scattered across the volume — each one a
        random seek), verifying that every referenced block is in
        range, marked allocated, and claimed only once.  Returns a
        report dict.  The cost is what Section 3.1 complains about:
        proportional to the volume's metadata, tens of minutes on a
        1 GB file system of the era.
        """
        self._require_mounted()
        yield from self.device.read(1 * BLOCK_SIZE,
                                    self._bitmap_blocks * BLOCK_SIZE)
        yield from self.device.read(self._inode_table_block * BLOCK_SIZE,
                                    self._inode_blocks * BLOCK_SIZE)
        claimed: set[int] = set()
        errors = 0
        files = 0
        for inode in self._inodes:
            if not inode.used:
                continue
            files += 1
            nblocks = -(-inode.size // BLOCK_SIZE)
            pointers = list(inode.direct[:min(nblocks, _N_DIRECT)])
            if nblocks > _N_DIRECT:
                if inode.indirect == _NULL:
                    errors += 1
                else:
                    raw = yield from self.device.read(
                        inode.indirect * BLOCK_SIZE, BLOCK_SIZE)
                    pointers.extend(
                        decode_pointer_block(raw)[:nblocks - _N_DIRECT])
                    pointers.append(inode.indirect)
            for addr in pointers:
                if addr == _NULL:
                    continue
                if not self._data_start <= addr < self._total_blocks:
                    errors += 1
                elif not self._test_bit(addr):
                    errors += 1
                elif addr in claimed:
                    errors += 1
                else:
                    claimed.add(addr)
        return {"files": files, "blocks_claimed": len(claimed),
                "errors": errors}

    def exists(self, path: str) -> bool:
        return path in self._names

    def size_of(self, path: str) -> int:
        return self._inodes[self._slot_of(path)].size

    def _require_mounted(self) -> None:
        if not self.mounted:
            raise FileSystemError("FFS volume is not formatted")
