"""A traditional update-in-place file system (FFS-style baseline).

Section 3.1 of the paper explains why LFS suits RAID 5: "Under a
traditional file system, disk arrays that use large block interleaving
(Level 5 RAID) perform poorly on small write operations because each
small write requires four disk accesses."  This module is that
traditional baseline — files live in fixed blocks, every write goes
straight to its home location — so the ablation benchmark can measure
the small-write penalty LFS eliminates.
"""

from repro.ffs.fs import UpdateInPlaceFS

__all__ = ["UpdateInPlaceFS"]
