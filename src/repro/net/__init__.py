"""Network fabric glue: the Ultranet ring connecting clients to RAID-II."""

from repro.net.ultranet import UltranetLink

__all__ = ["UltranetLink"]
