"""The Ultra Network Technologies ring network.

The Ultranet is the 100 MB/s ring that carries HIPPI traffic between
RAID-II's XBUS boards, client workstations and supercomputers
(Figure 1).  Bulk data movement is already modelled by the HIPPI
source/destination ports at each end, so this class contributes the
ring's own properties: a per-message latency for the socket-level
control traffic (open/read/write commands of the client library) and a
shared ring-bandwidth ceiling for the data that crosses it.
"""

from __future__ import annotations

from repro.sim import BandwidthChannel, Simulator
from repro.units import MS


class UltranetLink:
    """One client's connection onto the ring."""

    #: Ring latency for a small control message, one way.
    CONTROL_LATENCY_S = 0.5 * MS

    def __init__(self, sim: Simulator, rate_mb_s: float = 100.0,
                 name: str = "ultranet"):
        self.sim = sim
        self.name = name
        self.channel = BandwidthChannel(sim, rate_mb_s=rate_mb_s,
                                        name=f"{name}.ring")
        self.rpcs = 0

    def rpc(self):
        """Process: one control round trip (request + reply)."""
        with self.sim.tracer.span("ultranet.rpc", self.name):
            yield self.sim.timeout(2 * self.CONTROL_LATENCY_S)
            self.rpcs += 1
            return None

    def data(self, nbytes: int):
        """Process: bulk bytes crossing the ring fabric."""
        with self.sim.tracer.span("ultranet.data", self.name, nbytes=nbytes):
            yield from self.channel.transfer(nbytes)
            return None
