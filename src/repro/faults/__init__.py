"""Deterministic fault injection for the RAID-II reproduction.

RAID-II's value proposition is serving data *through* failures; this
package makes the failures first-class and reproducible.  A
:class:`FaultPlan` declares fault events against the sim clock
(whole-disk death, transient SCSI errors, latent sector errors, link
stalls, a simulated host crash); a :class:`FaultInjector` arms the plan
on the hardware models via pull-style hooks; :class:`RetryPolicy`
configures the Cougar/RAID healing layers; and the crash-point
machinery (:class:`CrashableDevice`, :func:`snapshot_media`,
:func:`restore_media`) halts an LFS mid-write and remounts from the
snapshotted media.

Design rule: injection is *pulled* at each operation, never scheduled
— an armed empty plan is bit-identical (in the determinism
fingerprint) to a run without this package, and armed non-empty plans
replay identically, which is what lets failure tests use the
determinism trace.
"""

from repro.faults.crash import (CrashableDevice, MediaSnapshot,
                                restore_media, snapshot_media)
from repro.faults.inject import FaultInjector, attach_array, attach_server
from repro.faults.plan import (DiskDeath, FaultPlan, HostCrash,
                               LatentSectorError, LinkStall, TransientFault)
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "CrashableDevice",
    "DEFAULT_RETRY_POLICY",
    "DiskDeath",
    "FaultInjector",
    "FaultPlan",
    "HostCrash",
    "LatentSectorError",
    "LinkStall",
    "MediaSnapshot",
    "RetryPolicy",
    "TransientFault",
    "attach_array",
    "attach_server",
    "restore_media",
    "snapshot_media",
]
