"""Retry-with-backoff and per-op timeout policies.

One frozen :class:`RetryPolicy` parameterizes both healing layers:

* the **Cougar controller** retries a whole disk-to-VME operation when
  a leg fails with :class:`~repro.errors.TransientDiskError`, and — if
  ``op_timeout_s`` is set — abandons an attempt that exceeds the
  per-operation deadline (interrupting its in-flight legs) before
  retrying;
* the **RAID controllers** retry individual unit reads/writes on
  transient errors and, once attempts are exhausted, fall back to
  reconstruction through redundancy.

With no faults injected a policy is inert: the retry loops run exactly
one attempt and (with ``op_timeout_s`` unset) schedule no extra
events, so the determinism fingerprint of a clean run is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.units import MS


@dataclass(frozen=True)
class RetryPolicy:
    """How a layer retries operations that fail transiently."""

    #: Total attempts (first try included).
    max_attempts: int = 4
    #: Delay before the first retry; doubles (``backoff_factor``) after.
    backoff_s: float = 2.0 * MS
    backoff_factor: float = 2.0
    #: Abandon an attempt running longer than this (None = no deadline).
    op_timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0.0 or self.backoff_factor < 1.0:
            raise SimulationError(
                f"bad backoff: {self.backoff_s}s x{self.backoff_factor}")
        if self.op_timeout_s is not None and self.op_timeout_s <= 0.0:
            raise SimulationError(
                f"op_timeout_s must be positive, got {self.op_timeout_s}")


#: The default healing behaviour of the RAID layer: a few quick
#: retries, then reconstruction.  No per-op deadline (deadlines are a
#: Cougar-level concern, configured per server).
DEFAULT_RETRY_POLICY = RetryPolicy()
