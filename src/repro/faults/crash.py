"""Crash points: halt the host mid-write, snapshot the media, remount.

:class:`CrashableDevice` wraps any storage device (a
:class:`~repro.testing.MemoryDevice` or a RAID controller) handed to an
LFS.  Every write consults the fault injector's
:class:`~repro.faults.plan.HostCrash` countdown; when the crash point
arrives, the torn prefix of the in-flight write lands through the
normal timed path (so a RAID device keeps its parity consistent — the
tear happens at the device-write granularity, above the array's atomic
row update), the durable media is snapshotted, and
:class:`~repro.errors.CrashPoint` is raised carrying the snapshot.

A test then rebuilds a *fresh* simulator and device stack, calls
:func:`restore_media` to lay the snapshot back down, mounts, and lets
LFS roll-forward recovery do its work — exactly the sequence a real
power-fail test rig performs.

Snapshot/restore reach into the devices' private stores (``_store``):
this module is verification machinery, deliberately outside the timed
data path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import CrashPoint, HardwareError
from repro.faults.inject import FaultInjector


@dataclass
class MediaSnapshot:
    """Durable bytes of one device at an instant.

    Exactly one of ``disks`` (per-drive sparse sector stores, for RAID
    arrays) or ``flat`` (for :class:`~repro.testing.MemoryDevice`) is
    set.
    """

    at_s: float
    disks: Optional[list] = None    # [(disk_name, {lba: sector_bytes})]
    flat: Optional[bytes] = None


def snapshot_media(device) -> MediaSnapshot:
    """Capture the durable state of ``device`` (instant, untimed)."""
    paths = getattr(device, "paths", None)
    if paths is not None:
        return MediaSnapshot(
            at_s=device.sim.now,
            disks=[(path.disk.name, dict(path.disk._store))
                   for path in paths])
    store = getattr(device, "_store", None)
    if store is None:
        raise HardwareError(
            f"cannot snapshot {device!r}: neither a RAID controller "
            "nor a flat-store device")
    return MediaSnapshot(at_s=device.sim.now, flat=bytes(store))


def restore_media(snapshot: MediaSnapshot, device) -> None:
    """Lay ``snapshot`` down onto a (fresh) compatible device."""
    if snapshot.disks is not None:
        paths = getattr(device, "paths", None)
        if paths is None or len(paths) != len(snapshot.disks):
            raise HardwareError(
                "snapshot has per-disk stores but the target is not a "
                "matching array")
        for path, (name, store) in zip(paths, snapshot.disks):
            if path.disk.name != name:
                raise HardwareError(
                    f"snapshot disk {name!r} does not match target "
                    f"{path.disk.name!r}")
            path.disk._store.clear()
            path.disk._store.update(store)
        return
    store = getattr(device, "_store", None)
    if store is None or len(store) != len(snapshot.flat):
        raise HardwareError(
            "snapshot is a flat image but the target has no matching "
            "flat store")
    store[:] = snapshot.flat


class CrashableDevice:
    """Device wrapper that executes a plan's :class:`HostCrash`.

    Satisfies the same device protocol as what it wraps (timed
    ``read``/``write`` processes, ``capacity_bytes``, instant ``peek``)
    so it can sit under an LFS transparently.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    @property
    def capacity_bytes(self) -> int:
        return self.inner.capacity_bytes

    @property
    def sim(self):
        return self.inner.sim

    def read(self, offset: int, nbytes: int):
        """Process: pass-through read (the host is up until the crash)."""
        if self.injector.crashed:
            raise CrashPoint("host is down", at_s=self.sim.now)
        data = yield from self.inner.read(offset, nbytes)
        return data

    def write(self, offset: int, data: bytes):
        """Process: write, possibly torn short by the crash point."""
        if self.injector.crashed:
            raise CrashPoint("host is down", at_s=self.sim.now)
        torn = self.injector.on_device_write(len(data))
        if torn is None:
            yield from self.inner.write(offset, data)
            return None
        if torn:
            # The torn prefix goes through the normal timed path, so an
            # array underneath updates parity atomically for it.
            yield from self.inner.write(offset, data[:torn])
        raise CrashPoint(
            f"host crash during device write #{self.injector.device_writes} "
            f"({torn}/{len(data)} bytes landed)",
            snapshot=snapshot_media(self.inner), at_s=self.sim.now)

    def peek(self, offset: int, nbytes: int) -> bytes:
        return self.inner.peek(offset, nbytes)
