"""Fault plans: declarative, sim-clock-driven failure schedules.

A :class:`FaultPlan` is an immutable collection of fault events, each
stamped with the simulated time at which it arms.  Plans are *pulled*,
never pushed: the injection hooks in the hardware layer consult the
plan's :class:`~repro.faults.inject.FaultInjector` at each operation,
so an armed plan schedules no events of its own and an **empty plan
leaves the simulation schedule bit-identical** to a run without the
faults package — the property the determinism tests pin down.

Event catalogue (the plan schema):

===================  =====================================================
:class:`DiskDeath`    whole-disk failure: the drive is failed at the first
                      I/O it sees at or after ``at_s``
:class:`TransientFault`
                      ``count`` retryable SCSI errors on the first ops at
                      or after ``at_s`` (heal under retry policies)
:class:`LatentSectorError`
                      persistent medium error over an LBA extent; reads
                      fail until the extent is rewritten
:class:`LinkStall`    a named link (SCSI string, VME port, HIPPI port)
                      stalls for ``duration_s`` starting at ``at_s``
:class:`HostCrash`    the host dies during the ``nth_write``-th device
                      write at/after ``at_s``; raises
                      :class:`~repro.errors.CrashPoint` carrying a media
                      snapshot (see :mod:`repro.faults.crash`)
===================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(frozen=True)
class DiskDeath:
    """Fail the named drive at the first I/O at or after ``at_s``."""

    disk: str
    at_s: float = 0.0


@dataclass(frozen=True)
class TransientFault:
    """``count`` retryable errors on the named drive's next ops."""

    disk: str
    at_s: float = 0.0
    count: int = 1


@dataclass(frozen=True)
class LatentSectorError:
    """Mark ``nsectors`` starting at ``lba`` unreadable until rewritten."""

    disk: str
    lba: int
    nsectors: int = 1
    at_s: float = 0.0


@dataclass(frozen=True)
class LinkStall:
    """Stall the named link for ``duration_s`` starting at ``at_s``.

    A transfer that begins inside the window waits until the window
    closes before proceeding (modelling a wedged bus that recovers).
    """

    link: str
    at_s: float
    duration_s: float


@dataclass(frozen=True)
class HostCrash:
    """Crash the host during a device write.

    The crash fires on the ``nth_write``-th device-level write issued
    at or after ``at_s`` (1-based).  ``torn_fraction`` of that write
    lands on the media first (rounded down to a sector multiple), so a
    fraction of 0.0 crashes exactly at the write boundary.
    """

    nth_write: int = 1
    at_s: float = 0.0
    torn_fraction: float = 0.0


_EVENT_TYPES = (DiskDeath, TransientFault, LatentSectorError, LinkStall,
                HostCrash)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events."""

    events: tuple = field(default_factory=tuple)

    def __post_init__(self):
        for event in self.events:
            if not isinstance(event, _EVENT_TYPES):
                raise SimulationError(
                    f"not a fault event: {event!r}")
        crashes = [e for e in self.events if isinstance(e, HostCrash)]
        if len(crashes) > 1:
            raise SimulationError(
                "a plan may schedule at most one HostCrash "
                f"(got {len(crashes)}) — after the first, the host is down")

    @classmethod
    def of(cls, *events) -> "FaultPlan":
        """Build a plan from the given events."""
        return cls(events=tuple(events))

    @property
    def is_empty(self) -> bool:
        return not self.events

    def select(self, event_type) -> list:
        return [e for e in self.events if isinstance(e, event_type)]
