"""The fault injector: the pull-side runtime of a :class:`FaultPlan`.

Components carry a ``faults`` attribute (``None`` by default).  When an
injector is attached, the hooks in :class:`~repro.hw.disk.DiskDrive`,
:class:`~repro.hw.scsi.ScsiString`, :class:`~repro.hw.vme.VmePort` and
:class:`~repro.hw.hippi.HippiPort` consult it at each operation:

* :meth:`FaultInjector.on_disk_op` applies due disk events (death,
  latent sector installation) and raises
  :class:`~repro.errors.TransientDiskError` for due transient faults;
* :meth:`FaultInjector.stall_delay` returns how long a link transfer
  starting *now* must wait out a stall window (0.0 when none);
* :meth:`FaultInjector.on_device_write` drives the
  :class:`~repro.faults.plan.HostCrash` countdown for a
  :class:`~repro.faults.crash.CrashableDevice`.

The injector never schedules simulation events itself — consult-and-
return keeps an armed plan deterministic and an empty plan invisible.
Fault activity is exported through the simulator's metrics registry
under the ``faults`` component.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransientDiskError
from repro.faults.plan import (DiskDeath, FaultPlan, HostCrash,
                               LatentSectorError, LinkStall, TransientFault)
from repro.sim import Simulator
from repro.units import SECTOR_SIZE


class _TransientState:
    """Mutable countdown for one :class:`TransientFault`."""

    __slots__ = ("event", "remaining")

    def __init__(self, event: TransientFault):
        self.event = event
        self.remaining = event.count


class _CrashState:
    """Mutable write countdown for the plan's :class:`HostCrash`."""

    __slots__ = ("event", "seen")

    def __init__(self, event: HostCrash):
        self.event = event
        self.seen = 0


class FaultInjector:
    """Executes a plan against the components it is attached to."""

    def __init__(self, sim: Simulator, plan: Optional[FaultPlan] = None,
                 component: str = "faults"):
        self.sim = sim
        self.plan = plan if plan is not None else FaultPlan()
        self.component = component

        self._deaths: dict[str, DiskDeath] = {}
        for event in self.plan.select(DiskDeath):
            self._deaths[event.disk] = event
        self._transients: dict[str, list[_TransientState]] = {}
        for event in self.plan.select(TransientFault):
            self._transients.setdefault(event.disk, []).append(
                _TransientState(event))
        self._latents: dict[str, list[LatentSectorError]] = {}
        for event in self.plan.select(LatentSectorError):
            self._latents.setdefault(event.disk, []).append(event)
        self._stalls: dict[str, list[LinkStall]] = {}
        for event in self.plan.select(LinkStall):
            self._stalls.setdefault(event.link, []).append(event)
        crashes = self.plan.select(HostCrash)
        self._crash: Optional[_CrashState] = (
            _CrashState(crashes[0]) if crashes else None)
        self.crashed = False
        #: Every device-level write seen (the crash-sweep tests count a
        #: clean run with an empty plan to enumerate crash points).
        self.device_writes = 0

        metrics = sim.metrics
        self.m_disk_deaths = metrics.counter(component, "disk_deaths")
        self.m_transient_errors = metrics.counter(component,
                                                  "transient_errors")
        self.m_latent_sectors = metrics.counter(component,
                                                "latent_sector_errors")
        self.m_link_stalls = metrics.counter(component, "link_stalls")
        self.m_stall_seconds = metrics.counter(component, "stall_seconds",
                                               unit="s")
        self.m_host_crashes = metrics.counter(component, "host_crashes")

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, *, disks=(), links=()) -> "FaultInjector":
        """Point components' ``faults`` hooks at this injector."""
        for disk in disks:
            disk.faults = self
        for link in links:
            link.faults = self
        return self

    # ------------------------------------------------------------------
    # hooks (called from the hardware layer)
    # ------------------------------------------------------------------
    def on_disk_op(self, disk, kind: str, lba: int, nsectors: int) -> None:
        """Apply due events for one disk operation; may raise.

        Called by :class:`~repro.hw.disk.DiskDrive` at the start of
        every timed ``read``/``write`` (after the command slot is
        acquired, so injected failures observe real service order).
        """
        now = self.sim.now
        name = disk.name
        death = self._deaths.get(name)
        if death is not None and now >= death.at_s:
            del self._deaths[name]
            disk.fail()
            self.m_disk_deaths.inc()
        pending = self._latents.get(name)
        if pending:
            due = [event for event in pending if now >= event.at_s]
            for event in due:
                pending.remove(event)
                disk.mark_bad(event.lba, event.nsectors)
                self.m_latent_sectors.inc()
        transients = self._transients.get(name)
        if transients:
            for state in transients:
                if state.remaining > 0 and now >= state.event.at_s:
                    state.remaining -= 1
                    self.m_transient_errors.inc()
                    raise TransientDiskError(name, kind)

    def stall_delay(self, link_name: str) -> float:
        """Seconds a transfer starting now must wait out stall windows."""
        stalls = self._stalls.get(link_name)
        if not stalls:
            return 0.0
        now = self.sim.now
        delay = 0.0
        for event in stalls:
            if event.at_s <= now < event.at_s + event.duration_s:
                delay = max(delay, event.at_s + event.duration_s - now)
        if delay > 0.0:
            self.m_link_stalls.inc()
            self.m_stall_seconds.inc(delay)
        return delay

    def on_device_write(self, nbytes: int) -> Optional[int]:
        """Advance the host-crash countdown for one device write.

        Returns ``None`` to let the write through, or the number of
        torn bytes (possibly 0) to land before the crash fires.
        """
        self.device_writes += 1
        state = self._crash
        if state is None or self.crashed:
            return None
        if self.sim.now < state.event.at_s:
            return None
        state.seen += 1
        if state.seen < state.event.nth_write:
            return None
        self.crashed = True
        self.m_host_crashes.inc()
        torn = int(nbytes * state.event.torn_fraction)
        torn -= torn % SECTOR_SIZE
        return min(max(torn, 0), nbytes)


# ----------------------------------------------------------------------
# arming helpers
# ----------------------------------------------------------------------
def _as_injector(sim: Simulator, plan_or_injector) -> FaultInjector:
    if isinstance(plan_or_injector, FaultInjector):
        return plan_or_injector
    return FaultInjector(sim, plan_or_injector)


def attach_array(plan_or_injector, controller) -> FaultInjector:
    """Arm a plan on a bare RAID controller (``DirectDiskPath`` arrays)."""
    injector = _as_injector(controller.sim, plan_or_injector)
    injector.attach(disks=[path.disk for path in controller.paths])
    return injector


def attach_server(plan_or_injector, server) -> FaultInjector:
    """Arm a plan on every disk, string and network port of a server."""
    injector = _as_injector(server.sim, plan_or_injector)
    for board in server.boards:
        for cougar in board.cougars:
            for string in cougar.strings:
                injector.attach(links=[string], disks=string.disks)
        injector.attach(links=board.data_ports)
        injector.attach(links=[board.control_port, board.hippi_source,
                               board.hippi_dest])
    return injector
