"""Unit constants and conversion helpers.

All simulated time is in **seconds** (floats) and all sizes are in
**bytes** (ints).  The paper reports throughput in megabytes/second
(decimal, as was the custom for storage in 1994) and request sizes in
kilobytes, so the helpers here use decimal multiples to stay comparable
with the published figures.
"""

from __future__ import annotations

# This module *defines* the unit constants, so its literals are the
# source of truth rather than magic numbers.
# lint: disable-file=UNIT001

# --- sizes ------------------------------------------------------------
KB = 1000
MB = 1000 * 1000
GB = 1000 * 1000 * 1000

KIB = 1024
MIB = 1024 * 1024

SECTOR_SIZE = 512

# --- time -------------------------------------------------------------
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0


def mb_per_s(nbytes: int, seconds: float) -> float:
    """Throughput in megabytes/second for ``nbytes`` moved in ``seconds``."""
    if seconds <= 0:
        raise ValueError(f"elapsed time must be positive, got {seconds!r}")
    return nbytes / MB / seconds


def ios_per_s(count: int, seconds: float) -> float:
    """Operation rate in I/Os per second."""
    if seconds <= 0:
        raise ValueError(f"elapsed time must be positive, got {seconds!r}")
    return count / seconds


def transfer_time(nbytes: int, rate_mb_s: float) -> float:
    """Seconds needed to move ``nbytes`` at ``rate_mb_s`` megabytes/second."""
    if rate_mb_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_mb_s!r}")
    return nbytes / (rate_mb_s * MB)
