"""Exception hierarchy for the RAID-II reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class HardwareError(ReproError):
    """A hardware model was configured or used incorrectly."""


class DiskFailedError(HardwareError):
    """An I/O was issued to a disk that has been failed by fault injection."""

    def __init__(self, disk_name: str):
        super().__init__(f"disk {disk_name} has failed")
        self.disk_name = disk_name


class RaidError(ReproError):
    """RAID-layer error (bad geometry, unrecoverable loss, ...)."""


class UnrecoverableArrayError(RaidError):
    """More disks failed than the redundancy scheme can tolerate."""


class FileSystemError(ReproError):
    """Generic file-system error."""


class FileNotFoundFsError(FileSystemError):
    """Path does not exist."""


class FileExistsFsError(FileSystemError):
    """Path already exists."""


class NotADirectoryFsError(FileSystemError):
    """A path component is not a directory."""


class IsADirectoryFsError(FileSystemError):
    """Operation requires a regular file but the path is a directory."""


class DirectoryNotEmptyFsError(FileSystemError):
    """Directory must be empty to be removed."""


class NoSpaceFsError(FileSystemError):
    """The log ran out of clean segments."""


class CorruptFileSystemError(FileSystemError):
    """On-disk structures failed validation during mount or recovery."""


class ConsistencyError(ReproError):
    """A runtime sanitizer (fsck, parity scrub) found an inconsistency.

    Raised by the :mod:`repro.testing` hooks; the message carries the
    full rendered report so a failing test shows every finding.
    """


class NetworkError(ReproError):
    """Network-layer error."""


class ProtocolError(ReproError):
    """Client/server protocol violation."""
