"""Exception hierarchy for the RAID-II reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class HardwareError(ReproError):
    """A hardware model was configured or used incorrectly."""


class DiskFailedError(HardwareError):
    """An I/O was issued to a disk that has been failed by fault injection."""

    def __init__(self, disk_name: str):
        super().__init__(f"disk {disk_name} has failed")
        self.disk_name = disk_name


class TransientDiskError(HardwareError):
    """A retryable SCSI-level error (bus glitch, recovered command).

    Raised by fault injection on a drive that is otherwise healthy; a
    retry of the same operation is expected to succeed, so the Cougar
    and RAID layers absorb these with retry-with-backoff policies.
    """

    def __init__(self, disk_name: str, op: str = "io"):
        super().__init__(f"transient {op} error on disk {disk_name}")
        self.disk_name = disk_name
        self.op = op


class MediumError(HardwareError):
    """A latent sector error: the medium under ``lba`` is unreadable.

    Unlike :class:`TransientDiskError` a retry does *not* help — the
    sector stays bad until it is rewritten (drives remap on write).
    The RAID layer reconstructs the data through redundancy and heals
    the sector by writing the reconstruction back.
    """

    def __init__(self, disk_name: str, lba: int):
        super().__init__(f"medium error on disk {disk_name} at lba {lba}")
        self.disk_name = disk_name
        self.lba = lba


class OpTimeoutError(HardwareError):
    """A controller-level per-operation timeout expired and every retry
    allowed by the policy was exhausted."""


class CrashPoint(ReproError):
    """A scheduled simulated host crash fired.

    Raised out of the in-flight device write by the fault-injection
    machinery (see :mod:`repro.faults.crash`).  Carries a snapshot of
    the durable media taken at the instant of the crash, so a test can
    rebuild a fresh device stack from it, remount, and roll forward.
    """

    def __init__(self, message: str, snapshot=None, at_s: float = 0.0):
        super().__init__(message)
        self.snapshot = snapshot
        self.at_s = at_s


class RaidError(ReproError):
    """RAID-layer error (bad geometry, unrecoverable loss, ...)."""


class UnrecoverableArrayError(RaidError):
    """More disks failed than the redundancy scheme can tolerate."""


class FileSystemError(ReproError):
    """Generic file-system error."""


class FileNotFoundFsError(FileSystemError):
    """Path does not exist."""


class FileExistsFsError(FileSystemError):
    """Path already exists."""


class NotADirectoryFsError(FileSystemError):
    """A path component is not a directory."""


class IsADirectoryFsError(FileSystemError):
    """Operation requires a regular file but the path is a directory."""


class DirectoryNotEmptyFsError(FileSystemError):
    """Directory must be empty to be removed."""


class NoSpaceFsError(FileSystemError):
    """The log ran out of clean segments."""


class CorruptFileSystemError(FileSystemError):
    """On-disk structures failed validation during mount or recovery."""


class ConsistencyError(ReproError):
    """A runtime sanitizer (fsck, parity scrub) found an inconsistency.

    Raised by the :mod:`repro.testing` hooks; the message carries the
    full rendered report so a failing test shows every finding.
    """


class NetworkError(ReproError):
    """Network-layer error."""


class ProtocolError(ReproError):
    """Client/server protocol violation."""
