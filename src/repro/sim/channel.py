"""Bandwidth-limited channels.

A :class:`BandwidthChannel` models a bus, link or port that moves bytes
at a fixed rate and serves transfers one at a time (FIFO).  Because the
hardware models issue transfers in block-sized units (sectors, stripe
units, network packets), interleaving and fairness between competing
streams emerge naturally at block granularity, which matches how the
real buses behaved.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.resources import Resource
from repro.units import MB


class BandwidthChannel:
    """A serialized transfer channel with a fixed byte rate.

    Parameters
    ----------
    rate_mb_s:
        Sustained transfer rate in megabytes/second.
    per_transfer_overhead:
        Fixed time in seconds charged to every transfer before data
        moves (bus arbitration, command decode, packet setup...).
    """

    __slots__ = ("sim", "rate_mb_s", "per_transfer_overhead", "name",
                 "_lock", "_rate_bytes", "bytes_moved", "busy_time",
                 "transfer_count")

    def __init__(self, sim: Simulator, rate_mb_s: float,
                 per_transfer_overhead: float = 0.0, name: str = ""):
        if rate_mb_s <= 0:
            raise SimulationError(f"rate must be positive, got {rate_mb_s!r}")
        if per_transfer_overhead < 0:
            raise SimulationError("overhead must be non-negative")
        self.sim = sim
        self.rate_mb_s = rate_mb_s
        self._rate_bytes = rate_mb_s * MB
        self.per_transfer_overhead = per_transfer_overhead
        self.name = name
        self._lock = Resource(sim, capacity=1, name=f"{name}.lock")
        self.bytes_moved = 0
        self.busy_time = 0.0
        self.transfer_count = 0

    def transfer_time(self, nbytes: int) -> float:
        """Service time for a transfer of ``nbytes`` (excluding queueing)."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        return self.per_transfer_overhead + nbytes / self._rate_bytes

    def transfer(self, nbytes: int):
        """Process: move ``nbytes`` across the channel (queue + service)."""
        yield self._lock.acquire()
        try:
            # Inlined transfer_time: this generator runs once per block
            # moved anywhere in the simulation.
            if nbytes < 0:
                raise SimulationError(f"negative transfer size: {nbytes}")
            duration = self.per_transfer_overhead + nbytes / self._rate_bytes
            yield self.sim.timeout(duration)
            self.bytes_moved += nbytes
            self.busy_time += duration
            self.transfer_count += 1
        finally:
            self._lock.release()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the channel was moving data."""
        if elapsed <= 0:
            raise SimulationError("elapsed must be positive")
        return min(1.0, self.busy_time / elapsed)

    @property
    def queue_length(self) -> int:
        return self._lock.queue_length
