"""Discrete-event simulation kernel.

This subpackage is a small, self-contained discrete-event simulator in
the style of SimPy: simulation activities are Python generators that
``yield`` events (timeouts, resource grants, other processes) and are
resumed when those events fire.

The rest of the package builds every hardware model (disks, buses, the
XBUS crossbar, networks, hosts) on top of these primitives.
"""

from repro.sim.core import AllOf, AnyOf, Event, Interrupt, Process, Simulator, Timeout
from repro.sim.channel import BandwidthChannel
from repro.sim.monitor import (BusyMonitor, LatencyMonitor, ThroughputMeter,
                               ZeroWindow)
from repro.sim.resources import PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthChannel",
    "BusyMonitor",
    "Event",
    "Interrupt",
    "LatencyMonitor",
    "PriorityResource",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "ThroughputMeter",
    "Timeout",
    "ZeroWindow",
]
