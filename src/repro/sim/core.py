"""Core event loop: :class:`Simulator`, :class:`Event` and :class:`Process`.

The kernel is deliberately small.  An :class:`Event` is a one-shot
condition that processes can wait on; a :class:`Process` wraps a Python
generator and is itself an event (it fires when the generator returns,
which makes joins trivial: ``yield other_process``).

Semantics follow SimPy closely:

* ``event.succeed(value)`` / ``event.fail(exc)`` *trigger* the event; its
  callbacks run when the event is popped from the queue (same simulated
  instant, deterministic FIFO order among same-time events).
* A process that yields an event is resumed with the event's value, or
  has the event's exception thrown into it.
* A failing process re-raises out of :meth:`Simulator.run` unless another
  process is waiting on it, in which case the exception propagates to the
  waiter instead.

Fast-path invariants (see DESIGN.md §7): every scheduling action draws
exactly one sequence number through :meth:`Simulator._enqueue`, and
same-time entries fire in sequence order, so the optimizations below —
``__slots__``, direct process starts instead of bootstrap events,
the sole-waiter fast path, and batch-popping in :meth:`Simulator.run` —
change wall-clock cost only, never simulated clocks or results.

Heap entries are ``(when, seq, kind, obj)`` tuples.  ``seq`` is unique,
so comparisons never reach ``obj``.  Kinds:

* ``_KIND_FIRE`` (0): ``obj`` is an :class:`Event`; fire its callbacks.
* ``_KIND_START`` (1): ``obj`` is a :class:`Process`; run its first step.
  This replaces the old per-process bootstrap :class:`Event` while
  consuming the same single sequence number.
* ``_KIND_INTERRUPT`` (2): ``obj`` is ``(process, exc)``; throw ``exc``
  into the process unless it already completed at this same instant.
  This replaces the old per-interrupt "poke" :class:`Event`.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.session import observe_simulator

_UNSET = object()

_KIND_FIRE = 0
_KIND_START = 1
_KIND_INTERRUPT = 2

SimGenerator = Generator["Event", Any, Any]


def _noop(_event: "Event") -> None:
    return None


class Event:
    """A one-shot occurrence that processes may wait on.

    ``callbacks`` stays ``None`` until a second listener appears: the
    common case — exactly one process waiting — is held in ``_waiter``
    and resumed directly, without allocating or walking a list.
    """

    __slots__ = ("sim", "callbacks", "_waiter", "_value", "_exc",
                 "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._waiter: Optional["Process"] = None
        self._value: Any = _UNSET
        self._exc: Optional[BaseException] = None
        self._processed = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _UNSET or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event has fully fired)."""
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        return self._exc is None

    @property
    def value(self) -> Any:
        if self._exc is not None:
            raise self._exc
        if self._value is _UNSET:
            raise SimulationError("event has no value yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _UNSET or self._exc is not None:
            raise SimulationError("event already triggered")
        self._value = value
        self.sim._enqueue(0.0, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._value is not _UNSET or self._exc is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._exc = exc
        self.sim._enqueue(0.0, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event fires (immediately if fired)."""
        if self._processed:
            callback(self)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def _fire(self) -> None:
        # The sole waiter registered before any listed callback, so it
        # resumes first — the same FIFO order the callback list gave.
        # NOTE: the dispatch loops in Simulator.run/run_process inline
        # this body; keep them in sync.
        self._processed = True
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            if waiter._value is _UNSET and waiter._exc is None:
                exc = self._exc
                if exc is not None:
                    waiter._step(None, exc)
                else:
                    waiter._step(self._value)
        callbacks = self.callbacks
        if callbacks is not None:
            self.callbacks = None
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__: timeouts are the hottest allocation in
        # the kernel, and they trigger at construction time.
        self.sim = sim
        self.callbacks = None
        self._waiter = None
        self._value = delay if value is None else value
        self._exc = None
        self._processed = False
        sim._enqueue(delay, self)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation activity wrapping a generator.

    The process *is* the event of its own termination: its value is the
    generator's return value, and a failure inside the generator fails
    the event.
    """

    __slots__ = ("_generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: SimGenerator,
                 name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off at the current instant: scheduled directly on the
        # heap (no bootstrap Event), drawing one sequence number exactly
        # as the bootstrap's succeed() used to.
        sim._enqueue(0.0, self, _KIND_START)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not _UNSET or self._exc is not None:
            return
        target = self._waiting_on
        if target is not None and not target._processed:
            # Stop listening to whatever we were waiting for.
            if target._waiter is self:
                target._waiter = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        # Delivery is deferred via the heap (one sequence number, like
        # the old poke event); the dispatcher re-checks that the process
        # is still alive, so an interrupt racing with completion at the
        # same instant is a no-op instead of a throw into an exhausted
        # generator.
        self.sim._enqueue(0.0, (self, Interrupt(cause)), _KIND_INTERRUPT)

    # -- internal ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not _UNSET or self._exc is not None:
            return
        exc = event._exc
        if exc is not None:
            self._step(None, exc)
        else:
            self._step(event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None):
        self._waiting_on = None
        generator = self._generator
        while True:
            try:
                if throw is not None:
                    exc, throw = throw, None
                    target = generator.throw(exc)
                else:
                    target = generator.send(send)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - must capture all
                self._fail_process(exc)
                return
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes may only yield Event instances")
                self._fail_process(exc)
                return
            if target._processed:
                # Already fired: continue synchronously.
                if target._exc is not None:
                    throw = target._exc
                else:
                    send = target._value
                continue
            self._waiting_on = target
            if target._waiter is None and not target.callbacks:
                # Sole waiter: resumed directly by _fire, no list.
                target._waiter = self
            else:
                target.add_callback(self._resume)
            return

    def _fail_process(self, exc: BaseException) -> None:
        if self._waiter is not None or self.callbacks:
            self.fail(exc)
        else:
            # Nobody is waiting: surface the error out of run().
            self._exc = exc
            self._value = _UNSET
            self.sim._crash(exc)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        if not self._events:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired; value is their values."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not _UNSET or self._exc is not None:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(_Condition):
    """Fires when the first constituent event fires; value is that value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not _UNSET or self._exc is not None:
            return
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(event._value)


class Simulator:
    """The event loop: a priority queue of (time, sequence, kind, obj)."""

    def __init__(self):
        self.now = 0.0
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = count()
        self._crashed: Optional[BaseException] = None
        # Observability (DESIGN.md §8): tracer defaults to the shared
        # NULL_TRACER unless an observe() session is active; swapping
        # in a live repro.obs.Tracer at any time enables span capture
        # for processes spawned from then on.  Both observe and never
        # schedule — neither may consume sequence numbers.
        self.tracer, self.metrics = observe_simulator(self)

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Fast path: build the Timeout without delegating to __init__
        # and push the heap entry directly (timeouts are the hottest
        # allocation in the kernel).  This bypasses _enqueue, so trace
        # tooling that wants every scheduling action must hook
        # heapq.heappush rather than _enqueue alone.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        timeout = Timeout.__new__(Timeout)
        timeout.sim = self
        timeout.callbacks = None
        timeout._waiter = None
        timeout._value = delay if value is None else value
        timeout._exc = None
        timeout._processed = False
        heapq.heappush(self._heap,
                       (self.now + delay, next(self._seq), _KIND_FIRE, timeout))
        return timeout

    def process(self, generator: SimGenerator, name: str = "") -> Process:
        tracer = self.tracer
        if tracer.enabled:
            # Resolve the display name from the original generator
            # before wrapping: the determinism fingerprint includes
            # process names, which must not change with tracing on.
            if not name:
                name = getattr(generator, "__name__", "process")
            generator = tracer.scoped(generator)
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _enqueue(self, delay: float, obj: Any, kind: int = _KIND_FIRE) -> None:
        # Single chokepoint for every scheduling action: the determinism
        # trace test hooks this to fingerprint simulated behavior.
        heapq.heappush(self._heap,
                       (self.now + delay, next(self._seq), kind, obj))

    def _crash(self, exc: BaseException) -> None:
        if self._crashed is None:
            self._crashed = exc

    def _dispatch(self, kind: int, obj: Any) -> None:
        """Run one popped heap entry (time already advanced)."""
        if kind == _KIND_FIRE:
            obj._fire()
        elif kind == _KIND_START:
            if obj._value is _UNSET and obj._exc is None:
                obj._step()
        else:  # _KIND_INTERRUPT
            process, exc = obj
            if process._value is _UNSET and process._exc is None:
                process._step(None, exc)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Fire the single next event."""
        when, _seq, kind, obj = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event queue went backwards in time")
        self.now = when
        self._dispatch(kind, obj)
        if self._crashed is not None:
            exc, self._crashed = self._crashed, None
            raise exc

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation clock after running.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            self.now = when
            # Batch-pop everything scheduled for this instant: one
            # timestamp comparison per event instead of re-checking
            # ``until`` and re-reading the clock each iteration.  The
            # kind-0 arm is Event._fire inlined (sole-waiter resume
            # first, then listed callbacks) to skip two calls per event.
            while True:
                _when, _seq, kind, obj = heappop(heap)
                if kind == _KIND_FIRE:
                    obj._processed = True
                    waiter = obj._waiter
                    if waiter is not None:
                        obj._waiter = None
                        if waiter._value is _UNSET and waiter._exc is None:
                            exc = obj._exc
                            if exc is not None:
                                waiter._step(None, exc)
                            else:
                                waiter._step(obj._value)
                    callbacks = obj.callbacks
                    if callbacks is not None:
                        obj.callbacks = None
                        for callback in callbacks:
                            callback(obj)
                else:
                    self._dispatch(kind, obj)
                if self._crashed is not None:
                    exc, self._crashed = self._crashed, None
                    raise exc
                if not heap or heap[0][0] != when:
                    break
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_process(self, generator: SimGenerator, name: str = "") -> Any:
        """Run ``generator`` as a process to completion and return its value.

        This is the bridge between the synchronous public API and the
        event loop: facades wrap an I/O path generator and call this.
        """
        proc = self.process(generator, name=name)
        # Keep a callback registered so a failure propagates here rather
        # than crashing the run loop.
        proc.add_callback(_noop)
        heap = self._heap
        heappop = heapq.heappop
        while proc._value is _UNSET and proc._exc is None:
            if not heap:
                raise SimulationError(
                    f"deadlock: process {proc.name!r} cannot complete "
                    "(event queue is empty)")
            when, _seq, kind, obj = heappop(heap)
            self.now = when
            # Inlined Event._fire, as in run() above.
            if kind == _KIND_FIRE:
                obj._processed = True
                waiter = obj._waiter
                if waiter is not None:
                    obj._waiter = None
                    if waiter._value is _UNSET and waiter._exc is None:
                        exc = obj._exc
                        if exc is not None:
                            waiter._step(None, exc)
                        else:
                            waiter._step(obj._value)
                callbacks = obj.callbacks
                if callbacks is not None:
                    obj.callbacks = None
                    for callback in callbacks:
                        callback(obj)
            else:
                self._dispatch(kind, obj)
            if self._crashed is not None:
                exc, self._crashed = self._crashed, None
                raise exc
        return proc.value
