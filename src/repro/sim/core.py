"""Core event loop: :class:`Simulator`, :class:`Event` and :class:`Process`.

The kernel is deliberately small.  An :class:`Event` is a one-shot
condition that processes can wait on; a :class:`Process` wraps a Python
generator and is itself an event (it fires when the generator returns,
which makes joins trivial: ``yield other_process``).

Semantics follow SimPy closely:

* ``event.succeed(value)`` / ``event.fail(exc)`` *trigger* the event; its
  callbacks run when the event is popped from the queue (same simulated
  instant, deterministic FIFO order among same-time events).
* A process that yields an event is resumed with the event's value, or
  has the event's exception thrown into it.
* A failing process re-raises out of :meth:`Simulator.run` unless another
  process is waiting on it, in which case the exception propagates to the
  waiter instead.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

_UNSET = object()

SimGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence that processes may wait on."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = _UNSET
        self._exc: Optional[BaseException] = None
        self._processed = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _UNSET or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event has fully fired)."""
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        return self._exc is None

    @property
    def value(self) -> Any:
        if self._exc is not None:
            raise self._exc
        if self._value is _UNSET:
            raise SimulationError("event has no value yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.sim._enqueue(0.0, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._exc = exc
        self.sim._enqueue(0.0, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event fires (immediately if fired)."""
        if self._processed:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _fire(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._value = value if value is not None else delay
        sim._enqueue(delay, self)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation activity wrapping a generator.

    The process *is* the event of its own termination: its value is the
    generator's return value, and a failure inside the generator fails
    the event.
    """

    def __init__(self, sim: "Simulator", generator: SimGenerator,
                 name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off at the current instant.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and not target.processed:
            # Stop listening to whatever we were waiting for.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        poke = Event(self.sim)
        poke.add_callback(lambda _ev: self._step(throw=Interrupt(cause)))
        poke.succeed()

    # -- internal ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self._step(throw=event._exc)
        else:
            self._step(send=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None):
        self._waiting_on = None
        sim = self.sim
        previous = sim._active_process
        sim._active_process = self
        try:
            while True:
                try:
                    if throw is not None:
                        exc, throw = throw, None
                        target = self._generator.throw(exc)
                    else:
                        target = self._generator.send(send)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:  # noqa: BLE001 - must capture all
                    self._fail_process(exc)
                    return
                if not isinstance(target, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded {target!r}; "
                        "processes may only yield Event instances")
                    self._fail_process(exc)
                    return
                if target.processed:
                    # Already fired: continue synchronously.
                    if target._exc is not None:
                        throw = target._exc
                    else:
                        send = target._value
                    continue
                self._waiting_on = target
                target.add_callback(self._resume)
                return
        finally:
            sim._active_process = previous

    def _fail_process(self, exc: BaseException) -> None:
        if self.callbacks:
            self.fail(exc)
        else:
            # Nobody is waiting: surface the error out of run().
            self._exc = exc
            self._value = _UNSET
            self.sim._crash(exc)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        if not self._events:
            self.succeed([])
            return
        self._pending = len(self._events)
        for event in self._events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired; value is their values."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(_Condition):
    """Fires when the first constituent event fires; value is that value."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(event._value)


class Simulator:
    """The event loop: a priority queue of (time, sequence, event)."""

    def __init__(self):
        self.now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self._crashed: Optional[BaseException] = None

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: SimGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _enqueue(self, delay: float, event: Event) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def _crash(self, exc: BaseException) -> None:
        if self._crashed is None:
            self._crashed = exc

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Fire the single next event."""
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event queue went backwards in time")
        self.now = when
        event._fire()
        if self._crashed is not None:
            exc, self._crashed = self._crashed, None
            raise exc

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation clock after running.
        """
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            self.step()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_process(self, generator: SimGenerator, name: str = "") -> Any:
        """Run ``generator`` as a process to completion and return its value.

        This is the bridge between the synchronous public API and the
        event loop: facades wrap an I/O path generator and call this.
        """
        proc = self.process(generator, name=name)
        # Keep a callback registered so a failure propagates here rather
        # than crashing the run loop.
        proc.add_callback(lambda _ev: None)
        while not proc.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: process {proc.name!r} cannot complete "
                    "(event queue is empty)")
            self.step()
        return proc.value
