"""Measurement helpers: throughput meters, latency and busy-time stats.

Since the observability PR these classes are thin shims over the
per-simulator :class:`repro.obs.MetricsRegistry` (``sim.metrics``):
the values they accumulate live in registry counters/gauges/histograms
and therefore appear in ``--metrics`` snapshots automatically, while
the familiar meter API keeps working for experiments and tests.
Anonymous meters get deterministic registry components
(``throughput.1``, ``busy.2``...) so snapshots stay identical across
identical runs.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import SimulationError
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram
from repro.sim.core import Simulator
from repro.units import MB

#: Relative slack for busy-time accounting checks: utilization may
#: exceed 1.0 by at most this much before it is treated as a bug.
UTILIZATION_TOLERANCE = 1e-9


class ZeroWindow(float):
    """A 0.0 rate reported because the measured window had no width.

    Compares and computes exactly like ``0.0``, so callers that only
    do arithmetic keep working, while callers that care can
    ``isinstance``-check why the rate is zero instead of crashing (or
    meeting ``float('inf')``).
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "ZeroWindow(0.0)"


class ThroughputMeter:
    """Accumulates completed bytes/operations over a measured window."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        component = name or sim.metrics.unique_component("throughput")
        self._bytes = sim.metrics.counter(component, "bytes_done", unit="B")
        self._ops = sim.metrics.counter(component, "ops_done", unit="ops")
        self._start: Optional[float] = None
        self._end: Optional[float] = None
        self._last_duration: Optional[float] = None

    @property
    def bytes_done(self) -> int:
        return self._bytes.value

    @property
    def ops_done(self) -> int:
        return self._ops.value

    def start(self) -> None:
        self._start = self.sim.now

    def record(self, nbytes: int, duration: Optional[float] = None) -> None:
        """Count one completed operation of ``nbytes``.

        ``duration`` (the operation's own service time) is optional;
        when given it lets the meter report a meaningful rate even for
        a single-record window, whose elapsed time is zero.
        """
        if self._start is None:
            self.start()
        self._bytes.inc(nbytes)
        self._ops.inc(1)
        self._end = self.sim.now
        self._last_duration = duration

    @property
    def elapsed(self) -> float:
        if self._start is None or self._end is None:
            raise SimulationError("meter has not recorded anything")
        return self._end - self._start

    def _window(self) -> float:
        """The rate denominator: the measured window when it has width,
        falling back to the last operation's own duration.  Returns 0.0
        when neither exists — the callers then report ZeroWindow rather
        than raising or dividing."""
        elapsed = self.elapsed
        if elapsed > 0:
            return elapsed
        if self._last_duration is not None and self._last_duration > 0:
            return self._last_duration
        return 0.0

    @property
    def mb_per_s(self) -> float:
        window = self._window()
        if window <= 0:
            return ZeroWindow()
        return self._bytes.value / MB / window

    @property
    def ios_per_s(self) -> float:
        window = self._window()
        if window <= 0:
            return ZeroWindow()
        return self._ops.value / window


class LatencyMonitor:
    """Collects per-operation latencies and reports summary statistics.

    Keeps the raw samples (exact nearest-rank percentiles need them)
    and mirrors every observation into a fixed-bucket histogram — the
    registry's when a ``sim`` is given, a standalone one otherwise.
    """

    def __init__(self, name: str = "", sim: Optional[Simulator] = None,
                 buckets: tuple = DEFAULT_LATENCY_BUCKETS):
        self.name = name
        if sim is not None:
            component = name or sim.metrics.unique_component("latency")
            self.histogram = sim.metrics.histogram(component, "latency",
                                                   buckets=buckets)
        else:
            self.histogram = Histogram(name or "latency", "latency",
                                       buckets=buckets)
        self.samples: list[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise SimulationError(f"negative latency: {latency!r}")
        self.samples.append(latency)
        # Histogram.observe is a plain method; it merely shares its
        # name with the obs session generator.
        self.histogram.observe(latency)  # lint: disable=SIM001

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise SimulationError("no samples")
        return sum(self.samples) / len(self.samples)

    @property
    def maximum(self) -> float:
        if not self.samples:
            raise SimulationError("no samples")
        return max(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.samples:
            raise SimulationError("no samples")
        if not 0 <= p <= 100:
            raise SimulationError(f"percentile out of range: {p!r}")
        ordered = sorted(self.samples)
        if p == 0:
            return ordered[0]
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]


class BusyMonitor:
    """Tracks how long a component spends busy, for utilization reports."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        component = name or sim.metrics.unique_component("busy")
        self._gauge = sim.metrics.gauge(component, "busy_time", unit="s")
        self._busy_since: Optional[float] = None
        self._depth = 0

    @property
    def busy_time(self) -> float:
        return self._gauge.value

    def enter(self) -> None:
        if self._depth == 0:
            self._busy_since = self.sim.now
        self._depth += 1

    def exit(self) -> None:
        if self._depth <= 0:
            raise SimulationError(f"BusyMonitor {self.name!r} exit without enter")
        self._depth -= 1
        if self._depth == 0:
            assert self._busy_since is not None
            self._gauge.add(self.sim.now - self._busy_since)
            self._busy_since = None

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            raise SimulationError("elapsed must be positive")
        busy = self._gauge.value
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        raw = busy / elapsed
        if raw > 1.0 + UTILIZATION_TOLERANCE:
            # A component cannot be busy for longer than the window:
            # this is an enter/exit accounting bug, not a measurement,
            # and silently clamping it would hide the corruption.
            raise SimulationError(
                f"BusyMonitor {self.name!r} utilization {raw:.9f} exceeds "
                "1.0: busy intervals overlap or exit() accounting is wrong")
        return min(1.0, raw)
