"""Measurement helpers: throughput meters, latency and busy-time stats."""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.units import MB


class ThroughputMeter:
    """Accumulates completed bytes/operations over a measured window."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.bytes_done = 0
        self.ops_done = 0
        self._start: Optional[float] = None
        self._end: Optional[float] = None

    def start(self) -> None:
        self._start = self.sim.now

    def record(self, nbytes: int) -> None:
        if self._start is None:
            self.start()
        self.bytes_done += nbytes
        self.ops_done += 1
        self._end = self.sim.now

    @property
    def elapsed(self) -> float:
        if self._start is None or self._end is None:
            raise SimulationError("meter has not recorded anything")
        return self._end - self._start

    @property
    def mb_per_s(self) -> float:
        elapsed = self.elapsed
        if elapsed <= 0:
            raise SimulationError("no elapsed time recorded")
        return self.bytes_done / MB / elapsed

    @property
    def ios_per_s(self) -> float:
        elapsed = self.elapsed
        if elapsed <= 0:
            raise SimulationError("no elapsed time recorded")
        return self.ops_done / elapsed


class LatencyMonitor:
    """Collects per-operation latencies and reports summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise SimulationError(f"negative latency: {latency!r}")
        self.samples.append(latency)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise SimulationError("no samples")
        return sum(self.samples) / len(self.samples)

    @property
    def maximum(self) -> float:
        if not self.samples:
            raise SimulationError("no samples")
        return max(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.samples:
            raise SimulationError("no samples")
        if not 0 <= p <= 100:
            raise SimulationError(f"percentile out of range: {p!r}")
        ordered = sorted(self.samples)
        if p == 0:
            return ordered[0]
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]


class BusyMonitor:
    """Tracks how long a component spends busy, for utilization reports."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None
        self._depth = 0

    def enter(self) -> None:
        if self._depth == 0:
            self._busy_since = self.sim.now
        self._depth += 1

    def exit(self) -> None:
        if self._depth <= 0:
            raise SimulationError(f"BusyMonitor {self.name!r} exit without enter")
        self._depth -= 1
        if self._depth == 0:
            assert self._busy_since is not None
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            raise SimulationError("elapsed must be positive")
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return min(1.0, busy / elapsed)
