"""Shared resources: counted semaphores and FIFO stores.

These model contention points — a disk's command queue slot, the host
CPU, an XBUS port — where processes must wait their turn.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


class Resource:
    """A counted resource with FIFO granting.

    Usage inside a process::

        yield resource.acquire()
        try:
            ...  # hold the resource
        finally:
            resource.release()
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def locked(self):
        """Context-manager-style helper usable with ``yield from``::

            with (yield from resource.locked()):
                ...
        """
        yield self.acquire()
        return _Lease(self)


class _Lease:
    __slots__ = ("_resource",)

    def __init__(self, resource: Resource):
        self._resource = resource

    def __enter__(self) -> "_Lease":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._resource.release()


class PriorityResource(Resource):
    """A resource whose waiters are granted in priority order.

    Lower ``priority`` values are served first; ties are FIFO.  The
    XBUS crossbar uses this for its centralized priority arbitration.
    """

    __slots__ = ("_pq", "_tiebreak")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        super().__init__(sim, capacity, name)
        self._pq: list[tuple[int, int, Event]] = []
        self._tiebreak = count()

    def acquire(self, priority: int = 0) -> Event:
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            heappush(self._pq, (priority, next(self._tiebreak), event))
        return event

    @property
    def queue_length(self) -> int:
        return len(self._pq)

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._pq:
            _prio, _seq, event = heappop(self._pq)
            event.succeed()
        else:
            self._in_use -= 1


class Store:
    """An unbounded (or bounded) FIFO queue of items between processes."""

    __slots__ = ("sim", "capacity", "name", "_items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = ""):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        if self._getters:
            # Hand the item straight to a waiting getter.
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
            if self._putters:
                put_event, item = self._putters.popleft()
                self._items.append(item)
                put_event.succeed()
        else:
            self._getters.append(event)
        return event
