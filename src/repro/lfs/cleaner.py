"""The segment cleaner (log garbage collector).

The paper's prototype shipped without one ("LFS cleaning ... has not
yet been implemented", Section 3.4); this is the stated missing piece,
implemented with the two classic victim-selection policies from
Rosenblum & Ousterhout:

* **greedy** — always clean the segment with the least live data;
* **cost-benefit** — maximize ``(age * free) / (1 + live)``, which
  prefers old, cold segments even when they hold a bit more live data.

Cleaning a victim reads its summaries, checks each block's identity
against the current maps, copies live *data* blocks back into the head
of the log (at normal, timed append cost), and marks dirty the inodes,
pointer blocks and imap blocks it displaces so the following sync
relocates them.  Victims are only marked clean after the copies are
safely flushed, so a crash mid-clean can never lose data.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import FileSystemError
from repro.lfs.imap import PENDING
from repro.lfs.ondisk import (BLOCK_SIZE, NULL_ADDR, BlockId, BlockKind,
                              SegmentState)
from repro.lfs.recovery import scan_segment

_DROOT = -1


class CleanerPolicy(enum.Enum):
    GREEDY = "greedy"
    COST_BENEFIT = "cost-benefit"


def pick_victims(fs, count: int,
                 policy: CleanerPolicy = CleanerPolicy.COST_BENEFIT
                 ) -> list[int]:
    """Choose up to ``count`` dirty segments to clean."""
    current_seq = fs.writer.next_fragment_seq
    scored: list[tuple[float, int]] = []
    segment_bytes = fs.sb.segment_blocks * BLOCK_SIZE
    for segment, entry in enumerate(fs.usage):
        if entry.state != SegmentState.DIRTY:
            continue
        live = entry.live_bytes
        free = segment_bytes - live
        if free <= 0:
            continue
        if policy is CleanerPolicy.GREEDY:
            score = float(free)
        else:
            age = max(1, current_seq - entry.last_seq)
            score = age * free / (1 + live)
        scored.append((score, segment))
    scored.sort(reverse=True)
    return [segment for _score, segment in scored[:count]]


def clean(fs, max_segments: int = 1,
          policy: CleanerPolicy = CleanerPolicy.COST_BENEFIT):
    """Process: clean up to ``max_segments`` victims; returns the list
    of segments reclaimed."""
    if not fs.mounted:
        raise FileSystemError("file system is not mounted")
    reclaimed: list[int] = []
    fs.writer.cleaning = True  # unlock the reserved segments
    try:
        with fs.sim.tracer.span("cleaner.clean", fs.name,
                                max_segments=max_segments,
                                policy=policy.value):
            # One victim at a time: each reclamation frees a segment
            # before the next evacuation needs space, so in-flight
            # copies never outgrow the reserve even on a completely
            # full log.
            for _round in range(max_segments):
                victims = pick_victims(fs, 1, policy)
                if not victims:
                    break
                victim = victims[0]
                yield from _evacuate(fs, victim)
                # Persist the copies (including relocated imap blocks,
                # which only a checkpoint writes) before reusing it.
                yield from fs.checkpoint()
                entry = fs.usage[victim]
                if entry.live_bytes != 0:
                    raise FileSystemError(
                        f"segment {victim} still has {entry.live_bytes} "
                        "live bytes after cleaning")
                entry.state = SegmentState.CLEAN
                fs.segments_cleaned += 1
                reclaimed.append(victim)
    finally:
        fs.writer.cleaning = False
    return reclaimed


def _evacuate(fs, victim: int):
    """Process: move every live block out of ``victim``."""
    base = fs.writer.segment_base(victim)
    with fs.sim.tracer.span("cleaner.evacuate", fs.name, segment=victim):
        for fragment in scan_segment(fs, victim):
            # One timed read for the summary block itself.
            yield from fs.device.read(
                (base + fragment.start_offset) * BLOCK_SIZE, BLOCK_SIZE)
            for position, block_id in enumerate(fragment.summary.entries):
                addr = base + fragment.start_offset + 1 + position
                live = yield from _is_live_timed(fs, block_id, addr)
                if not live:
                    continue
                yield from _relocate(fs, block_id, addr)
    return None


def _is_live_timed(fs, block_id: BlockId, addr: int):
    """Process: liveness check through the normal (cached) metadata path."""
    kind = block_id.kind
    if kind == BlockKind.IMAP:
        return fs.imap_addrs[block_id.index] == addr
    if kind == BlockKind.INODE:
        return fs.imap.get(block_id.ino) == addr
    imap_addr = fs.imap.get(block_id.ino) \
        if fs.imap.max_inodes > block_id.ino else NULL_ADDR
    if imap_addr == NULL_ADDR and block_id.ino not in fs._inodes:
        return False
    inode = yield from fs._load_inode(block_id.ino)
    if kind == BlockKind.DINDIRECT:
        return inode.dindirect == addr
    if kind == BlockKind.INDIRECT:
        root = yield from _chunk_root(fs, inode, block_id.index)
        return root == addr
    current = yield from fs._get_addr(inode, block_id.index)
    return current == addr


def _chunk_root(fs, inode, chunk_index: int):
    if chunk_index == 0:
        return inode.indirect
    if inode.dindirect == NULL_ADDR and (inode.ino, _DROOT) not in fs._chunks:
        return NULL_ADDR
    droot = yield from fs._load_chunk(inode, _DROOT)
    return droot[chunk_index - 1]


def _relocate(fs, block_id: BlockId, addr: int):
    """Process: move one live block to the log head."""
    kind = block_id.kind
    if kind == BlockKind.DATA:
        payload = yield from fs.device.read(addr * BLOCK_SIZE, BLOCK_SIZE)
        inode = yield from fs._load_inode(block_id.ino)
        new_addr = yield from fs.writer.append(block_id, payload)
        yield from fs._set_addr(inode, block_id.index, new_addr)
        return None
    if kind == BlockKind.INODE:
        # Re-log the inode at the next metadata flush.
        yield from fs._load_inode(block_id.ino)
        fs._dirty_inodes.add(block_id.ino)
        return None
    if kind == BlockKind.INDIRECT:
        inode = yield from fs._load_inode(block_id.ino)
        yield from fs._load_chunk(inode, block_id.index)
        fs._dirty_chunks.add((block_id.ino, block_id.index))
        return None
    if kind == BlockKind.DINDIRECT:
        inode = yield from fs._load_inode(block_id.ino)
        yield from fs._load_chunk(inode, _DROOT)
        fs._dirty_chunks.add((block_id.ino, _DROOT))
        return None
    if kind == BlockKind.IMAP:
        fs.imap.dirty_blocks.add(block_id.index)
        return None
    raise FileSystemError(f"unknown block kind {kind}")
