"""Crash recovery: checkpoint load, roll-forward, usage rebuild.

LFS recovery is fast because only the log tail after the last
checkpoint needs processing — the property the paper highlights
("it takes a few seconds to perform an LFS file system check, compared
with approximately 20 minutes" for a UNIX fsck, Section 3.1).

Mount applies, in order:

1. the newest valid checkpoint region (both regions are tried; a torn
   checkpoint write simply falls back to the older region),
2. **roll-forward**: every complete fragment whose sequence number
   continues the checkpoint's chain re-applies its inode and imap
   updates; the chain stops at the first gap or invalid summary, which
   is exactly the crash point,
3. **usage rebuild**: segment liveness is recomputed by scanning
   summaries and testing each block's identity against the recovered
   maps (our prototype favours a provably correct rebuild over
   Sprite's incremental bookkeeping; volumes here are simulator-sized).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CorruptFileSystemError
from repro.lfs.imap import PENDING
from repro.lfs.ondisk import (BLOCK_SIZE, NULL_ADDR, BlockId, BlockKind,
                              Checkpoint, FragmentSummary, Inode,
                              SegmentState, decode_pointer_block,
                              payload_checksum)
from repro.lfs.fs_types import LogHead

__all__ = ["LogHead", "roll_forward", "rebuild_usage", "scan_segment"]


@dataclass(frozen=True)
class _Fragment:
    segment: int
    start_offset: int
    summary: FragmentSummary

    @property
    def end_offset(self) -> int:
        return self.start_offset + 1 + len(self.summary.entries)


def scan_segment(fs, segment: int) -> list[_Fragment]:
    """Walk a segment's fragments front to back (instant, via peek)."""
    base = fs.writer.segment_base(segment)
    fragments: list[_Fragment] = []
    offset = 0
    while offset + 1 < fs.sb.segment_blocks:
        block = fs.device.peek((base + offset) * BLOCK_SIZE, BLOCK_SIZE)
        try:
            summary = FragmentSummary.decode(block)
        except CorruptFileSystemError:
            break
        if summary.segment != segment:
            break
        end = offset + 1 + len(summary.entries)
        if end > fs.sb.segment_blocks:
            break
        fragments.append(_Fragment(segment, offset, summary))
        offset = end
    return fragments


def _payload_intact(fs, fragment: _Fragment) -> bool:
    """Verify a fragment's payload checksum (torn-write detection)."""
    base = fs.writer.segment_base(fragment.segment)
    payload = fs.device.peek(
        (base + fragment.start_offset + 1) * BLOCK_SIZE,
        len(fragment.summary.entries) * BLOCK_SIZE)
    return payload_checksum(payload) == fragment.summary.payload_crc


def roll_forward(fs, checkpoint: Checkpoint) -> LogHead:
    """Re-apply the contiguous fragment chain after ``checkpoint``.

    Returns the recovered log head (where appending resumes).
    """
    candidates: list[_Fragment] = []
    for segment in range(fs.sb.nsegments):
        for fragment in scan_segment(fs, segment):
            if fragment.summary.seq >= checkpoint.next_fragment_seq:
                candidates.append(fragment)
    candidates.sort(key=lambda fragment: fragment.summary.seq)

    expected = checkpoint.next_fragment_seq
    applied: list[_Fragment] = []
    for fragment in candidates:
        if fragment.summary.seq != expected:
            break
        if not _payload_intact(fs, fragment):
            break  # torn flush: the chain (and the log) ends here
        _apply_fragment(fs, fragment)
        applied.append(fragment)
        expected += 1

    if applied:
        last = applied[-1]
        return LogHead(last.segment, last.end_offset, expected)
    return LogHead(checkpoint.head_segment, checkpoint.head_offset,
                   checkpoint.next_fragment_seq)


def _apply_fragment(fs, fragment: _Fragment) -> None:
    base = fs.writer.segment_base(fragment.segment)
    for position, entry in enumerate(fragment.summary.entries):
        addr = base + fragment.start_offset + 1 + position
        if entry.kind == BlockKind.INODE:
            fs.imap.set(entry.ino, addr)
        elif entry.kind == BlockKind.IMAP:
            fs.imap_addrs[entry.index] = addr
            fs.imap.load_block(
                entry.index, fs.device.peek(addr * BLOCK_SIZE, BLOCK_SIZE))
        # DATA / INDIRECT / DINDIRECT blocks become reachable through
        # the inodes applied above; nothing to do for them here.


# ---------------------------------------------------------------------------
# usage rebuild
# ---------------------------------------------------------------------------

def rebuild_usage(fs) -> None:
    """Recompute every segment's live byte count from first principles."""
    for segment in range(fs.sb.nsegments):
        entry = fs.usage[segment]
        fragments = scan_segment(fs, segment)
        live = 0
        base = fs.writer.segment_base(segment)
        for fragment in fragments:
            for position, block_id in enumerate(fragment.summary.entries):
                addr = base + fragment.start_offset + 1 + position
                if _is_live(fs, block_id, addr):
                    live += BLOCK_SIZE
        entry.live_bytes = live
        if segment == fs.writer.current_segment:
            entry.state = SegmentState.CURRENT
        elif fragments:
            entry.state = SegmentState.DIRTY
        else:
            entry.state = SegmentState.CLEAN


def _is_live(fs, block_id: BlockId, addr: int) -> bool:
    kind = block_id.kind
    if kind == BlockKind.IMAP:
        return fs.imap_addrs[block_id.index] == addr
    if kind == BlockKind.INODE:
        return fs.imap.get(block_id.ino) == addr
    inode = _peek_inode(fs, block_id.ino)
    if inode is None:
        return False
    if kind == BlockKind.DINDIRECT:
        return inode.dindirect == addr
    if kind == BlockKind.INDIRECT:
        return _peek_chunk_root(fs, inode, block_id.index) == addr
    if kind == BlockKind.DATA:
        return _peek_block_addr(fs, inode, block_id.index) == addr
    raise CorruptFileSystemError(f"unknown block kind {kind}")


def _peek_inode(fs, ino: int):
    cached = fs._inodes.get(ino)
    if cached is not None:
        return cached
    addr = fs.imap.get(ino)
    if addr in (NULL_ADDR, PENDING):
        return None
    return Inode.decode(fs.device.peek(addr * BLOCK_SIZE, BLOCK_SIZE))


def _peek_chunk_root(fs, inode: Inode, chunk_index: int) -> int:
    if chunk_index == 0:
        return inode.indirect
    if inode.dindirect == NULL_ADDR:
        return NULL_ADDR
    droot = decode_pointer_block(
        fs.device.peek(inode.dindirect * BLOCK_SIZE, BLOCK_SIZE))
    return droot[chunk_index - 1]


def _peek_block_addr(fs, inode: Inode, bidx: int) -> int:
    from repro.lfs.fs import N_DIRECT  # local import to avoid a cycle
    from repro.lfs.ondisk import ADDRS_PER_BLOCK

    if bidx < N_DIRECT:
        return inode.direct[bidx]
    rel = bidx - N_DIRECT
    chunk_index, slot = rel // ADDRS_PER_BLOCK, rel % ADDRS_PER_BLOCK
    root = _peek_chunk_root(fs, inode, chunk_index)
    if root == NULL_ADDR:
        return NULL_ADDR
    chunk = decode_pointer_block(
        fs.device.peek(root * BLOCK_SIZE, BLOCK_SIZE))
    return chunk[slot]
