"""The segment writer: the append-only heart of the log.

Blocks appended between flushes form a *fragment*.  A fragment's first
block holds its summary (the commit record) and the payload blocks
follow; ``flush`` writes summary plus payload as one large sequential
device write.  The summary carries a checksum over the payload, so a
crash mid-flush leaves a fragment that fails verification and is
discarded whole by recovery.

Appending assigns the block's final log address immediately (the
position within the open fragment is known), which lets callers wire
pointers before any I/O happens.  Appending an identity that is
already pending *replaces* the buffered payload in place — repeated
small writes to the same block between flushes cost nothing extra,
which is precisely how LFS absorbs small-write traffic (Section 3.1).

When the current segment cannot fit another payload block the open
fragment is flushed and a fresh segment is taken from the clean list,
so a long stream of appends produces full-segment sequential writes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import NoSpaceFsError
from repro.lfs.ondisk import (BLOCK_SIZE, MAX_FRAGMENT_PAYLOAD, BlockId,
                              FragmentSummary, SegmentState,
                              payload_checksum_parts)


class SegmentWriter:
    """Builds fragments in memory and flushes them to the device."""

    #: Clean segments held back for the cleaner: without a reserve, a
    #: completely full log leaves the cleaner nowhere to copy live data
    #: and the volume deadlocks.
    RESERVED_SEGMENTS = 2

    def __init__(self, sim, device, first_segment_block: int,
                 segment_blocks: int, usage, next_fragment_seq: int = 1,
                 on_segment_start: Optional[Callable[[int], None]] = None):
        self.sim = sim
        self.device = device
        self.first_segment_block = first_segment_block
        self.segment_blocks = segment_blocks
        self.usage = usage  # list[SegmentUsage], shared with the FS
        self.next_fragment_seq = next_fragment_seq
        self.on_segment_start = on_segment_start
        #: Set by the cleaner while it runs: grants access to the
        #: reserved segments.
        self.cleaning = False

        self.current_segment: Optional[int] = None
        #: Next free block offset within the current segment.
        self.offset = 0
        #: Open fragment: position of its (reserved) summary block,
        #: or None when no fragment is open.
        self._fragment_start: Optional[int] = None
        self._pending: list[tuple[BlockId, bytes]] = []
        self._pending_index: dict[BlockId, int] = {}

        self.segments_started = 0
        self.fragments_flushed = 0
        self.blocks_appended = 0
        self.bytes_flushed = 0

    # ------------------------------------------------------------------
    # position helpers
    # ------------------------------------------------------------------
    def segment_base(self, segment: int) -> int:
        return self.first_segment_block + segment * self.segment_blocks

    def addr_of_pending(self, position: int) -> int:
        assert self._fragment_start is not None
        assert self.current_segment is not None
        return (self.segment_base(self.current_segment)
                + self._fragment_start + 1 + position)

    def pending_payload(self, block_id: BlockId) -> Optional[bytes]:
        """Buffered (unflushed) payload for ``block_id``, if any."""
        position = self._pending_index.get(block_id)
        if position is None:
            return None
        return self._pending[position][1]

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def resume_at(self, segment: int, offset: int) -> None:
        """Continue logging at a recovered head position."""
        if offset + 2 > self.segment_blocks:
            self.current_segment = None
            self.offset = 0
            return
        self.current_segment = segment
        self.offset = offset
        self.usage[segment].state = SegmentState.CURRENT

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def _allocate_segment(self) -> int:
        clean = [segment for segment, entry in enumerate(self.usage)
                 if entry.state == SegmentState.CLEAN]
        if not self.cleaning and len(clean) <= self.RESERVED_SEGMENTS:
            raise NoSpaceFsError(
                f"log full: {len(clean)} clean segments remain and "
                f"{self.RESERVED_SEGMENTS} are reserved for the cleaner")
        if not clean:
            raise NoSpaceFsError("no clean segments left in the log")
        segment = clean[0]
        entry = self.usage[segment]
        entry.state = SegmentState.CURRENT
        entry.live_bytes = 0
        self.segments_started += 1
        if self.on_segment_start is not None:
            self.on_segment_start(segment)
        return segment

    def append(self, block_id: BlockId, payload: bytes):
        """Process: append one block; returns its assigned address.

        Flushes automatically when the current segment (or the summary
        capacity) fills, so a single call may perform device I/O.
        """
        if len(payload) > BLOCK_SIZE:
            raise NoSpaceFsError(
                f"payload of {len(payload)} bytes exceeds the block size")
        if len(payload) < BLOCK_SIZE:
            # Short payloads (metadata, file tails) are padded into a
            # fresh block; full blocks pass through as zero-copy views.
            payload = (bytes(payload)  # lint: disable=SIM004
                       + bytes(BLOCK_SIZE - len(payload)))

        # Replace in place if this identity is already pending.
        position = self._pending_index.get(block_id)
        if position is not None:
            self._pending[position] = (block_id, payload)
            return self.addr_of_pending(position)

        if len(self._pending) >= MAX_FRAGMENT_PAYLOAD:
            yield from self.flush()

        if self.current_segment is None:
            self.current_segment = self._allocate_segment()
            self.offset = 0
        # Need room for the summary (if opening a fragment) + the block.
        needed = 1 if self._fragment_start is not None else 2
        if self.offset + needed > self.segment_blocks:
            yield from self.flush()
            if self.current_segment is None:
                self.current_segment = self._allocate_segment()
                self.offset = 0
        if self._fragment_start is None:
            self._fragment_start = self.offset
            self.offset += 1  # reserve the summary slot

        position = len(self._pending)
        self._pending.append((block_id, payload))
        self._pending_index[block_id] = position
        self.offset += 1
        self.blocks_appended += 1
        return self.addr_of_pending(position)

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def flush(self):
        """Process: commit the open fragment as one sequential write.

        Summary block and payload go to the device together — a
        full-segment flush on the RAID-5 array is therefore one
        stripe-aligned write (full-stripe, no parity read).  The
        payload checksum in the summary makes the single write
        atomic-for-recovery: a torn flush fails verification and the
        whole fragment is discarded by roll-forward.
        """
        if self._fragment_start is None or not self._pending:
            return None
        segment = self.current_segment
        assert segment is not None
        base = self.segment_base(segment)
        # Checksum the pending views in place and join summary + payload
        # in one pass: the only assembly copy on the flush path (the
        # device slices views of this buffer from here down).
        parts = [data for _id, data in self._pending]
        payload_bytes = sum(len(part) for part in parts)
        summary = FragmentSummary(
            seq=self.next_fragment_seq, segment=segment,
            entries=tuple(block_id for block_id, _data in self._pending),
            payload_crc=payload_checksum_parts(parts))

        yield from self.device.write(
            (base + self._fragment_start) * BLOCK_SIZE,
            b"".join([summary.encode(), *parts]))

        entry = self.usage[segment]
        entry.last_seq = self.next_fragment_seq
        self.next_fragment_seq += 1
        self.fragments_flushed += 1
        self.bytes_flushed += payload_bytes + BLOCK_SIZE

        self._pending.clear()
        self._pending_index.clear()
        self._fragment_start = None
        # Retire the segment when it cannot host another fragment.
        if self.offset + 2 > self.segment_blocks:
            entry.state = SegmentState.DIRTY
            self.current_segment = None
            self.offset = 0
        return None
