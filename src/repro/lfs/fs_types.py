"""Small shared types between the FS core and recovery (avoids cycles)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LogHead:
    """Where appending resumes after recovery."""

    segment: int
    offset: int
    next_fragment_seq: int
