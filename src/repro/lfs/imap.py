"""The inode map: inode number -> disk address of the latest inode.

The imap is itself stored in the log (one address-array block per 512
inodes); the checkpoint records where its blocks currently live.  In
memory it is a flat array plus dirty-block tracking.

A freshly created inode that has never been flushed is marked with the
in-memory ``PENDING`` sentinel so its number cannot be re-allocated;
PENDING never reaches disk because every flush writes dirty inodes
(assigning real addresses) before imap blocks are encoded.
"""

from __future__ import annotations

import struct

from repro.errors import CorruptFileSystemError, FileSystemError
from repro.lfs.ondisk import BLOCK_SIZE, NULL_ADDR

ENTRIES_PER_BLOCK = BLOCK_SIZE // 8
PENDING = 0xFFFFFFFFFFFFFFFF


class InodeMap:
    """In-memory inode map with per-block dirty tracking."""

    def __init__(self, max_inodes: int):
        if max_inodes < 2:
            raise FileSystemError("need room for at least the root inode")
        # Round up to whole imap blocks.
        self.n_blocks = -(-max_inodes // ENTRIES_PER_BLOCK)
        self.max_inodes = self.n_blocks * ENTRIES_PER_BLOCK
        self._addrs = [NULL_ADDR] * self.max_inodes
        self.dirty_blocks: set[int] = set()
        self._next_free_hint = 1  # ino 0 is reserved

    # ------------------------------------------------------------------
    def get(self, ino: int) -> int:
        self._check(ino)
        return self._addrs[ino]

    def set(self, ino: int, addr: int) -> None:
        self._check(ino)
        self._addrs[ino] = addr
        self.dirty_blocks.add(ino // ENTRIES_PER_BLOCK)

    def is_allocated(self, ino: int) -> bool:
        self._check(ino)
        return self._addrs[ino] != NULL_ADDR

    def allocate(self) -> int:
        """Reserve a free inode number (marked PENDING until flushed)."""
        for offset in range(self.max_inodes - 1):
            ino = 1 + (self._next_free_hint - 1 + offset) % (self.max_inodes - 1)
            if self._addrs[ino] == NULL_ADDR:
                self.set(ino, PENDING)
                self._next_free_hint = ino + 1
                return ino
        raise FileSystemError("out of inodes")

    def free(self, ino: int) -> None:
        self._check(ino)
        if self._addrs[ino] == NULL_ADDR:
            raise FileSystemError(f"double free of inode {ino}")
        self.set(ino, NULL_ADDR)

    def _check(self, ino: int) -> None:
        if not 1 <= ino < self.max_inodes:
            raise FileSystemError(f"inode number {ino} out of range")

    # ------------------------------------------------------------------
    def encode_block(self, block_index: int) -> bytes:
        lo = block_index * ENTRIES_PER_BLOCK
        chunk = self._addrs[lo:lo + ENTRIES_PER_BLOCK]
        if PENDING in chunk:
            raise CorruptFileSystemError(
                "imap block contains an unflushed PENDING inode")
        return struct.pack(f"<{ENTRIES_PER_BLOCK}Q", *chunk)

    def load_block(self, block_index: int, data: bytes) -> None:
        if not 0 <= block_index < self.n_blocks:
            raise FileSystemError(f"imap block {block_index} out of range")
        chunk = struct.unpack(f"<{ENTRIES_PER_BLOCK}Q", data[:BLOCK_SIZE])
        lo = block_index * ENTRIES_PER_BLOCK
        self._addrs[lo:lo + ENTRIES_PER_BLOCK] = chunk

    def allocated_inodes(self) -> list[int]:
        return [ino for ino in range(1, self.max_inodes)
                if self._addrs[ino] != NULL_ADDR]
