"""The Log-Structured File System.

All file data and metadata are appended to the segmented log via the
:class:`~repro.lfs.segment.SegmentWriter`; fixed-location state is
limited to the superblock and the two checkpoint regions.  See the
package docstring for the overall design and
:mod:`repro.lfs.recovery` for mount/roll-forward.

The file system runs against any *device* exposing byte-addressed
``read(offset, nbytes)`` / ``write(offset, data)`` simulation
processes plus ``peek`` and ``capacity_bytes`` — in the full prototype
that device is a :class:`repro.raid.Raid5Controller` over the XBUS
disk paths, so segment flushes become the large sequential full-stripe
array writes that make LFS and RAID 5 such a good match (Section 3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.errors import (CorruptFileSystemError, DirectoryNotEmptyFsError,
                          FileExistsFsError, FileNotFoundFsError,
                          FileSystemError, IsADirectoryFsError,
                          NotADirectoryFsError)
from repro.hw.specs import LFS_SPEC, LfsSpec
from repro.lfs import directory as dirmod
from repro.lfs import recovery
from repro.lfs.imap import PENDING, InodeMap
from repro.lfs.ondisk import (ADDRS_PER_BLOCK, BLOCK_SIZE, N_DIRECT,
                              NULL_ADDR, BlockId, BlockKind, Checkpoint,
                              FileType, Inode, SegmentState, SegmentUsage,
                              Superblock, decode_pointer_block,
                              encode_pointer_block)
from repro.lfs.segment import SegmentWriter
from repro.sim import Simulator

#: Cache key for an inode's double-indirect root pointer block.
_DROOT = -1

#: Maximum file size in blocks: direct + single indirect + one double
#: indirect tree.
MAX_FILE_BLOCKS = N_DIRECT + ADDRS_PER_BLOCK + ADDRS_PER_BLOCK ** 2
_MAX_CHUNK = 1 + ADDRS_PER_BLOCK  # chunk 0 plus the droot's children

ROOT_INO = 1


@dataclass(frozen=True)
class FileAttributes:
    """Result of :meth:`LogStructuredFS.stat`."""

    ino: int
    ftype: FileType
    size: int
    mtime: float
    nlink: int


class LogStructuredFS:
    """Sprite-style LFS over a logical block device."""

    def __init__(self, sim: Simulator, device, spec: LfsSpec = LFS_SPEC,
                 max_inodes: int = 1024, host=None,
                 align_segments_to: Optional[int] = None, name: str = "lfs"):
        self.sim = sim
        self.device = device
        self.spec = spec
        self.host = host
        self.name = name
        self.requested_max_inodes = max_inodes
        #: Byte alignment for segment starts.  Aligning segments to the
        #: underlying array's stripe-row size turns full-segment
        #: flushes into full-stripe writes (no parity reads) — the
        #: LFS/RAID-5 synergy of Section 3.1.
        self.align_segments_to = align_segments_to
        #: Public operations are serialized — the file system runs on a
        #: single-CPU host, as Sprite did.
        self._oplock = None  # created lazily; needs self.sim

        self.sb: Optional[Superblock] = None
        self.imap: Optional[InodeMap] = None
        self.usage: list[SegmentUsage] = []
        self.writer: Optional[SegmentWriter] = None
        self.imap_addrs: list[int] = []
        self.checkpoint_seq = 0
        self.mounted = False

        # volatile caches
        self._inodes: dict[int, Inode] = {}
        self._dirty_inodes: set[int] = set()
        self._chunks: dict[tuple[int, int], list[int]] = {}
        self._dirty_chunks: set[tuple[int, int]] = set()
        #: Read-ahead buffers in XBUS memory: (ino, bidx) -> block
        #: payload, FIFO-evicted; invalidated whenever a block pointer
        #: changes (Section 3.2's prefetch buffers).
        self._readahead: dict[tuple[int, int], bytes] = {}
        self._next_expected: dict[int, int] = {}
        #: Decoded directory contents by inode — the metadata side of
        #: the host cache ("the host memory cache contains metadata",
        #: Section 3.2).  Kept write-through by the namespace ops.
        self._dir_cache: dict[int, dict] = {}

        # statistics
        self.reads_served = 0
        self.writes_served = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.segments_cleaned = 0
        self.readahead_hits = 0

    # ==================================================================
    # lifecycle
    # ==================================================================
    def format(self):
        """Process: initialize an empty volume and mount it."""
        if self.mounted:
            raise FileSystemError("already mounted")
        total_blocks = self.device.capacity_bytes // BLOCK_SIZE
        segment_blocks = self.spec.segment_bytes // BLOCK_SIZE
        imap = InodeMap(self.requested_max_inodes)
        nseg_upper = total_blocks // segment_blocks
        cp_blocks = _checkpoint_blocks_needed(imap.n_blocks, nseg_upper)
        first_segment_block = 1 + 2 * cp_blocks
        if self.align_segments_to is not None:
            align_blocks = -(-self.align_segments_to // BLOCK_SIZE)
            first_segment_block = -(-first_segment_block // align_blocks) \
                * align_blocks
        nsegments = (total_blocks - first_segment_block) // segment_blocks
        if nsegments < 2:
            raise FileSystemError(
                f"device too small: only {nsegments} segments fit")
        self.sb = Superblock(
            block_size=BLOCK_SIZE, segment_blocks=segment_blocks,
            nsegments=nsegments, first_segment_block=first_segment_block,
            checkpoint_blocks=cp_blocks, checkpoint_a=1,
            checkpoint_b=1 + cp_blocks, max_inodes=imap.max_inodes)
        yield from self.device.write(0, self.sb.encode())

        self.imap = imap
        self.imap_addrs = [NULL_ADDR] * imap.n_blocks
        self.usage = [SegmentUsage() for _ in range(nsegments)]
        self.writer = SegmentWriter(
            self.sim, self.device, first_segment_block, segment_blocks,
            self.usage)
        self.checkpoint_seq = 0
        self.mounted = True

        root_ino = self.imap.allocate()
        if root_ino != ROOT_INO:
            raise CorruptFileSystemError(
                f"expected root inode {ROOT_INO}, got {root_ino}")
        root = Inode(ROOT_INO, FileType.DIRECTORY, mtime=self.sim.now)
        self._inodes[ROOT_INO] = root
        self._dirty_inodes.add(ROOT_INO)
        yield from self._rewrite_whole_file(root, dirmod.encode_directory({}))
        yield from self._checkpoint_impl()
        return None

    def mount(self):
        """Process: load the volume, roll the log forward, rebuild usage."""
        if self.mounted:
            raise FileSystemError("already mounted")
        sb_block = yield from self.device.read(0, BLOCK_SIZE)
        self.sb = Superblock.decode(sb_block)
        checkpoint = yield from self._read_best_checkpoint()
        self.checkpoint_seq = checkpoint.seq

        self.imap = InodeMap(self.sb.max_inodes)
        self.imap_addrs = list(checkpoint.imap_addrs)
        for index, addr in enumerate(self.imap_addrs):
            if addr != NULL_ADDR:
                data = yield from self.device.read(addr * BLOCK_SIZE,
                                                   BLOCK_SIZE)
                self.imap.load_block(index, data)
        self.usage = [SegmentUsage(entry.state, entry.live_bytes,
                                   entry.last_seq)
                      for entry in checkpoint.usage]
        self.writer = SegmentWriter(
            self.sim, self.device, self.sb.first_segment_block,
            self.sb.segment_blocks, self.usage,
            next_fragment_seq=checkpoint.next_fragment_seq)
        self.mounted = True

        head = recovery.roll_forward(self, checkpoint)
        if head.segment < self.sb.nsegments:
            self.writer.resume_at(head.segment, head.offset)
        self.writer.next_fragment_seq = head.next_fragment_seq
        recovery.rebuild_usage(self)
        # Note: imap entries updated by roll-forward stay dirty so the
        # next checkpoint persists them.
        return None

    def _read_best_checkpoint(self):
        assert self.sb is not None
        candidates = []
        for base in (self.sb.checkpoint_a, self.sb.checkpoint_b):
            raw = yield from self.device.read(
                base * BLOCK_SIZE, self.sb.checkpoint_blocks * BLOCK_SIZE)
            try:
                candidates.append(Checkpoint.decode(raw))
            except CorruptFileSystemError:
                continue
        if not candidates:
            raise CorruptFileSystemError("no valid checkpoint region")
        return max(candidates, key=lambda cp: cp.seq)

    def crash(self) -> None:
        """Drop every volatile structure (simulates a power failure).

        Unflushed data is lost, exactly as on the real machine; remount
        with a fresh :class:`LogStructuredFS` over the same device.
        """
        self.mounted = False
        self._inodes.clear()
        self._dirty_inodes.clear()
        self._chunks.clear()
        self._dirty_chunks.clear()
        self._readahead.clear()
        self._next_expected.clear()
        self._dir_cache.clear()
        self.writer = None
        self.imap = None

    def unmount(self):
        """Process: checkpoint and detach cleanly."""
        yield from self._checkpoint_impl()
        self.crash()
        return None

    # ==================================================================
    # flushing and checkpointing
    # ==================================================================
    def _sync_impl(self):
        """Process: push all dirty metadata and the open fragment to disk."""
        self._require_mounted()
        yield from self._flush_metadata()
        yield from self.writer.flush()
        return None

    def _checkpoint_impl(self):
        """Process: sync, write the imap, and commit a checkpoint region."""
        self._require_mounted()
        yield from self._flush_metadata()
        for index in sorted(self.imap.dirty_blocks):
            addr = yield from self.writer.append(
                BlockId(BlockKind.IMAP, 0, index),
                self.imap.encode_block(index))
            self._move_live(self.imap_addrs[index], addr)
            self.imap_addrs[index] = addr
        self.imap.dirty_blocks.clear()
        yield from self.writer.flush()

        head_segment = self.writer.current_segment
        if head_segment is None:
            head_segment = self.sb.nsegments  # sentinel: allocate fresh
            head_offset = 0
        else:
            head_offset = self.writer.offset
        checkpoint = Checkpoint(
            seq=self.checkpoint_seq + 1,
            next_fragment_seq=self.writer.next_fragment_seq,
            head_segment=head_segment, head_offset=head_offset,
            imap_addrs=list(self.imap_addrs),
            usage=[SegmentUsage(u.state, u.live_bytes, u.last_seq)
                   for u in self.usage])
        region = (self.sb.checkpoint_a if checkpoint.seq % 2
                  else self.sb.checkpoint_b)
        yield from self.device.write(
            region * BLOCK_SIZE, checkpoint.encode(self.sb.checkpoint_blocks))
        self.checkpoint_seq = checkpoint.seq
        return None

    def _flush_metadata(self):
        """Process: log dirty pointer blocks (leaves, then double-indirect
        roots), then dirty inodes, updating the imap."""
        leaf_keys = sorted(key for key in self._dirty_chunks
                           if key[1] != _DROOT)
        for ino, chunk_index in leaf_keys:
            chunk = self._chunks[(ino, chunk_index)]
            addr = yield from self.writer.append(
                BlockId(BlockKind.INDIRECT, ino, chunk_index),
                encode_pointer_block(chunk))
            inode = yield from self._load_inode(ino)
            if chunk_index == 0:
                self._move_live(inode.indirect, addr)
                inode.indirect = addr
                self._dirty_inodes.add(ino)
            else:
                droot = yield from self._load_chunk(inode, _DROOT)
                self._move_live(droot[chunk_index - 1], addr)
                droot[chunk_index - 1] = addr
                self._dirty_chunks.add((ino, _DROOT))
            self._dirty_chunks.discard((ino, chunk_index))

        droot_keys = sorted(key for key in self._dirty_chunks
                            if key[1] == _DROOT)
        for ino, _key in droot_keys:
            droot = self._chunks[(ino, _DROOT)]
            addr = yield from self.writer.append(
                BlockId(BlockKind.DINDIRECT, ino, 0),
                encode_pointer_block(droot))
            inode = yield from self._load_inode(ino)
            self._move_live(inode.dindirect, addr)
            inode.dindirect = addr
            self._dirty_inodes.add(ino)
            self._dirty_chunks.discard((ino, _DROOT))

        for ino in sorted(self._dirty_inodes):
            inode = self._inodes[ino]
            addr = yield from self.writer.append(
                BlockId(BlockKind.INODE, ino, 0), inode.encode())
            old = self.imap.get(ino)
            self._move_live(old, addr)
            self.imap.set(ino, addr)
        self._dirty_inodes.clear()
        return None

    # ==================================================================
    # segment-usage accounting
    # ==================================================================
    def _segment_of(self, addr: int) -> int:
        assert self.sb is not None
        return (addr - self.sb.first_segment_block) // self.sb.segment_blocks

    def _mark_live(self, addr: int) -> None:
        if addr in (NULL_ADDR, PENDING):
            return
        self.usage[self._segment_of(addr)].live_bytes += BLOCK_SIZE

    def _mark_dead(self, addr: int) -> None:
        if addr in (NULL_ADDR, PENDING):
            return
        entry = self.usage[self._segment_of(addr)]
        entry.live_bytes -= BLOCK_SIZE
        if entry.live_bytes < 0:
            raise CorruptFileSystemError(
                "segment usage accounting went negative")

    def _move_live(self, old: int, new: int) -> None:
        if old == new:
            return
        self._mark_dead(old)
        self._mark_live(new)

    # ==================================================================
    # inode and pointer-block access
    # ==================================================================
    def _load_inode(self, ino: int):
        """Process: fetch an inode (cache, then log)."""
        cached = self._inodes.get(ino)
        if cached is not None:
            return cached
        addr = self.imap.get(ino)
        if addr == NULL_ADDR:
            raise FileNotFoundFsError(f"inode {ino} is not allocated")
        if addr == PENDING:
            raise CorruptFileSystemError(
                f"inode {ino} pending but missing from the cache")
        block = yield from self.device.read(addr * BLOCK_SIZE, BLOCK_SIZE)
        inode = Inode.decode(block)
        self._inodes[ino] = inode
        return inode

    def _load_chunk(self, inode: Inode, chunk_index: int):
        """Process: fetch a pointer block (chunk) for ``inode``."""
        key = (inode.ino, chunk_index)
        cached = self._chunks.get(key)
        if cached is not None:
            return cached
        if chunk_index == _DROOT:
            root = inode.dindirect
        elif chunk_index == 0:
            root = inode.indirect
        else:
            droot = yield from self._load_chunk(inode, _DROOT)
            root = droot[chunk_index - 1]
        if root == NULL_ADDR:
            chunk = [NULL_ADDR] * ADDRS_PER_BLOCK
        else:
            block = yield from self.device.read(root * BLOCK_SIZE, BLOCK_SIZE)
            chunk = decode_pointer_block(block)
        self._chunks[key] = chunk
        return chunk

    @staticmethod
    def _locate(bidx: int) -> tuple[int, int]:
        """Map a file block index to (chunk_index, slot).

        ``chunk_index == -2`` means a direct pointer (slot is the
        direct index).
        """
        if bidx < 0 or bidx >= MAX_FILE_BLOCKS:
            raise FileSystemError(f"file block index {bidx} out of range")
        if bidx < N_DIRECT:
            return -2, bidx
        rel = bidx - N_DIRECT
        return rel // ADDRS_PER_BLOCK, rel % ADDRS_PER_BLOCK

    def _get_addr(self, inode: Inode, bidx: int):
        """Process: current log address of file block ``bidx`` (or NULL)."""
        chunk_index, slot = self._locate(bidx)
        if chunk_index == -2:
            return inode.direct[slot]
        if chunk_index == 0 and inode.indirect == NULL_ADDR \
                and (inode.ino, 0) not in self._chunks:
            return NULL_ADDR
        if chunk_index > 0 and inode.dindirect == NULL_ADDR \
                and (inode.ino, _DROOT) not in self._chunks \
                and (inode.ino, chunk_index) not in self._chunks:
            return NULL_ADDR
        chunk = yield from self._load_chunk(inode, chunk_index)
        return chunk[slot]

    def _set_addr(self, inode: Inode, bidx: int, addr: int):
        """Process: point file block ``bidx`` at ``addr``."""
        chunk_index, slot = self._locate(bidx)
        if chunk_index == -2:
            self._move_live(inode.direct[slot], addr)
            inode.direct[slot] = addr
            self._dirty_inodes.add(inode.ino)
            self._readahead.pop((inode.ino, bidx), None)
            return None
        chunk = yield from self._load_chunk(inode, chunk_index)
        self._move_live(chunk[slot], addr)
        chunk[slot] = addr
        self._dirty_chunks.add((inode.ino, chunk_index))
        self._readahead.pop((inode.ino, bidx), None)
        return None

    # ==================================================================
    # data path
    # ==================================================================
    def _read_block(self, inode: Inode, bidx: int):
        """Process: fetch one whole file block (zeros if unwritten).

        The pointer is resolved first: a NULL pointer means the block
        does not exist *now*, even if a stale buffered payload for the
        same identity lingers in the segment buffer (e.g. written, then
        truncated away before any flush).
        """
        addr = yield from self._get_addr(inode, bidx)
        if addr == NULL_ADDR:
            return bytes(BLOCK_SIZE)
        pending = self.writer.pending_payload(
            BlockId(BlockKind.DATA, inode.ino, bidx))
        if pending is not None:
            return pending
        data = yield from self.device.read(addr * BLOCK_SIZE, BLOCK_SIZE)
        return data

    def _write_inode_data(self, inode: Inode, offset: int, data: bytes):
        """Process: append ``data`` at ``offset`` of ``inode``'s file."""
        if offset < 0:
            raise FileSystemError(f"negative offset {offset}")
        end = offset + len(data)
        first = offset // BLOCK_SIZE
        last = (end - 1) // BLOCK_SIZE if data else first - 1
        view = memoryview(data)
        for bidx in range(first, last + 1):
            block_start = bidx * BLOCK_SIZE
            lo = max(offset, block_start)
            hi = min(end, block_start + BLOCK_SIZE)
            piece: Union[memoryview, bytearray] = view[lo - offset:hi - offset]
            if hi - lo < BLOCK_SIZE:
                old = yield from self._read_block(inode, bidx)
                merged = bytearray(old)
                merged[lo - block_start:hi - block_start] = piece
                piece = merged
            addr = yield from self.writer.append(
                BlockId(BlockKind.DATA, inode.ino, bidx), piece)
            yield from self._set_addr(inode, bidx, addr)
        inode.size = max(inode.size, end)
        inode.mtime = self.sim.now
        self._dirty_inodes.add(inode.ino)
        self.bytes_written += len(data)
        return None

    def _read_inode_data(self, inode: Inode, offset: int, nbytes: int):
        """Process: read up to ``nbytes`` at ``offset`` (clamped to EOF).

        Sequential access triggers read-ahead: up to
        ``spec.readahead_blocks`` extra blocks are fetched in the same
        (coalesced) device operations and parked in the XBUS prefetch
        buffers, so the next small sequential read is served from
        memory.
        """
        if offset < 0 or nbytes < 0:
            raise FileSystemError("negative offset or length")
        if offset >= inode.size or nbytes == 0:
            return b""
        nbytes = min(nbytes, inode.size - offset)
        first = offset // BLOCK_SIZE
        last = (offset + nbytes - 1) // BLOCK_SIZE

        fetch_last = last
        readahead = self.spec.readahead_blocks
        sequential = self._next_expected.get(inode.ino) == first
        covered = all((inode.ino, bidx) in self._readahead
                      for bidx in range(first, last + 1))
        if readahead and sequential and not covered:
            # Fetch a whole window ahead, but only when the prefetch
            # buffers ran dry — otherwise every request would pay a
            # device round trip for the marginal blocks.
            max_block = (inode.size - 1) // BLOCK_SIZE
            fetch_last = min(last + readahead, max_block)
        self._next_expected[inode.ino] = last + 1

        # Resolve every block: segment-buffer payloads and read-ahead
        # hits come from memory; on-disk blocks are coalesced into
        # extents so sequential files become a few large array reads.
        resolved: list[tuple[int, Optional[bytes]]] = []
        for bidx in range(first, fetch_last + 1):
            addr = yield from self._get_addr(inode, bidx)
            if addr == NULL_ADDR:
                resolved.append((NULL_ADDR, None))
                continue
            pending = self.writer.pending_payload(
                BlockId(BlockKind.DATA, inode.ino, bidx))
            if pending is not None:
                resolved.append((NULL_ADDR, pending))
                continue
            buffered = self._readahead.get((inode.ino, bidx))
            if buffered is not None:
                self.readahead_hits += 1
                resolved.append((NULL_ADDR, buffered))
                continue
            resolved.append((addr, None))

        extents: list[tuple[int, int, int]] = []  # (slot, addr, nblocks)
        for slot, (addr, payload) in enumerate(resolved):
            if payload is not None or addr == NULL_ADDR:
                continue
            if (extents
                    and extents[-1][1] + extents[-1][2] == addr
                    and extents[-1][0] + extents[-1][2] == slot):
                start_slot, start_addr, count = extents[-1]
                extents[-1] = (start_slot, start_addr, count + 1)
            else:
                extents.append((slot, addr, 1))

        procs = [self.sim.process(self.device.read(
            addr * BLOCK_SIZE, count * BLOCK_SIZE))
            for _slot, addr, count in extents]
        extent_data = yield self.sim.all_of(procs)

        assembled = bytearray((fetch_last - first + 1) * BLOCK_SIZE)
        for slot, (addr, payload) in enumerate(resolved):
            if payload is not None:
                assembled[slot * BLOCK_SIZE:(slot + 1) * BLOCK_SIZE] = payload
        for (slot, _addr, count), data in zip(extents, extent_data):
            assembled[slot * BLOCK_SIZE:(slot + count) * BLOCK_SIZE] = data

        # Park the blocks beyond the request in the prefetch buffers.
        # memoryview slices keep each copy single (bytes-of-slice on a
        # bytearray would slice-copy first and bytes-copy second).
        whole = memoryview(assembled)
        for bidx in range(last + 1, fetch_last + 1):
            at = (bidx - first) * BLOCK_SIZE
            self._stash_readahead(
                inode.ino, bidx,
                bytes(whole[at:at + BLOCK_SIZE]))  # lint: disable=SIM004

        start = offset - first * BLOCK_SIZE
        self.bytes_read += nbytes
        # The caller owns the result: one copy out of the assembly
        # buffer is the API boundary.
        return bytes(whole[start:start + nbytes])  # lint: disable=SIM004

    def _stash_readahead(self, ino: int, bidx: int, payload: bytes) -> None:
        cap = max(2 * self.spec.readahead_blocks, 8)
        self._readahead[(ino, bidx)] = payload
        while len(self._readahead) > cap:
            oldest = next(iter(self._readahead))
            del self._readahead[oldest]

    # ==================================================================
    # public data API
    # ==================================================================
    def _write_impl(self, path: str, offset: int, data: bytes):
        """Process: write ``data`` at ``offset`` of the file at ``path``."""
        self._require_mounted()
        yield from self._charge(self.spec.small_write_overhead_s)
        inode = yield from self._resolve_file(path)
        yield from self._write_inode_data(inode, offset, data)
        self.writes_served += 1
        return None

    def _read_impl(self, path: str, offset: int, nbytes: int):
        """Process: read up to ``nbytes`` at ``offset``; returns bytes."""
        self._require_mounted()
        yield from self._charge(self.spec.fs_overhead_s)
        inode = yield from self._resolve_file(path)
        data = yield from self._read_inode_data(inode, offset, nbytes)
        self.reads_served += 1
        return data

    def _truncate_impl(self, path: str, new_size: int = 0):
        """Process: shrink (or zero-extend) the file at ``path``."""
        self._require_mounted()
        inode = yield from self._resolve_file(path)
        yield from self._truncate_inode(inode, new_size)
        return None

    def _truncate_inode(self, inode: Inode, new_size: int):
        if new_size < 0:
            raise FileSystemError(f"negative size {new_size}")
        if new_size < inode.size:
            first_dead = -(-new_size // BLOCK_SIZE)
            last = (inode.size - 1) // BLOCK_SIZE
            for bidx in range(first_dead, last + 1):
                addr = yield from self._get_addr(inode, bidx)
                if addr != NULL_ADDR:
                    yield from self._set_addr(inode, bidx, NULL_ADDR)
            # Zero the tail of the (kept) final partial block, so that a
            # later size-extending write cannot resurrect stale bytes
            # from beyond the truncated EOF.
            cut = new_size % BLOCK_SIZE
            if cut:
                bidx = new_size // BLOCK_SIZE
                addr = yield from self._get_addr(inode, bidx)
                if addr != NULL_ADDR:
                    old = yield from self._read_block(inode, bidx)
                    # ``old`` may be a pending memoryview payload, which
                    # does not support ``+`` — copy the kept prefix.
                    cleared = (bytes(old[:cut])  # lint: disable=SIM004
                               + bytes(BLOCK_SIZE - cut))
                    new_addr = yield from self.writer.append(
                        BlockId(BlockKind.DATA, inode.ino, bidx), cleared)
                    yield from self._set_addr(inode, bidx, new_addr)
        inode.size = new_size
        inode.mtime = self.sim.now
        self._dirty_inodes.add(inode.ino)
        return None

    def _rewrite_whole_file(self, inode: Inode, payload: bytes):
        """Process: replace a file's entire contents (used for dirs)."""
        yield from self._write_inode_data(inode, 0, payload)
        if inode.size > len(payload):
            yield from self._truncate_inode(inode, len(payload))
        inode.size = len(payload)
        return None

    # ==================================================================
    # namespace
    # ==================================================================
    def _resolve_file(self, path: str):
        ino, ftype = yield from self._lookup(path)
        if ftype != FileType.REGULAR:
            raise IsADirectoryFsError(f"{path} is a directory")
        inode = yield from self._load_inode(ino)
        return inode

    def _lookup(self, path: str):
        """Process: resolve a path to (ino, ftype)."""
        components = dirmod.split_path(path)
        ino, ftype = ROOT_INO, FileType.DIRECTORY
        for component in components:
            if ftype != FileType.DIRECTORY:
                raise NotADirectoryFsError(
                    f"{component!r} reached through a non-directory")
            entries = yield from self._read_dir(ino)
            if component not in entries:
                raise FileNotFoundFsError(path)
            ino, ftype = entries[component]
        return ino, ftype

    def _read_dir(self, ino: int):
        cached = self._dir_cache.get(ino)
        if cached is not None:
            return dict(cached)
        inode = yield from self._load_inode(ino)
        if inode.ftype != FileType.DIRECTORY:
            raise NotADirectoryFsError(f"inode {ino} is not a directory")
        payload = yield from self._read_inode_data(inode, 0, inode.size)
        entries = dirmod.decode_directory(payload)
        self._dir_cache[ino] = dict(entries)
        return entries

    def _write_dir(self, dir_inode: Inode, entries):
        """Process: persist a directory and keep the cache coherent."""
        yield from self._rewrite_whole_file(
            dir_inode, dirmod.encode_directory(entries))
        self._dir_cache[dir_inode.ino] = dict(entries)
        return None

    def _parent_of(self, path: str):
        components = dirmod.split_path(path)
        if not components:
            raise FileSystemError("the root directory has no parent")
        parent_path = "/" + "/".join(components[:-1])
        ino, ftype = yield from self._lookup(parent_path)
        if ftype != FileType.DIRECTORY:
            raise NotADirectoryFsError(parent_path)
        return ino, components[-1]

    def _create_node(self, path: str, ftype: FileType):
        yield from self._charge(self.spec.fs_overhead_s)
        parent_ino, name = yield from self._parent_of(path)
        entries = yield from self._read_dir(parent_ino)
        if name in entries:
            raise FileExistsFsError(path)
        ino = self.imap.allocate()
        inode = Inode(ino, ftype, mtime=self.sim.now)
        self._inodes[ino] = inode
        self._dirty_inodes.add(ino)
        if ftype == FileType.DIRECTORY:
            yield from self._write_dir(inode, {})
        entries[name] = (ino, ftype)
        parent = yield from self._load_inode(parent_ino)
        yield from self._write_dir(parent, entries)
        return ino

    def _create_impl(self, path: str):
        """Process: create an empty regular file; returns its inode no."""
        self._require_mounted()
        ino = yield from self._create_node(path, FileType.REGULAR)
        return ino

    def _mkdir_impl(self, path: str):
        """Process: create an empty directory; returns its inode no."""
        self._require_mounted()
        ino = yield from self._create_node(path, FileType.DIRECTORY)
        return ino

    def _readdir_impl(self, path: str):
        """Process: list a directory; returns {name: (ino, ftype)}."""
        self._require_mounted()
        yield from self._charge(self.spec.fs_overhead_s)
        ino, ftype = yield from self._lookup(path)
        if ftype != FileType.DIRECTORY:
            raise NotADirectoryFsError(path)
        entries = yield from self._read_dir(ino)
        return entries

    def _stat_impl(self, path: str):
        """Process: file attributes for ``path``."""
        self._require_mounted()
        ino, _ftype = yield from self._lookup(path)
        inode = yield from self._load_inode(ino)
        return FileAttributes(inode.ino, inode.ftype, inode.size,
                              inode.mtime, inode.nlink)

    def _exists_impl(self, path: str):
        """Process: True if ``path`` resolves."""
        self._require_mounted()
        try:
            yield from self._lookup(path)
            return True
        except FileNotFoundFsError:
            return False

    def _unlink_impl(self, path: str):
        """Process: remove a regular file and free its blocks."""
        self._require_mounted()
        yield from self._charge(self.spec.fs_overhead_s)
        yield from self._remove(path, expect=FileType.REGULAR)
        return None

    def _rmdir_impl(self, path: str):
        """Process: remove an empty directory."""
        self._require_mounted()
        yield from self._charge(self.spec.fs_overhead_s)
        ino, ftype = yield from self._lookup(path)
        if ftype != FileType.DIRECTORY:
            raise NotADirectoryFsError(path)
        entries = yield from self._read_dir(ino)
        if entries:
            raise DirectoryNotEmptyFsError(path)
        yield from self._remove(path, expect=FileType.DIRECTORY)
        return None

    def _rename_impl(self, old_path: str, new_path: str):
        """Process: move a file or directory to a new name/parent.

        Overwrites an existing regular file at the destination (the
        POSIX contract); refuses to replace directories or to move a
        directory into itself.
        """
        yield from self._charge(self.spec.fs_overhead_s)
        old_parent_ino, old_name = yield from self._parent_of(old_path)
        old_entries = yield from self._read_dir(old_parent_ino)
        if old_name not in old_entries:
            raise FileNotFoundFsError(old_path)
        ino, ftype = old_entries[old_name]

        if ftype == FileType.DIRECTORY:
            old_components = dirmod.split_path(old_path)
            new_components = dirmod.split_path(new_path)
            if new_components[:len(old_components)] == old_components:
                raise FileSystemError(
                    f"cannot move {old_path} inside itself")

        new_parent_ino, new_name = yield from self._parent_of(new_path)
        new_entries = yield from self._read_dir(new_parent_ino)
        replaced = new_entries.get(new_name)
        if replaced is not None:
            replaced_ino, replaced_type = replaced
            if replaced_ino == ino:
                return None  # renaming onto itself
            if replaced_type == FileType.DIRECTORY or \
                    ftype == FileType.DIRECTORY:
                raise FileExistsFsError(new_path)
            yield from self._remove(new_path, expect=FileType.REGULAR)
            new_entries = yield from self._read_dir(new_parent_ino)

        if new_parent_ino == old_parent_ino:
            entries = yield from self._read_dir(old_parent_ino)
            del entries[old_name]
            entries[new_name] = (ino, ftype)
            parent = yield from self._load_inode(old_parent_ino)
            yield from self._write_dir(parent, entries)
        else:
            new_entries[new_name] = (ino, ftype)
            new_parent = yield from self._load_inode(new_parent_ino)
            yield from self._write_dir(new_parent, new_entries)
            old_entries = yield from self._read_dir(old_parent_ino)
            del old_entries[old_name]
            old_parent = yield from self._load_inode(old_parent_ino)
            yield from self._write_dir(old_parent, old_entries)
        return None

    def _remove(self, path: str, expect: FileType):
        parent_ino, name = yield from self._parent_of(path)
        entries = yield from self._read_dir(parent_ino)
        if name not in entries:
            raise FileNotFoundFsError(path)
        ino, ftype = entries[name]
        if ftype != expect:
            if expect == FileType.REGULAR:
                raise IsADirectoryFsError(path)
            raise NotADirectoryFsError(path)
        inode = yield from self._load_inode(ino)
        yield from self._truncate_inode(inode, 0)
        # Drop the pointer-block live claims (single indirect, the
        # double-indirect root, and all its children) and the inode.
        if inode.dindirect != NULL_ADDR or (ino, _DROOT) in self._chunks:
            droot = yield from self._load_chunk(inode, _DROOT)
            for child in droot:
                self._move_live(child, NULL_ADDR)
        for key in [k for k in self._chunks if k[0] == ino]:
            del self._chunks[key]
            self._dirty_chunks.discard(key)
        for key in [k for k in self._readahead if k[0] == ino]:
            del self._readahead[key]
        self._next_expected.pop(ino, None)
        self._dir_cache.pop(ino, None)
        self._move_live(inode.indirect, NULL_ADDR)
        self._move_live(inode.dindirect, NULL_ADDR)
        old = self.imap.get(ino)
        if old not in (NULL_ADDR, PENDING):
            self._mark_dead(old)
        self.imap.free(ino)
        self._inodes.pop(ino, None)
        self._dirty_inodes.discard(ino)
        del entries[name]
        parent = yield from self._load_inode(parent_ino)
        yield from self._write_dir(parent, entries)
        return None

    # ==================================================================
    # public API: every operation runs under the op lock, serializing
    # file-system work the way the single-CPU Sprite host did.
    # ==================================================================
    def _locked(self, operation, op: str = "op", nbytes: int = 0):
        """Process: run ``operation`` (a generator) under the op lock.

        ``op`` names the public operation in the trace ("lfs.read",
        "lfs.sync"...); the span covers lock wait plus service time,
        matching what a caller of the public API experiences.
        """
        if self._oplock is None:
            self._oplock = _make_oplock(self.sim, self.name)
        with self.sim.tracer.span(f"lfs.{op}", self.name, nbytes=nbytes):
            yield self._oplock.acquire()
            try:
                result = yield from operation
                return result
            finally:
                self._oplock.release()

    def read(self, path: str, offset: int, nbytes: int):
        """Process: read up to ``nbytes`` at ``offset``; returns bytes."""
        result = yield from self._locked(
            self._read_impl(path, offset, nbytes), "read", nbytes)
        return result

    def write(self, path: str, offset: int, data: bytes):
        """Process: write ``data`` at ``offset`` of the file at ``path``."""
        result = yield from self._locked(
            self._write_impl(path, offset, data), "write", len(data))
        return result

    def truncate(self, path: str, new_size: int = 0):
        """Process: shrink (or zero-extend) the file at ``path``."""
        result = yield from self._locked(
            self._truncate_impl(path, new_size), "truncate")
        return result

    def create(self, path: str):
        """Process: create an empty regular file; returns its inode no."""
        result = yield from self._locked(self._create_impl(path), "create")
        return result

    def mkdir(self, path: str):
        """Process: create an empty directory; returns its inode no."""
        result = yield from self._locked(self._mkdir_impl(path), "mkdir")
        return result

    def readdir(self, path: str):
        """Process: list a directory; returns {name: (ino, ftype)}."""
        result = yield from self._locked(self._readdir_impl(path), "readdir")
        return result

    def stat(self, path: str):
        """Process: file attributes for ``path``."""
        result = yield from self._locked(self._stat_impl(path), "stat")
        return result

    def exists(self, path: str):
        """Process: True if ``path`` resolves."""
        result = yield from self._locked(self._exists_impl(path), "exists")
        return result

    def unlink(self, path: str):
        """Process: remove a regular file and free its blocks."""
        result = yield from self._locked(self._unlink_impl(path), "unlink")
        return result

    def rmdir(self, path: str):
        """Process: remove an empty directory."""
        result = yield from self._locked(self._rmdir_impl(path), "rmdir")
        return result

    def rename(self, old_path: str, new_path: str):
        """Process: move a file or directory (replaces a plain file)."""
        result = yield from self._locked(
            self._rename_impl(old_path, new_path), "rename")
        return result

    def sync(self):
        """Process: push dirty metadata and the open fragment to disk."""
        result = yield from self._locked(self._sync_impl(), "sync")
        return result

    def checkpoint(self):
        """Process: sync, write the imap, commit a checkpoint region."""
        result = yield from self._locked(self._checkpoint_impl(),
                                         "checkpoint")
        return result

    # ==================================================================
    # cleaning
    # ==================================================================
    def clean(self, max_segments: int = 1, policy=None):
        """Process: run the segment cleaner; returns reclaimed segments."""
        from repro.lfs import cleaner as cleaner_mod

        if policy is None:
            policy = cleaner_mod.CleanerPolicy.COST_BENEFIT
        victims = yield from cleaner_mod.clean(self, max_segments, policy)
        return victims

    # ==================================================================
    # utilities
    # ==================================================================
    def _charge(self, seconds: float):
        """Process: charge per-request software overhead (host CPU)."""
        if self.host is not None:
            yield from self.host.cpu_work(seconds)
        elif seconds > 0:
            yield self.sim.timeout(seconds)
        return None

    def _require_mounted(self) -> None:
        if not self.mounted:
            raise FileSystemError("file system is not mounted")

    def free_segments(self) -> int:
        return sum(1 for entry in self.usage
                   if entry.state == SegmentState.CLEAN)

    def statfs(self) -> dict:
        """Instant summary of log occupancy."""
        return {
            "segments": len(self.usage),
            "clean_segments": self.free_segments(),
            "live_bytes": sum(entry.live_bytes for entry in self.usage),
            "segments_cleaned": self.segments_cleaned,
            "fragments_flushed": (self.writer.fragments_flushed
                                  if self.writer else 0),
        }

    def iter_allocated_inodes(self) -> Iterator[int]:
        assert self.imap is not None
        return iter(self.imap.allocated_inodes())


def _make_oplock(sim: Simulator, name: str):
    from repro.sim import Resource

    return Resource(sim, capacity=1, name=f"{name}.oplock")


def _checkpoint_blocks_needed(n_imap_blocks: int, nsegments: int) -> int:
    """Blocks one checkpoint region needs for the given geometry."""
    header = 56
    size = header + 8 * n_imap_blocks + 17 * nsegments + 4
    return max(1, math.ceil(size / BLOCK_SIZE))
