"""Directory content serialization.

A directory is a regular log file whose payload is the serialized
entry table below.  Directories are small, so the file system reads
and rewrites them whole on every namespace change.
"""

from __future__ import annotations

import struct

from repro.errors import CorruptFileSystemError, FileSystemError
from repro.lfs.ondisk import FileType

_HEADER_FMT = "<IQ"
_DIR_MAGIC = 0x44495245  # "DIRE"
MAX_NAME_BYTES = 255


def validate_name(name: str) -> bytes:
    """Check a single path component and return its UTF-8 bytes."""
    if not name or name in (".", ".."):
        raise FileSystemError(f"invalid file name {name!r}")
    if "/" in name or "\x00" in name:
        raise FileSystemError(f"invalid character in file name {name!r}")
    encoded = name.encode("utf-8")
    if len(encoded) > MAX_NAME_BYTES:
        raise FileSystemError(f"file name too long ({len(encoded)} bytes)")
    return encoded


def encode_directory(entries: dict[str, tuple[int, FileType]]) -> bytes:
    """Serialize ``{name: (ino, ftype)}``."""
    out = [struct.pack(_HEADER_FMT, _DIR_MAGIC, len(entries))]
    for name in sorted(entries):
        ino, ftype = entries[name]
        encoded = validate_name(name)
        out.append(struct.pack("<IBH", ino, int(ftype), len(encoded)))
        out.append(encoded)
    return b"".join(out)


def decode_directory(data: bytes) -> dict[str, tuple[int, FileType]]:
    """Parse a directory payload back into its entry table."""
    header_size = struct.calcsize(_HEADER_FMT)
    if len(data) < header_size:
        raise CorruptFileSystemError("directory payload too small")
    magic, count = struct.unpack(_HEADER_FMT, data[:header_size])
    if magic != _DIR_MAGIC:
        raise CorruptFileSystemError("bad directory magic")
    entries: dict[str, tuple[int, FileType]] = {}
    at = header_size
    entry_size = struct.calcsize("<IBH")
    for _ in range(count):
        if at + entry_size > len(data):
            raise CorruptFileSystemError("truncated directory entry")
        ino, ftype, name_len = struct.unpack("<IBH",
                                             data[at:at + entry_size])
        at += entry_size
        if at + name_len > len(data):
            raise CorruptFileSystemError("truncated directory name")
        name = data[at:at + name_len].decode("utf-8")
        at += name_len
        entries[name] = (ino, FileType(ftype))
    return entries


def split_path(path: str) -> list[str]:
    """Split an absolute path into components, validating each."""
    if not path.startswith("/"):
        raise FileSystemError(f"path must be absolute: {path!r}")
    components = [part for part in path.split("/") if part]
    for part in components:
        validate_name(part)
    return components
