"""A Log-Structured File System in the style of Sprite LFS.

This is a real, byte-accurate reimplementation of the file system
RAID-II ran (Rosenblum & Ousterhout's Sprite LFS, adapted per
Section 3 of the RAID-II paper): all file data and metadata are
appended to a segmented log, small writes are buffered and written as
large sequential segment I/Os, recovery rolls the log forward from the
last checkpoint, and a segment cleaner reclaims dead space.

The paper's prototype lacked the cleaner ("LFS cleaning ... has not
yet been implemented"); we implement it, with both greedy and
cost-benefit victim selection, as the paper's stated missing piece.

Layout parameters follow Section 3.4: 64 KB stripe units and 960 KB
segments; the block size is 4 KB.
"""

from repro.lfs.cleaner import CleanerPolicy
from repro.lfs.fs import FileAttributes, LogStructuredFS
from repro.lfs.ondisk import FileType

__all__ = ["CleanerPolicy", "FileAttributes", "FileType", "LogStructuredFS"]
