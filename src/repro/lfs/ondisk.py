"""On-disk structures of the LFS volume.

Everything the file system persists is defined and serialized here:

* the **superblock** (static geometry, written once by ``format``),
* **checkpoint regions** (two, written alternately; each holds the
  inode-map block addresses, the segment usage table and the log
  position, committed by a checksum),
* **fragment summaries** (the per-flush commit records inside
  segments: one entry per payload block giving its identity),
* **inodes** (one per 4 KB block for simplicity).

All addresses are in file-system blocks (4 KB); address 0 is the
superblock and doubles as the null address.

Every structure carries a magic number and a CRC32 checksum so that
mount and roll-forward can reject garbage (torn writes, never-written
regions) instead of misinterpreting it.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import CorruptFileSystemError

BLOCK_SIZE = 4096
NULL_ADDR = 0

SUPERBLOCK_MAGIC = 0x4C465321  # "LFS!"
CHECKPOINT_MAGIC = 0x43504E54  # "CPNT"
SUMMARY_MAGIC = 0x53554D4D     # "SUMM"
INODE_MAGIC = 0x494E4F44       # "INOD"

N_DIRECT = 16
ADDRS_PER_BLOCK = BLOCK_SIZE // 8  # 512 block addresses per pointer block


class FileType(enum.IntEnum):
    """Kind of object an inode describes."""

    REGULAR = 1
    DIRECTORY = 2


class BlockKind(enum.IntEnum):
    """Identity classes of logged blocks (used by summaries/cleaner)."""

    DATA = 1       # file data block: (inode, file block index)
    INDIRECT = 2   # single-indirect pointer block: (inode, chunk index)
    DINDIRECT = 3  # double-indirect root block: (inode, 0)
    INODE = 4      # inode block: (inode, 0)
    IMAP = 5       # inode-map block: (0, imap block index)


def _checksum(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def _pad_block(payload: bytes) -> bytes:
    if len(payload) > BLOCK_SIZE:
        raise CorruptFileSystemError(
            f"structure of {len(payload)} bytes exceeds the block size")
    return payload + bytes(BLOCK_SIZE - len(payload))


# ---------------------------------------------------------------------------
# superblock
# ---------------------------------------------------------------------------

_SUPERBLOCK_FMT = "<IIQQQQQQQI"


@dataclass(frozen=True)
class Superblock:
    """Static volume geometry."""

    block_size: int
    segment_blocks: int
    nsegments: int
    first_segment_block: int
    checkpoint_blocks: int   # size of ONE checkpoint region, in blocks
    checkpoint_a: int        # block address of region A
    checkpoint_b: int        # block address of region B
    max_inodes: int

    def encode(self) -> bytes:
        body = struct.pack(
            _SUPERBLOCK_FMT[:-1], SUPERBLOCK_MAGIC, 0, self.block_size,
            self.segment_blocks, self.nsegments, self.first_segment_block,
            self.checkpoint_blocks, self.checkpoint_a, self.checkpoint_b,
        ) + struct.pack("<Q", self.max_inodes)
        return _pad_block(body + struct.pack("<I", _checksum(body)))

    @classmethod
    def decode(cls, block: bytes) -> "Superblock":
        head = struct.calcsize(_SUPERBLOCK_FMT[:-1]) + 8
        body, stored = block[:head], block[head:head + 4]
        if struct.unpack("<I", stored)[0] != _checksum(body):
            raise CorruptFileSystemError("superblock checksum mismatch")
        fields = struct.unpack(_SUPERBLOCK_FMT[:-1], body[:-8])
        (magic, _reserved, block_size, segment_blocks, nsegments,
         first_segment_block, checkpoint_blocks, checkpoint_a,
         checkpoint_b) = fields
        max_inodes = struct.unpack("<Q", body[-8:])[0]
        if magic != SUPERBLOCK_MAGIC:
            raise CorruptFileSystemError("bad superblock magic")
        if block_size != BLOCK_SIZE:
            raise CorruptFileSystemError(
                f"unsupported block size {block_size}")
        return cls(block_size, segment_blocks, nsegments,
                   first_segment_block, checkpoint_blocks, checkpoint_a,
                   checkpoint_b, max_inodes)


# ---------------------------------------------------------------------------
# segment usage table entries / checkpoint
# ---------------------------------------------------------------------------

class SegmentState(enum.IntEnum):
    CLEAN = 0
    DIRTY = 1
    CURRENT = 2


@dataclass
class SegmentUsage:
    """One segment's usage record."""

    state: SegmentState = SegmentState.CLEAN
    live_bytes: int = 0
    #: Sequence number of the last fragment written to the segment;
    #: the cleaner's cost-benefit policy uses it as an age proxy.
    last_seq: int = 0


@dataclass
class Checkpoint:
    """A consistent cut of the file system's volatile maps."""

    seq: int
    next_fragment_seq: int
    #: Current head of the log: segment index and next free block
    #: within it (so roll-forward knows where writing would resume).
    head_segment: int
    head_offset: int
    imap_addrs: list[int] = field(default_factory=list)
    usage: list[SegmentUsage] = field(default_factory=list)

    def encode(self, region_blocks: int) -> bytes:
        body = struct.pack(
            "<IIQQQQQQ", CHECKPOINT_MAGIC, 0, self.seq,
            self.next_fragment_seq, self.head_segment, self.head_offset,
            len(self.imap_addrs), len(self.usage))
        body += struct.pack(f"<{len(self.imap_addrs)}Q", *self.imap_addrs)
        for entry in self.usage:
            body += struct.pack("<BQQ", int(entry.state), entry.live_bytes,
                                entry.last_seq)
        payload = body + struct.pack("<I", _checksum(body))
        capacity = region_blocks * BLOCK_SIZE
        if len(payload) > capacity:
            raise CorruptFileSystemError(
                f"checkpoint of {len(payload)} bytes exceeds its "
                f"{capacity}-byte region")
        return payload + bytes(capacity - len(payload))

    @classmethod
    def decode(cls, data: bytes) -> "Checkpoint":
        header_size = struct.calcsize("<IIQQQQQQ")
        if len(data) < header_size + 4:
            raise CorruptFileSystemError("checkpoint region too small")
        (magic, _reserved, seq, next_fragment_seq, head_segment, head_offset,
         n_imap, n_usage) = struct.unpack("<IIQQQQQQ", data[:header_size])
        if magic != CHECKPOINT_MAGIC:
            raise CorruptFileSystemError("bad checkpoint magic")
        body_size = (header_size + 8 * n_imap
                     + struct.calcsize("<BQQ") * n_usage)
        body = data[:body_size]
        stored = struct.unpack("<I", data[body_size:body_size + 4])[0]
        if stored != _checksum(body):
            raise CorruptFileSystemError("checkpoint checksum mismatch")
        at = header_size
        imap_addrs = list(struct.unpack(f"<{n_imap}Q",
                                        body[at:at + 8 * n_imap]))
        at += 8 * n_imap
        usage = []
        entry_size = struct.calcsize("<BQQ")
        for _ in range(n_usage):
            state, live, last_seq = struct.unpack(
                "<BQQ", body[at:at + entry_size])
            usage.append(SegmentUsage(SegmentState(state), live, last_seq))
            at += entry_size
        return cls(seq, next_fragment_seq, head_segment, head_offset,
                   imap_addrs, usage)


# ---------------------------------------------------------------------------
# fragment summaries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlockId:
    """Identity of one logged block."""

    kind: BlockKind
    ino: int
    index: int


_SUMMARY_HEADER_FMT = "<IIQQQI"
_SUMMARY_ENTRY_FMT = "<BxxxIQ"

#: How many payload blocks one 4 KB summary block can describe.
MAX_FRAGMENT_PAYLOAD = (BLOCK_SIZE - struct.calcsize(_SUMMARY_HEADER_FMT) - 4) \
    // struct.calcsize(_SUMMARY_ENTRY_FMT)


def payload_checksum(payload: bytes) -> int:
    """Checksum covering a fragment's payload blocks."""
    return _checksum(payload)


def payload_checksum_parts(parts) -> int:
    """Checksum of concatenated ``parts`` without materializing the join.

    crc32 chains, so this equals ``payload_checksum(b"".join(parts))``;
    the segment writer uses it to checksum pending block views in place.
    """
    crc = 0
    for part in parts:
        crc = zlib.crc32(part, crc)
    return crc & 0xFFFFFFFF


@dataclass(frozen=True)
class FragmentSummary:
    """The commit record of one log flush (fragment).

    The summary occupies the fragment's *first* block and the payload
    follows, all written as one large sequential device write — on the
    RAID-5 array a full-segment flush is therefore a stripe-aligned
    full-stripe write, exactly the efficient large write LFS exists to
    produce.  Atomicity comes from ``payload_crc``: recovery only
    honours a fragment whose payload checksum verifies, so a torn
    flush (crash mid-write) is rejected wholesale.

    ``entries[i]`` identifies the payload block at
    ``fragment_start + 1 + i``.
    """

    seq: int
    segment: int
    entries: tuple[BlockId, ...]
    payload_crc: int = 0

    def encode(self) -> bytes:
        body = struct.pack(_SUMMARY_HEADER_FMT, SUMMARY_MAGIC, 0, self.seq,
                           self.segment, len(self.entries), self.payload_crc)
        for entry in self.entries:
            body += struct.pack(_SUMMARY_ENTRY_FMT, int(entry.kind),
                                entry.ino, entry.index)
        return _pad_block(body + struct.pack("<I", _checksum(body)))

    @classmethod
    def decode(cls, block: bytes) -> "FragmentSummary":
        header_size = struct.calcsize(_SUMMARY_HEADER_FMT)
        magic, _r, seq, segment, count, payload_crc = struct.unpack(
            _SUMMARY_HEADER_FMT, block[:header_size])
        if magic != SUMMARY_MAGIC:
            raise CorruptFileSystemError("bad fragment summary magic")
        if count > MAX_FRAGMENT_PAYLOAD:
            raise CorruptFileSystemError(
                f"summary claims {count} blocks (max {MAX_FRAGMENT_PAYLOAD})")
        entry_size = struct.calcsize(_SUMMARY_ENTRY_FMT)
        body_size = header_size + count * entry_size
        body = block[:body_size]
        stored = struct.unpack("<I", block[body_size:body_size + 4])[0]
        if stored != _checksum(body):
            raise CorruptFileSystemError("fragment summary checksum mismatch")
        entries = []
        at = header_size
        for _ in range(count):
            kind, ino, index = struct.unpack(_SUMMARY_ENTRY_FMT,
                                             body[at:at + entry_size])
            entries.append(BlockId(BlockKind(kind), ino, index))
            at += entry_size
        return cls(seq, segment, tuple(entries), payload_crc)


# ---------------------------------------------------------------------------
# inodes
# ---------------------------------------------------------------------------

_INODE_FMT = "<IIQQQd"


@dataclass
class Inode:
    """One file or directory."""

    ino: int
    ftype: FileType
    size: int = 0
    nlink: int = 1
    mtime: float = 0.0
    direct: list[int] = field(default_factory=lambda: [NULL_ADDR] * N_DIRECT)
    indirect: int = NULL_ADDR
    dindirect: int = NULL_ADDR

    def encode(self) -> bytes:
        body = struct.pack(_INODE_FMT, INODE_MAGIC, self.ino,
                           int(self.ftype), self.size, self.nlink,
                           self.mtime)
        body += struct.pack(f"<{N_DIRECT}Q", *self.direct)
        body += struct.pack("<QQ", self.indirect, self.dindirect)
        return _pad_block(body + struct.pack("<I", _checksum(body)))

    @classmethod
    def decode(cls, block: bytes) -> "Inode":
        header_size = struct.calcsize(_INODE_FMT)
        body_size = header_size + 8 * N_DIRECT + 16
        body = block[:body_size]
        stored = struct.unpack("<I", block[body_size:body_size + 4])[0]
        if stored != _checksum(body):
            raise CorruptFileSystemError("inode checksum mismatch")
        magic, ino, ftype, size, nlink, mtime = struct.unpack(
            _INODE_FMT, body[:header_size])
        if magic != INODE_MAGIC:
            raise CorruptFileSystemError("bad inode magic")
        direct = list(struct.unpack(
            f"<{N_DIRECT}Q", body[header_size:header_size + 8 * N_DIRECT]))
        indirect, dindirect = struct.unpack("<QQ", body[-16:])
        return cls(ino, FileType(ftype), size, nlink, mtime, direct,
                   indirect, dindirect)

    def copy(self) -> "Inode":
        return Inode(self.ino, self.ftype, self.size, self.nlink, self.mtime,
                     list(self.direct), self.indirect, self.dindirect)


# ---------------------------------------------------------------------------
# pointer blocks
# ---------------------------------------------------------------------------

def encode_pointer_block(addrs: list[int]) -> bytes:
    """Serialize a 512-entry block-address array."""
    if len(addrs) != ADDRS_PER_BLOCK:
        raise CorruptFileSystemError(
            f"pointer block needs {ADDRS_PER_BLOCK} entries, got {len(addrs)}")
    return struct.pack(f"<{ADDRS_PER_BLOCK}Q", *addrs)


def decode_pointer_block(block: bytes) -> list[int]:
    return list(struct.unpack(f"<{ADDRS_PER_BLOCK}Q", block[:BLOCK_SIZE]))
