"""Test and benchmarking utilities.

:class:`MemoryDevice` is a flat byte-addressed device with a simple
bandwidth/latency model — it satisfies the same device protocol as a
RAID controller (timed ``read``/``write`` processes plus instant
``peek``/``poke`` and ``capacity_bytes``), which lets file-system
logic be exercised and benchmarked in isolation from the disk array.

:class:`CrashingDevice` wraps any device and cuts power after a byte
budget: writes beyond the budget are silently discarded (as a dying
machine's writes are), which is how the recovery tests produce torn
segment flushes at every possible point.
"""

from __future__ import annotations

from repro.errors import ConsistencyError, HardwareError
from repro.sim import BandwidthChannel, Simulator


class MemoryDevice:
    """A byte-addressed storage device backed by a bytearray."""

    def __init__(self, sim: Simulator, capacity_bytes: int,
                 rate_mb_s: float = 100.0, per_op_latency_s: float = 0.0001,
                 name: str = "memdev"):
        if capacity_bytes <= 0:
            raise HardwareError("capacity must be positive")
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.channel = BandwidthChannel(
            sim, rate_mb_s=rate_mb_s,
            per_transfer_overhead=per_op_latency_s, name=f"{name}.chan")
        self._store = bytearray(capacity_bytes)
        self.reads = 0
        self.writes = 0

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.capacity_bytes:
            raise HardwareError(
                f"range [{offset}, {offset + nbytes}) outside device")

    def read(self, offset: int, nbytes: int):
        """Process: read ``nbytes`` at ``offset``."""
        self._check(offset, nbytes)
        yield from self.channel.transfer(nbytes)
        self.reads += 1
        return bytes(self._store[offset:offset + nbytes])

    def write(self, offset: int, data: bytes):
        """Process: write ``data`` at ``offset``."""
        self._check(offset, len(data))
        yield from self.channel.transfer(len(data))
        self._store[offset:offset + len(data)] = data
        self.writes += 1
        return None

    def peek(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        return bytes(self._store[offset:offset + nbytes])

    def poke(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self._store[offset:offset + len(data)] = data


class PowerFailure(Exception):
    """Raised by :class:`CrashingDevice` when the write budget runs out."""


class CrashingDevice:
    """Wraps a device; after ``budget_bytes`` of writes, power is cut.

    The write during which the budget expires is applied only up to the
    budget boundary (a torn write), and the failure is raised so the
    caller can abandon the file system and test recovery.
    """

    def __init__(self, inner, budget_bytes: int):
        self.inner = inner
        self.budget_bytes = budget_bytes
        self.crashed = False

    @property
    def capacity_bytes(self) -> int:
        return self.inner.capacity_bytes

    @property
    def sim(self):
        return self.inner.sim

    def read(self, offset: int, nbytes: int):
        if self.crashed:
            raise PowerFailure("device is powered off")
        data = yield from self.inner.read(offset, nbytes)
        return data

    def write(self, offset: int, data: bytes):
        if self.crashed:
            raise PowerFailure("device is powered off")
        if len(data) <= self.budget_bytes:
            self.budget_bytes -= len(data)
            yield from self.inner.write(offset, data)
            return None
        # Torn write: only the first budget_bytes land.
        torn = data[:self.budget_bytes]
        self.budget_bytes = 0
        self.crashed = True
        if torn:
            yield from self.inner.write(offset, torn)
        raise PowerFailure("power failed during write")

    def peek(self, offset: int, nbytes: int) -> bytes:
        return self.inner.peek(offset, nbytes)


def assert_fs_consistent(fs) -> None:
    """Checkpoint ``fs`` and fsck it; raise ConsistencyError on findings.

    Intended as the last line of an LFS integration test: flushes the
    volatile state (so the on-disk image is complete) and then runs the
    offline checker from :mod:`repro.analysis.fsck_lfs` over it.
    """
    from repro.analysis.fsck_lfs import fsck

    fs.sim.run_process(fs.checkpoint(), name="fsck-checkpoint")
    report = fsck(fs)
    if not report.ok:
        raise ConsistencyError(report.render())


def assert_parity_clean(controller, max_rows=None) -> None:
    """Scrub a RAID array; raise ConsistencyError on any mismatched row."""
    from repro.analysis.scrub_raid import scrub_array

    report = scrub_array(controller, max_rows=max_rows)
    if not report.ok:
        raise ConsistencyError(report.render())
