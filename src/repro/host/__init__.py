"""Host and client workstation models (CPU, memory system, backplane)."""

from repro.host.cache import LruBlockCache
from repro.host.workstation import Workstation

__all__ = ["LruBlockCache", "Workstation"]
