"""A byte-budgeted LRU block cache.

"The host memory cache contains metadata as well as files that have
been read into workstation memory for transfer over the Ethernet.  The
cache is managed with a simple Least Recently Used replacement policy"
(Section 3.2).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

from repro.errors import HardwareError


class LruBlockCache:
    """Maps block keys to byte payloads, evicting least-recently-used."""

    def __init__(self, capacity_bytes: int, name: str = "cache"):
        if capacity_bytes <= 0:
            raise HardwareError(
                f"cache capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._entries: "OrderedDict[Hashable, bytes]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, key: Hashable) -> Optional[bytes]:
        """Return the cached payload or None; updates recency and stats."""
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def contains(self, key: Hashable) -> bool:
        """Presence check without touching recency or hit/miss stats."""
        return key in self._entries

    def put(self, key: Hashable, payload: bytes) -> None:
        if len(payload) > self.capacity_bytes:
            raise HardwareError(
                f"entry of {len(payload)} bytes exceeds cache capacity "
                f"{self.capacity_bytes}")
        if key in self._entries:
            self._used -= len(self._entries[key])
            del self._entries[key]
        self._entries[key] = payload
        self._used += len(payload)
        while self._used > self.capacity_bytes:
            _old_key, old_payload = self._entries.popitem(last=False)
            self._used -= len(old_payload)
            self.evictions += 1

    def invalidate(self, key: Hashable) -> None:
        payload = self._entries.pop(key, None)
        if payload is not None:
            self._used -= len(payload)

    def invalidate_where(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        Used for coherence: when a file changes, all of its cached
        ranges must go.  Returns the number of entries dropped.
        """
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            self.invalidate(key)
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
