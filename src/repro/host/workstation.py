"""Workstation model: CPU, memory system and VME backplane.

The paper's central observation is that a workstation's memory system
is the wrong place to route file-server data: "The copy operations
that move data between kernel DMA buffers and buffers in user space
saturate the memory system when I/O bandwidth reaches 2.3
megabytes/second" and the Sun 4/280 backplane saturates at 9 MB/s
(Section 1).  This model makes those limits explicit:

* the **CPU** is a single server charged a fixed cost per I/O
  (system call, context switches, completion interrupt),
* the **memory system** is a bandwidth channel; a programmed copy
  crosses it twice (read + write), a DMA transfer once,
* the **backplane** is a bandwidth channel crossed by all DMA.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hw.specs import WorkstationSpec
from repro.sim import BandwidthChannel, Resource, Simulator


class Workstation:
    """A host or client workstation."""

    def __init__(self, sim: Simulator, spec: WorkstationSpec,
                 name: str = "host"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.cpu = Resource(sim, capacity=1, name=f"{name}.cpu")
        self.memory = BandwidthChannel(
            sim, rate_mb_s=spec.memory_copy_rate_mb_s, name=f"{name}.mem")
        self.backplane = BandwidthChannel(
            sim, rate_mb_s=spec.backplane_rate_mb_s, name=f"{name}.vme")
        self.cpu_busy_time = 0.0
        self.ios_handled = 0

    # ------------------------------------------------------------------
    def cpu_work(self, seconds: float):
        """Process: hold the CPU for ``seconds`` of work."""
        if seconds < 0:
            raise HardwareError(f"negative CPU time: {seconds!r}")
        yield self.cpu.acquire()
        try:
            yield self.sim.timeout(seconds)
            self.cpu_busy_time += seconds
        finally:
            self.cpu.release()

    def handle_io(self):
        """Process: CPU cost of fielding one I/O request/completion."""
        yield from self.cpu_work(self.spec.per_io_cpu_s)
        self.ios_handled += 1

    # ------------------------------------------------------------------
    def copy(self, nbytes: int):
        """Process: a programmed memory copy (two passes over memory)."""
        yield from self.memory.transfer(2 * nbytes)

    def dma_in(self, nbytes: int):
        """Process: device -> host memory over the backplane (one pass)."""
        yield from self._dma(nbytes)

    def dma_out(self, nbytes: int):
        """Process: host memory -> device over the backplane (one pass)."""
        yield from self._dma(nbytes)

    def _dma(self, nbytes: int):
        legs = [
            self.sim.process(self.backplane.transfer(nbytes)),
            self.sim.process(self.memory.transfer(nbytes)),
        ]
        yield self.sim.all_of(legs)

    def cpu_utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            raise HardwareError("elapsed must be positive")
        return min(1.0, self.cpu_busy_time / elapsed)
