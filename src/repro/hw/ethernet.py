"""The 10 Mb/s Ethernet attached to the host workstation.

RAID-II's "standard mode" serves small requests over this network
(Section 2.1.1).  The model charges line rate (1.25 MB/s) plus a
per-packet cost; the paper quotes "approximately 0.5 millisecond" to
transfer an Ethernet packet, which at line rate corresponds to a
~625-byte frame, so the fixed per-packet overhead below is the
protocol-processing share.
"""

from __future__ import annotations

import math

from repro.errors import HardwareError
from repro.hw.specs import ETHERNET_SPEC, EthernetSpec
from repro.sim import BandwidthChannel, Simulator


class Ethernet:
    """A shared 10 Mb/s Ethernet segment."""

    def __init__(self, sim: Simulator, spec: EthernetSpec = ETHERNET_SPEC,
                 name: str = "ether"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.channel = BandwidthChannel(
            sim, rate_mb_s=spec.rate_mb_s, name=f"{name}.wire")
        self.packets_sent = 0

    def packets_for(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / self.spec.mtu_bytes))

    def send(self, nbytes: int):
        """Process: move ``nbytes`` as MTU-sized packets."""
        if nbytes < 0:
            raise HardwareError(f"negative transfer size: {nbytes}")
        packets = self.packets_for(nbytes)
        yield self.sim.timeout(packets * self.spec.packet_overhead_s)
        yield from self.channel.transfer(nbytes)
        self.packets_sent += packets
