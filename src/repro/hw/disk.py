"""Disk drive model: mechanics plus a sparse sector store.

A :class:`DiskDrive` is both a *timing* model (seek curve, rotational
latency, media transfer rate, track-buffer read-ahead) and a *storage*
model — it really stores the bytes written to it, sparsely, so the RAID
and file-system layers above can be verified byte-for-byte.

Timing structure per operation (all under the drive's single command
slot, since a drive services one command at a time):

``overhead + seek + rotational latency + media transfer``

* Seek time follows ``min + (max - min) * sqrt(cylinder distance
  fraction)``; the head position is tracked between operations.
* Sequential reads (an operation starting where the previous read
  ended) skip both seek and rotational latency thanks to the on-drive
  track read-ahead buffer — "sequential reads benefit from the
  read-ahead performed into track buffers on the disks" (Section 2.3).
* Sequential writes skip the seek but still pay a configurable fraction
  of a revolution, because "writes have no such advantage".
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import DiskFailedError, HardwareError, MediumError
from repro.hw.specs import DiskSpec
from repro.sim import BusyMonitor, Resource, Simulator
from repro.units import MB, SECTOR_SIZE

_ZERO_SECTOR = bytes(SECTOR_SIZE)


class DiskDrive:
    """One simulated disk drive."""

    def __init__(self, sim: Simulator, spec: DiskSpec, name: str = "disk"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self._slot = Resource(sim, capacity=1, name=f"{name}.slot")
        self._store: dict[int, bytes] = {}
        self._head_cylinder = 0
        #: (kind, next_lba) of the most recent operation, for
        #: sequential-access detection.
        self._last: Optional[tuple[str, int]] = None
        self.failed = False
        #: Optional fault-injection hook (see repro.faults.inject);
        #: consulted at the start of every timed operation.
        self.faults = None
        #: LBAs with latent sector errors: reads raise MediumError,
        #: writes heal (drives remap bad sectors on write).
        self._bad_sectors: set[int] = set()
        self.media_errors = 0
        self.busy = BusyMonitor(sim, name=f"{name}.busy")
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_sectors(self) -> int:
        return self.spec.capacity_bytes // SECTOR_SIZE

    def cylinder_of(self, lba: int) -> int:
        return (lba * SECTOR_SIZE) // self.spec.cylinder_bytes

    def seek_time(self, from_cyl: int, to_cyl: int) -> float:
        """Seek curve: zero for same cylinder, sqrt law otherwise."""
        distance = abs(to_cyl - from_cyl)
        if distance == 0:
            return 0.0
        span = max(1, self.spec.num_cylinders - 1)
        fraction = min(1.0, distance / span)
        # A full-span seek can land one ULP above max_seek_s through
        # float rounding; clamp so the spec bound really is a bound.
        return min(self.spec.max_seek_s,
                   self.spec.min_seek_s
                   + (self.spec.max_seek_s - self.spec.min_seek_s)
                   * math.sqrt(fraction))

    def media_transfer_time(self, nbytes: int) -> float:
        return nbytes / (self.spec.media_rate_mb_s * MB)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Mark the drive failed; subsequent I/O raises DiskFailedError."""
        self.failed = True

    def repair(self, wipe: bool = True) -> None:
        """Bring a replacement drive online (empty unless ``wipe=False``)."""
        self.failed = False
        if wipe:
            self._store.clear()
            self._bad_sectors.clear()
        self._last = None
        self._head_cylinder = 0

    def mark_bad(self, lba: int, nsectors: int) -> None:
        """Install a latent sector error over ``nsectors`` at ``lba``.

        Reads overlapping the extent raise :class:`MediumError` until
        the sectors are rewritten.
        """
        self._check_extent(lba, nsectors)
        self._bad_sectors.update(range(lba, lba + nsectors))

    def _check_medium(self, lba: int, nsectors: int) -> None:
        bad = self._bad_sectors
        if bad and not bad.isdisjoint(range(lba, lba + nsectors)):
            self.media_errors += 1
            first = min(s for s in range(lba, lba + nsectors) if s in bad)
            raise MediumError(self.name, first)

    # ------------------------------------------------------------------
    # timed I/O (simulation processes)
    # ------------------------------------------------------------------
    def read(self, lba: int, nsectors: int):
        """Process: read ``nsectors`` starting at ``lba``; returns bytes."""
        self._check_extent(lba, nsectors)
        with self.sim.tracer.span("disk.read", self.name,
                                  nbytes=nsectors * SECTOR_SIZE, lba=lba):
            yield self._slot.acquire()
            self.busy.enter()
            try:
                faults = self.faults
                if faults is not None:
                    faults.on_disk_op(self, "read", lba, nsectors)
                if self.failed:
                    raise DiskFailedError(self.name)
                self._check_medium(lba, nsectors)
                yield self.sim.timeout(
                    self._service_time("read", lba, nsectors))
                self._last = ("read", lba + nsectors)
                self.reads += 1
                self.bytes_read += nsectors * SECTOR_SIZE
                return self.peek(lba, nsectors)
            finally:
                self.busy.exit()
                self._slot.release()

    def write(self, lba: int, data: bytes):
        """Process: write ``data`` (multiple of the sector size) at ``lba``."""
        if len(data) % SECTOR_SIZE != 0:
            raise HardwareError(
                f"write size {len(data)} is not sector-aligned")
        nsectors = len(data) // SECTOR_SIZE
        self._check_extent(lba, nsectors)
        with self.sim.tracer.span("disk.write", self.name,
                                  nbytes=len(data), lba=lba):
            yield self._slot.acquire()
            self.busy.enter()
            try:
                faults = self.faults
                if faults is not None:
                    faults.on_disk_op(self, "write", lba, nsectors)
                if self.failed:
                    raise DiskFailedError(self.name)
                yield self.sim.timeout(
                    self._service_time("write", lba, nsectors))
                self._last = ("write", lba + nsectors)
                self.poke(lba, data)
                self.writes += 1
                self.bytes_written += len(data)
                return None
            finally:
                self.busy.exit()
                self._slot.release()

    def _service_time(self, kind: str, lba: int, nsectors: int) -> float:
        spec = self.spec
        target_cyl = self.cylinder_of(lba)
        if kind == "read":
            # Track-buffer hit: exact continuation, or a small forward
            # skip the drive's read-ahead already covers (e.g. hopping
            # over a RAID-5 parity unit).
            gap = None
            if self._last is not None and self._last[0] == "read":
                gap = lba - self._last[1]
            if gap is not None and 0 <= gap <= spec.readahead_window_sectors:
                seek = 0.0 if target_cyl == self._head_cylinder \
                    else spec.min_seek_s
                rotation = 0.0
            else:
                seek = self.seek_time(self._head_cylinder, target_cyl)
                rotation = spec.avg_rotational_latency_s
        else:
            if self._last == ("write", lba):
                seek = 0.0
                rotation = (spec.sequential_write_rotation_fraction
                            * spec.revolution_time_s)
            else:
                seek = self.seek_time(self._head_cylinder, target_cyl)
                rotation = spec.avg_rotational_latency_s
        self._head_cylinder = target_cyl
        transfer = self.media_transfer_time(nsectors * SECTOR_SIZE)
        return spec.per_op_overhead_s + seek + rotation + transfer

    # ------------------------------------------------------------------
    # instantaneous (untimed) access, for verification and formatting
    # ------------------------------------------------------------------
    def peek(self, lba: int, nsectors: int) -> bytes:
        """Return stored bytes without consuming simulated time."""
        self._check_extent(lba, nsectors)
        store = self._store
        return b"".join(
            store.get(sector, _ZERO_SECTOR)
            for sector in range(lba, lba + nsectors))

    def poke(self, lba: int, data: bytes) -> None:
        """Store bytes without consuming simulated time."""
        if len(data) % SECTOR_SIZE != 0:
            raise HardwareError(
                f"write size {len(data)} is not sector-aligned")
        nsectors = len(data) // SECTOR_SIZE
        self._check_extent(lba, nsectors)
        view = memoryview(data)
        store = self._store
        for index in range(nsectors):
            # The durability boundary: bytes become stable here.
            chunk = bytes(  # lint: disable=SIM004
                view[index * SECTOR_SIZE:(index + 1) * SECTOR_SIZE])
            store[lba + index] = chunk
        if self._bad_sectors:
            # Writing a latent-error sector remaps/heals it.
            self._bad_sectors.difference_update(range(lba, lba + nsectors))

    def _check_extent(self, lba: int, nsectors: int) -> None:
        if nsectors <= 0:
            raise HardwareError(f"transfer must cover >= 1 sector, got {nsectors}")
        if lba < 0 or lba + nsectors > self.num_sectors:
            raise HardwareError(
                f"{self.name}: extent [{lba}, {lba + nsectors}) outside "
                f"0..{self.num_sectors}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DiskDrive {self.name} ({self.spec.name})>"
