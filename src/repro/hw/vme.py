"""VME interface ports between the XBUS board and disk controllers/host.

The XBUS's four data ports and one control (TMC-VME link) port are the
slow, synchronous interfaces the paper blames for the hardware system
level falling short of its 40 MB/s goal: "our relatively slow,
synchronous VME interface ports ... only support 6.9 megabytes/second
on read operations and 5.9 megabytes/second on write operations"
(Section 2.3).

A VME bus is half-duplex: one transfer at a time, with a direction-
dependent rate.  ``Direction.READ`` moves data *into* XBUS memory
(disk reads), ``Direction.WRITE`` moves data out (disk writes).
"""

from __future__ import annotations

import enum

from repro.errors import SimulationError
from repro.hw.specs import VME_DATA_PORT_SPEC, VmePortSpec
from repro.sim import Resource, Simulator
from repro.units import MB


class Direction(enum.Enum):
    """Transfer direction relative to XBUS memory."""

    READ = "read"    # into XBUS memory
    WRITE = "write"  # out of XBUS memory


class VmePort:
    """One half-duplex VME port with asymmetric read/write rates."""

    def __init__(self, sim: Simulator, spec: VmePortSpec = VME_DATA_PORT_SPEC,
                 name: str = "vme"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self._lock = Resource(sim, capacity=1, name=f"{name}.lock")
        #: Optional fault-injection hook (see repro.faults.inject).
        self.faults = None
        self.bytes_moved = 0
        self.busy_time = 0.0

    def rate_mb_s(self, direction: Direction) -> float:
        if direction is Direction.READ:
            return self.spec.read_rate_mb_s
        return self.spec.write_rate_mb_s

    def transfer_time(self, nbytes: int, direction: Direction) -> float:
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        return (self.spec.per_transfer_overhead_s
                + nbytes / (self.rate_mb_s(direction) * MB))

    def transfer(self, nbytes: int, direction: Direction):
        """Process: move ``nbytes`` across the port (queue + service)."""
        with self.sim.tracer.span("vme.transfer", self.name, nbytes=nbytes,
                                  direction=direction.value):
            yield self._lock.acquire()
            try:
                faults = self.faults
                if faults is not None:
                    # A stalled VME link holds the bus: the delay is
                    # charged under the lock so queued transfers wait.
                    delay = faults.stall_delay(self.name)
                    if delay > 0.0:
                        yield self.sim.timeout(delay)
                duration = self.transfer_time(nbytes, direction)
                yield self.sim.timeout(duration)
                self.bytes_moved += nbytes
                self.busy_time += duration
            finally:
                self._lock.release()

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            raise SimulationError("elapsed must be positive")
        return min(1.0, self.busy_time / elapsed)
