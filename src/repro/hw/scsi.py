"""SCSI string model.

A *string* is one SCSI bus hanging off a Cougar controller.  The paper
attaches three disks per string and measures the string's ceiling at
about 3 MB/s (Figure 7) — well below the sum of three disks' media
rates, which is exactly the bottleneck Figure 7 demonstrates.

Drives disconnect from the bus during seeks and reconnect to transfer,
so only the data transfer occupies the string.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hw.disk import DiskDrive
from repro.hw.specs import SCSI_STRING_SPEC, ScsiStringSpec
from repro.sim import BandwidthChannel, Simulator


class ScsiString:
    """One SCSI bus with its attached drives."""

    def __init__(self, sim: Simulator, spec: ScsiStringSpec = SCSI_STRING_SPEC,
                 name: str = "string"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.channel = BandwidthChannel(
            sim, rate_mb_s=spec.rate_mb_s,
            per_transfer_overhead=spec.per_transfer_overhead_s,
            name=f"{name}.bus")
        self.disks: list[DiskDrive] = []
        #: Optional fault-injection hook (see repro.faults.inject).
        self.faults = None
        #: Number of transfers currently occupying or queued on the bus;
        #: the Cougar uses this for its dual-string contention check.
        self.active_transfers = 0

    def attach(self, disk: DiskDrive) -> None:
        if disk in self.disks:
            raise HardwareError(f"{disk.name} already attached to {self.name}")
        self.disks.append(disk)

    def transfer(self, nbytes: int, write: bool = False):
        """Process: move ``nbytes`` across the string (queue + service).

        Writes run at the string's (lower) write rate; the shared bus
        lock still serializes both directions.
        """
        self.active_transfers += 1
        try:
            with self.sim.tracer.span("scsi.transfer", self.name,
                                      nbytes=nbytes, write=write):
                faults = self.faults
                if faults is not None:
                    delay = faults.stall_delay(self.name)
                    if delay > 0.0:
                        yield self.sim.timeout(delay)
                if write:
                    # Same bus, slower effective rate: scale the byte
                    # count so the shared FIFO channel charges
                    # write-rate time.
                    scaled = int(nbytes * self.spec.rate_mb_s
                                 / self.spec.write_rate_mb_s)
                    yield from self.channel.transfer(scaled)
                else:
                    yield from self.channel.transfer(nbytes)
        finally:
            self.active_transfers -= 1

    @property
    def busy(self) -> bool:
        return self.active_transfers > 0
