"""Hardware component models of the RAID-II prototype.

Every component the paper measures is modelled here: disk drives
(mechanics plus a sparse byte store), SCSI strings, Interphase Cougar
controllers, VME links, the XBUS crossbar with interleaved memory
banks, the parity engine, HIPPI source/destination ports and Ethernet.

All calibration constants live in :mod:`repro.hw.specs` with notes on
which paper sentence or measurement each was fitted to.
"""

from repro.hw.cougar import CougarController
from repro.hw.disk import DiskDrive
from repro.hw.ethernet import Ethernet
from repro.hw.hippi import HippiPort
from repro.hw.parity import ParityEngine
from repro.hw.scsi import ScsiString
from repro.hw.specs import (
    COUGAR_SPEC,
    ETHERNET_SPEC,
    HIPPI_SPEC,
    IBM_0661,
    SEAGATE_WREN_IV,
    VME_CONTROL_PORT_SPEC,
    VME_DATA_PORT_SPEC,
    XBUS_SPEC,
    CougarSpec,
    DiskSpec,
    EthernetSpec,
    HippiSpec,
    VmePortSpec,
    XbusSpec,
)
from repro.hw.vme import VmePort
from repro.hw.xbus_board import XbusBoard
from repro.hw.xbus_memory import XbusMemory

__all__ = [
    "COUGAR_SPEC",
    "CougarController",
    "CougarSpec",
    "DiskDrive",
    "DiskSpec",
    "ETHERNET_SPEC",
    "Ethernet",
    "EthernetSpec",
    "HIPPI_SPEC",
    "HippiPort",
    "HippiSpec",
    "IBM_0661",
    "ParityEngine",
    "ScsiString",
    "SEAGATE_WREN_IV",
    "VME_CONTROL_PORT_SPEC",
    "VME_DATA_PORT_SPEC",
    "VmePort",
    "VmePortSpec",
    "XBUS_SPEC",
    "XbusBoard",
    "XbusMemory",
    "XbusSpec",
]
