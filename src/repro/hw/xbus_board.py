"""The assembled XBUS disk-array controller board.

One board (Figure 4) couples:

* four VME **data ports**, each to one Cougar controller (two SCSI
  strings of disks each),
* optionally a fifth Cougar on the **control port** (the configuration
  of Table 1's sequential experiment),
* two unidirectional **HIPPI ports** (source and destination),
* the **parity engine** port, and
* four interleaved **memory banks** used as the board's buffer pool.

The board exposes *disk paths* — per-disk adapters whose ``read``/
``write`` processes move real bytes through disk mechanics, the SCSI
string, the Cougar, the VME port and XBUS memory, with the stages run
concurrently to model cut-through.  The RAID layer is written against
this adapter interface and never needs to know the topology.

Disk ordering (the striping order) interleaves *first* strings across
all controllers before any *second* string:
``index = string * (disks_per_string * n_cougars) + disk * n_cougars
+ cougar``.  Consecutive stripe units therefore land on different
controllers, and a request only engages a controller's second string
once it spans more than ``disks_per_string * n_cougars`` units — the
mechanism behind Figure 5's dip at 768 KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import HardwareError
from repro.hw.cougar import CougarController
from repro.hw.disk import DiskDrive
from repro.hw.hippi import HippiPort
from repro.hw.parity import ParityEngine
from repro.hw.specs import (COUGAR_SPEC, IBM_0661, SCSI_STRING_SPEC,
                            VME_CONTROL_PORT_SPEC, VME_DATA_PORT_SPEC,
                            XBUS_SPEC, CougarSpec, DiskSpec, ScsiStringSpec)
from repro.hw.vme import Direction, VmePort
from repro.units import SECTOR_SIZE
from repro.hw.xbus_memory import XbusMemory
from repro.sim import Simulator


@dataclass(frozen=True)
class XbusConfig:
    """Shape of one XBUS board's disk subsystem."""

    data_cougars: int = 4
    strings_per_cougar: int = 2
    disks_per_string: int = 3
    disk_spec: DiskSpec = IBM_0661
    #: Attach a fifth Cougar to the control port (Table 1's setup).
    control_cougar: bool = False

    @property
    def total_disks(self) -> int:
        cougars = self.data_cougars + (1 if self.control_cougar else 0)
        return cougars * self.strings_per_cougar * self.disks_per_string


class XbusDiskPath:
    """Adapter: one disk reachable through its Cougar + VME port.

    ``read``/``write`` are full-path processes: all data-movement legs
    (Cougar side and VME-port/memory side) run concurrently, so the
    operation takes the slowest leg, which is how the real cut-through
    FIFOs behaved.
    """

    def __init__(self, board: "XbusBoard", cougar: CougarController,
                 port: VmePort, disk: DiskDrive):
        self.board = board
        self.cougar = cougar
        self.port = port
        self.disk = disk

    @property
    def name(self) -> str:
        return self.disk.name

    def read(self, lba: int, nsectors: int):
        """Process: disk -> ... -> XBUS memory; returns the bytes."""
        sim = self.board.sim
        nbytes = nsectors * SECTOR_SIZE
        with sim.tracer.span("xbus.disk_read", self.name, nbytes=nbytes):
            legs = [
                sim.process(self.cougar.read(self.disk, lba, nsectors)),
                sim.process(self.port.transfer(nbytes, Direction.READ)),
                sim.process(self.board.memory.access(nbytes)),
            ]
            values = yield sim.all_of(legs)
            return values[0]

    def write(self, lba: int, data: bytes):
        """Process: XBUS memory -> ... -> disk."""
        sim = self.board.sim
        with sim.tracer.span("xbus.disk_write", self.name,
                             nbytes=len(data)):
            legs = [
                sim.process(self.board.memory.access(len(data))),
                sim.process(self.port.transfer(len(data), Direction.WRITE)),
                sim.process(self.cougar.write(self.disk, lba, data)),
            ]
            yield sim.all_of(legs)
            return None


class XbusBoard:
    """One XBUS controller board with its attached disk subsystem."""

    def __init__(self, sim: Simulator, config: XbusConfig = XbusConfig(),
                 cougar_spec: CougarSpec = COUGAR_SPEC,
                 string_spec: ScsiStringSpec = SCSI_STRING_SPEC,
                 name: str = "xbus", retry=None):
        if not 1 <= config.data_cougars <= 4:
            raise HardwareError(
                f"an XBUS board has four VME data ports; "
                f"got {config.data_cougars} cougars")
        self.sim = sim
        self.config = config
        self.name = name
        self.memory = XbusMemory(sim, XBUS_SPEC, name=f"{name}.mem")
        self.parity_engine = ParityEngine(sim, XBUS_SPEC, name=f"{name}.xor")
        self.hippi_source = HippiPort(sim, name=f"{name}.hippis")
        self.hippi_dest = HippiPort(sim, name=f"{name}.hippid")
        self.control_port = VmePort(sim, VME_CONTROL_PORT_SPEC,
                                    name=f"{name}.link")

        self.data_ports: list[VmePort] = []
        self.cougars: list[CougarController] = []
        self._cougar_port: dict[int, VmePort] = {}

        for index in range(config.data_cougars):
            port = VmePort(sim, VME_DATA_PORT_SPEC, name=f"{name}.vme{index}")
            cougar = CougarController(sim, cougar_spec, string_spec,
                                      name=f"{name}.c{index}", retry=retry)
            self.data_ports.append(port)
            self.cougars.append(cougar)
            self._cougar_port[id(cougar)] = port
        if config.control_cougar:
            cougar = CougarController(
                sim, cougar_spec, string_spec,
                name=f"{name}.c{config.data_cougars}", retry=retry)
            self.cougars.append(cougar)
            self._cougar_port[id(cougar)] = self.control_port

        self._populate_disks()

    def _populate_disks(self) -> None:
        config = self.config
        for cougar_index, cougar in enumerate(self.cougars):
            for string_index, string in enumerate(cougar.strings):
                for disk_index in range(config.disks_per_string):
                    disk = DiskDrive(
                        self.sim, config.disk_spec,
                        name=(f"{self.name}.d{cougar_index}."
                              f"{string_index}.{disk_index}"))
                    string.attach(disk)

    # ------------------------------------------------------------------
    # disk paths in striping order
    # ------------------------------------------------------------------
    def disk_paths(self, limit: Optional[int] = None) -> list[XbusDiskPath]:
        """All disk paths in striping (string-major interleaved) order."""
        paths: list[XbusDiskPath] = []
        config = self.config
        for string_index in range(config.strings_per_cougar):
            for disk_index in range(config.disks_per_string):
                for cougar in self.cougars:
                    string = cougar.strings[string_index]
                    disk = string.disks[disk_index]
                    port = self._cougar_port[id(cougar)]
                    paths.append(XbusDiskPath(self, cougar, port, disk))
        if limit is not None:
            if limit > len(paths):
                raise HardwareError(
                    f"asked for {limit} disks, board has {len(paths)}")
            paths = paths[:limit]
        return paths

    @property
    def disks(self) -> list[DiskDrive]:
        return [path.disk for path in self.disk_paths()]

    # ------------------------------------------------------------------
    # network-side data movement
    # ------------------------------------------------------------------
    def send_hippi(self, nbytes: int, packets: int = 1):
        """Process: XBUS memory -> HIPPI source port -> network."""
        with self.sim.tracer.span("xbus.send_hippi", self.name,
                                  nbytes=nbytes):
            legs = [
                self.sim.process(self.memory.access(nbytes)),
                self.sim.process(self.hippi_source.send(nbytes, packets)),
            ]
            yield self.sim.all_of(legs)
            return None

    def receive_hippi(self, nbytes: int, packets: int = 1):
        """Process: network -> HIPPI destination port -> XBUS memory."""
        with self.sim.tracer.span("xbus.receive_hippi", self.name,
                                  nbytes=nbytes):
            legs = [
                self.sim.process(self.hippi_dest.send(nbytes, packets)),
                self.sim.process(self.memory.access(nbytes)),
            ]
            yield self.sim.all_of(legs)
            return None

    def hippi_loopback(self, nbytes: int, packets: int = 1):
        """Process: memory -> source -> destination -> memory (Figure 6).

        The two directions stream concurrently — the destination board
        consumes the stream as the source emits it, which is how the
        loopback sustains 38.5 MB/s *in each direction*.
        """
        with self.sim.tracer.span("xbus.hippi_loopback", self.name,
                                  nbytes=nbytes):
            legs = [
                self.sim.process(self.send_hippi(nbytes, packets)),
                self.sim.process(self.receive_hippi(nbytes, packets)),
            ]
            yield self.sim.all_of(legs)
            return None

    # ------------------------------------------------------------------
    # host-side (control path) data movement
    # ------------------------------------------------------------------
    def to_host(self, nbytes: int):
        """Process: XBUS memory -> control port (toward host memory)."""
        with self.sim.tracer.span("xbus.to_host", self.name, nbytes=nbytes):
            legs = [
                self.sim.process(self.memory.access(nbytes)),
                self.sim.process(
                    self.control_port.transfer(nbytes, Direction.WRITE)),
            ]
            yield self.sim.all_of(legs)
            return None

    def from_host(self, nbytes: int):
        """Process: control port -> XBUS memory."""
        with self.sim.tracer.span("xbus.from_host", self.name,
                                  nbytes=nbytes):
            legs = [
                self.sim.process(
                    self.control_port.transfer(nbytes, Direction.READ)),
                self.sim.process(self.memory.access(nbytes)),
            ]
            yield self.sim.all_of(legs)
            return None

    # ------------------------------------------------------------------
    # parity
    # ------------------------------------------------------------------
    def compute_parity(self, blocks: Sequence[bytes]):
        """Process: XOR ``blocks`` via the parity engine; returns parity.

        Charges the engine port plus the matching memory-bank traffic.
        """
        traffic = sum(len(block) for block in blocks) + len(blocks[0])
        with self.sim.tracer.span("xbus.parity", self.name, nbytes=traffic):
            legs = [
                self.sim.process(self.parity_engine.compute(blocks)),
                self.sim.process(self.memory.access(traffic)),
            ]
            values = yield self.sim.all_of(legs)
            return values[0]
