"""XBUS board memory: four interleaved DRAM banks behind the crossbar.

The board carries four 8 MB DRAM modules interleaved in sixteen-word
blocks, each matching the 40 MB/s port rate, for 160 MB/s aggregate
(Section 2.2, Figure 4).  Because the fine interleave spreads every
transfer across all banks, we model service time with a single
aggregate channel at the summed bank rate — which correctly caps total
board traffic at 160 MB/s — while still accounting per-bank byte
counts for utilization reports.

The memory also acts as the board's buffer pool (network buffers,
prefetch buffers, LFS segment buffers); a simple byte-counting
allocator tracks occupancy and its high-water mark.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hw.specs import XBUS_SPEC, XbusSpec
from repro.sim import BandwidthChannel, Simulator


class XbusMemory:
    """Interleaved buffer memory on the XBUS board."""

    __slots__ = ("sim", "spec", "name", "channel", "bank_bytes_moved",
                 "_next_bank", "_allocated", "allocation_high_water")

    def __init__(self, sim: Simulator, spec: XbusSpec = XBUS_SPEC,
                 name: str = "xmem"):
        self.sim = sim
        self.spec = spec
        self.name = name
        aggregate_rate = spec.bank_rate_mb_s * spec.memory_banks
        self.channel = BandwidthChannel(
            sim, rate_mb_s=aggregate_rate, name=f"{name}.banks")
        self.bank_bytes_moved = [0] * spec.memory_banks
        self._next_bank = 0
        self._allocated = 0
        self.allocation_high_water = 0

    @property
    def capacity_bytes(self) -> int:
        return self.spec.bank_bytes * self.spec.memory_banks

    # ------------------------------------------------------------------
    # timed access
    # ------------------------------------------------------------------
    def access(self, nbytes: int):
        """Process: one crossbar-side memory access of ``nbytes``."""
        if nbytes < 0:
            raise HardwareError(f"negative access size: {nbytes}")
        # Interleaving spreads the bytes across the banks; keep per-bank
        # counters for reporting.  Every bank takes the even share; the
        # remainder lands one byte per bank starting at the rotation
        # point — same totals as walking all banks, fewer modulo ops.
        banks = self.spec.memory_banks
        counters = self.bank_bytes_moved
        share, remainder = divmod(nbytes, banks)
        if share:
            for bank in range(banks):
                counters[bank] += share
        base = self._next_bank
        for index in range(remainder):
            counters[(base + index) % banks] += 1
        self._next_bank = (base + 1) % banks
        with self.sim.tracer.span("xmem.access", self.name, nbytes=nbytes):
            yield from self.channel.transfer(nbytes)

    # ------------------------------------------------------------------
    # buffer-pool accounting (instantaneous)
    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise HardwareError(f"negative allocation: {nbytes}")
        self._allocated += nbytes
        self.allocation_high_water = max(self.allocation_high_water,
                                         self._allocated)

    def free(self, nbytes: int) -> None:
        if nbytes < 0:
            raise HardwareError(f"negative free: {nbytes}")
        if nbytes > self._allocated:
            raise HardwareError(
                f"freeing {nbytes} bytes but only {self._allocated} allocated")
        self._allocated -= nbytes
