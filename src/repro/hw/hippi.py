"""HIPPI source/destination ports on the XBUS board.

Two unidirectional XBUS ports interface to the TMC HIPPI boards.
Measured loopback behaviour (Figure 6): 38.5 MB/s sustained in each
direction, with a fixed ~1.1 ms per-packet overhead "mostly due to
setting up the HIPPI and XBUS control registers across the slow VME
link" — which is why small transfers perform poorly.
"""

from __future__ import annotations

import math

from repro.errors import HardwareError
from repro.hw.specs import HIPPI_SPEC, HippiSpec
from repro.sim import BandwidthChannel, Simulator


class HippiPort:
    """One unidirectional HIPPI port (source or destination)."""

    def __init__(self, sim: Simulator, spec: HippiSpec = HIPPI_SPEC,
                 name: str = "hippi"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.channel = BandwidthChannel(
            sim, rate_mb_s=spec.port_rate_mb_s, name=f"{name}.port")
        #: Optional fault-injection hook (see repro.faults.inject).
        self.faults = None
        self.packets_sent = 0

    def send(self, nbytes: int, packets: int = 1):
        """Process: move ``nbytes`` through the port as ``packets`` packets.

        The per-packet setup overhead is charged once per packet; large
        streaming transfers use one packet per request, small
        interactive transfers pay the overhead every time.
        """
        if nbytes < 0:
            raise HardwareError(f"negative transfer size: {nbytes}")
        if packets < 1:
            raise HardwareError(f"packets must be >= 1, got {packets}")
        with self.sim.tracer.span("hippi.send", self.name, nbytes=nbytes,
                                  packets=packets):
            faults = self.faults
            if faults is not None:
                delay = faults.stall_delay(self.name)
                if delay > 0.0:
                    yield self.sim.timeout(delay)
            setup = packets * self.spec.packet_overhead_s
            yield self.sim.timeout(setup)
            yield from self.channel.transfer(nbytes)
            self.packets_sent += packets

    def packets_for(self, nbytes: int, max_packet_bytes: int) -> int:
        """Packet count when a transfer is chopped at ``max_packet_bytes``."""
        if max_packet_bytes <= 0:
            raise HardwareError("max_packet_bytes must be positive")
        return max(1, math.ceil(nbytes / max_packet_bytes))
