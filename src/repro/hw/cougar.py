"""Interphase Cougar dual-string VME disk controller.

The Cougar couples two SCSI strings to one VME bus and can move about
8 MB/s.  When *both* of its strings transfer at once, there is "some
contention on the controller that results in lower performance"
(Section 2.3) — the cause of the throughput dip at 768 KB in Figure 5.
We charge a fixed contention penalty to any transfer that runs while
the controller's other string is busy.

The controller owns the full disk-to-VME path: a read is
``disk mechanics -> (media transfer || string transfer || controller
transfer)``, the parallel stage modelling cut-through through the
drive's buffer and the controller's FIFOs.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import HardwareError, OpTimeoutError, TransientDiskError
from repro.faults.retry import RetryPolicy
from repro.hw.disk import DiskDrive
from repro.hw.specs import (COUGAR_SPEC, SCSI_STRING_SPEC, CougarSpec,
                            ScsiStringSpec)
from repro.hw.scsi import ScsiString
from repro.sim import BandwidthChannel, Simulator
from repro.units import SECTOR_SIZE


class CougarController:
    """One Cougar board: two SCSI strings sharing a controller channel."""

    def __init__(self, sim: Simulator, spec: CougarSpec = COUGAR_SPEC,
                 string_spec: ScsiStringSpec = SCSI_STRING_SPEC,
                 name: str = "cougar",
                 retry: Optional[RetryPolicy] = None):
        self.sim = sim
        self.spec = spec
        self.name = name
        #: Retry/deadline policy for whole disk-to-VME operations.
        #: ``None`` (the default) disables controller-level retries —
        #: the legs then run exactly as a policy-free build would.
        self.retry = retry
        self.channel = BandwidthChannel(
            sim, rate_mb_s=spec.rate_mb_s,
            per_transfer_overhead=spec.per_transfer_overhead_s,
            name=f"{name}.bus")
        self.strings = [
            ScsiString(sim, string_spec, name=f"{name}.s{index}")
            for index in range(spec.strings)
        ]
        self.contention_events = 0
        self.retries = 0
        self.op_timeouts = 0
        self._m_retries = sim.metrics.counter(name, "retries")
        self._m_op_timeouts = sim.metrics.counter(name, "op_timeouts")
        #: Operations currently in flight per string (indexed like
        #: ``strings``); used for the dual-string contention check.
        self._inflight = [0] * spec.strings

    # ------------------------------------------------------------------
    def string_of(self, disk: DiskDrive) -> ScsiString:
        for string in self.strings:
            if disk in string.disks:
                return string
        raise HardwareError(f"{disk.name} is not on any string of {self.name}")

    @property
    def disks(self) -> list[DiskDrive]:
        return [disk for string in self.strings for disk in string.disks]

    def _other_string_busy(self, string: ScsiString) -> bool:
        index = self.strings.index(string)
        return any(count > 0 for other, count in enumerate(self._inflight)
                   if other != index)

    def _dual_string_delay(self, string: ScsiString):
        """Process: serial command-handling delay when both strings are
        in use.  This is "contention on the controller that results in
        lower performance when both strings are used" (Section 2.3) —
        charged up front, before the data legs, so it extends the
        operation's critical path."""
        if self._other_string_busy(string):
            self.contention_events += 1
            yield self.sim.timeout(self.spec.dual_string_penalty_s)
        return None

    def _controller_transfer(self, string: ScsiString, nbytes: int):
        """Process: the controller-internal data leg."""
        with self.sim.tracer.span("cougar.bus", self.name, nbytes=nbytes):
            yield from self.channel.transfer(nbytes)

    # ------------------------------------------------------------------
    # retry machinery
    # ------------------------------------------------------------------
    def _run_attempts(self, index: int, spawn_legs):
        """Process: run ``spawn_legs()`` under the retry policy.

        ``spawn_legs`` creates and returns the operation's concurrent
        leg processes; the attempt's value is the ``all_of`` value list
        in spawn order.  With no policy this is a plain join — same
        events, same order, same fingerprint as a retry-free build.
        """
        policy = self.retry
        self._inflight[index] += 1
        try:
            if policy is None:
                values = yield self.sim.all_of(spawn_legs())
                return values
            backoff = policy.backoff_s
            for attempt in range(1, policy.max_attempts + 1):
                last = attempt == policy.max_attempts
                try:
                    values = yield from self._one_attempt(spawn_legs)
                    return values
                except TransientDiskError:
                    self.retries += 1
                    self._m_retries.inc()
                    if last:
                        raise
                except OpTimeoutError:
                    if last:
                        raise
                yield self.sim.timeout(backoff)
                backoff *= policy.backoff_factor
        finally:
            self._inflight[index] -= 1

    def _one_attempt(self, spawn_legs):
        """Process: one attempt, abandoned at the policy's deadline."""
        legs = spawn_legs()
        joined = self.sim.all_of(legs)
        if self.retry.op_timeout_s is None:
            values = yield joined
            return values
        deadline = self.sim.timeout(self.retry.op_timeout_s)
        yield self.sim.any_of([joined, deadline])
        if joined.processed:
            return joined.value
        self.op_timeouts += 1
        self._m_op_timeouts.inc()
        for leg in legs:
            if leg.is_alive:
                leg.interrupt("cougar op timeout")
        raise OpTimeoutError(
            f"{self.name}: op exceeded {self.retry.op_timeout_s}s")

    # ------------------------------------------------------------------
    def read(self, disk: DiskDrive, lba: int, nsectors: int):
        """Process: read from ``disk`` up through the controller.

        Returns the bytes read.  The three data-movement legs (drive
        media, SCSI string, controller channel) run concurrently to
        model cut-through; the operation completes when the slowest
        finishes.
        """
        string = self.string_of(disk)
        index = self.strings.index(string)
        nbytes = nsectors * SECTOR_SIZE

        def spawn_legs():
            read_proc = self.sim.process(disk.read(lba, nsectors),
                                         name=f"{disk.name}.read")
            string_proc = self.sim.process(string.transfer(nbytes),
                                           name=f"{string.name}.xfer")
            ctrl_proc = self.sim.process(
                self._controller_transfer(string, nbytes),
                name=f"{self.name}.xfer")
            return [read_proc, string_proc, ctrl_proc]

        with self.sim.tracer.span("cougar.read", self.name, nbytes=nbytes):
            yield from self._dual_string_delay(string)
            values = yield from self._run_attempts(index, spawn_legs)
            return values[0]

    def write(self, disk: DiskDrive, lba: int, data: bytes):
        """Process: write ``data`` to ``disk`` down through the controller."""
        string = self.string_of(disk)
        index = self.strings.index(string)

        def spawn_legs():
            write_proc = self.sim.process(disk.write(lba, data),
                                          name=f"{disk.name}.write")
            string_proc = self.sim.process(
                string.transfer(len(data), write=True),
                name=f"{string.name}.xfer")
            ctrl_proc = self.sim.process(
                self._controller_transfer(string, len(data)),
                name=f"{self.name}.xfer")
            return [write_proc, string_proc, ctrl_proc]

        with self.sim.tracer.span("cougar.write", self.name,
                                  nbytes=len(data)):
            yield from self._dual_string_delay(string)
            yield from self._run_attempts(index, spawn_legs)
            return None
