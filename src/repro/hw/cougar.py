"""Interphase Cougar dual-string VME disk controller.

The Cougar couples two SCSI strings to one VME bus and can move about
8 MB/s.  When *both* of its strings transfer at once, there is "some
contention on the controller that results in lower performance"
(Section 2.3) — the cause of the throughput dip at 768 KB in Figure 5.
We charge a fixed contention penalty to any transfer that runs while
the controller's other string is busy.

The controller owns the full disk-to-VME path: a read is
``disk mechanics -> (media transfer || string transfer || controller
transfer)``, the parallel stage modelling cut-through through the
drive's buffer and the controller's FIFOs.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hw.disk import DiskDrive
from repro.hw.specs import (COUGAR_SPEC, SCSI_STRING_SPEC, CougarSpec,
                            ScsiStringSpec)
from repro.hw.scsi import ScsiString
from repro.sim import BandwidthChannel, Simulator
from repro.units import SECTOR_SIZE


class CougarController:
    """One Cougar board: two SCSI strings sharing a controller channel."""

    def __init__(self, sim: Simulator, spec: CougarSpec = COUGAR_SPEC,
                 string_spec: ScsiStringSpec = SCSI_STRING_SPEC,
                 name: str = "cougar"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.channel = BandwidthChannel(
            sim, rate_mb_s=spec.rate_mb_s,
            per_transfer_overhead=spec.per_transfer_overhead_s,
            name=f"{name}.bus")
        self.strings = [
            ScsiString(sim, string_spec, name=f"{name}.s{index}")
            for index in range(spec.strings)
        ]
        self.contention_events = 0
        #: Operations currently in flight per string (indexed like
        #: ``strings``); used for the dual-string contention check.
        self._inflight = [0] * spec.strings

    # ------------------------------------------------------------------
    def string_of(self, disk: DiskDrive) -> ScsiString:
        for string in self.strings:
            if disk in string.disks:
                return string
        raise HardwareError(f"{disk.name} is not on any string of {self.name}")

    @property
    def disks(self) -> list[DiskDrive]:
        return [disk for string in self.strings for disk in string.disks]

    def _other_string_busy(self, string: ScsiString) -> bool:
        index = self.strings.index(string)
        return any(count > 0 for other, count in enumerate(self._inflight)
                   if other != index)

    def _dual_string_delay(self, string: ScsiString):
        """Process: serial command-handling delay when both strings are
        in use.  This is "contention on the controller that results in
        lower performance when both strings are used" (Section 2.3) —
        charged up front, before the data legs, so it extends the
        operation's critical path."""
        if self._other_string_busy(string):
            self.contention_events += 1
            yield self.sim.timeout(self.spec.dual_string_penalty_s)
        return None

    def _controller_transfer(self, string: ScsiString, nbytes: int):
        """Process: the controller-internal data leg."""
        with self.sim.tracer.span("cougar.bus", self.name, nbytes=nbytes):
            yield from self.channel.transfer(nbytes)

    # ------------------------------------------------------------------
    def read(self, disk: DiskDrive, lba: int, nsectors: int):
        """Process: read from ``disk`` up through the controller.

        Returns the bytes read.  The three data-movement legs (drive
        media, SCSI string, controller channel) run concurrently to
        model cut-through; the operation completes when the slowest
        finishes.
        """
        string = self.string_of(disk)
        index = self.strings.index(string)
        nbytes = nsectors * SECTOR_SIZE
        with self.sim.tracer.span("cougar.read", self.name, nbytes=nbytes):
            yield from self._dual_string_delay(string)
            self._inflight[index] += 1
            try:
                read_proc = self.sim.process(disk.read(lba, nsectors),
                                             name=f"{disk.name}.read")
                string_proc = self.sim.process(string.transfer(nbytes),
                                               name=f"{string.name}.xfer")
                ctrl_proc = self.sim.process(
                    self._controller_transfer(string, nbytes),
                    name=f"{self.name}.xfer")
                values = yield self.sim.all_of([read_proc, string_proc,
                                                ctrl_proc])
                return values[0]
            finally:
                self._inflight[index] -= 1

    def write(self, disk: DiskDrive, lba: int, data: bytes):
        """Process: write ``data`` to ``disk`` down through the controller."""
        string = self.string_of(disk)
        index = self.strings.index(string)
        with self.sim.tracer.span("cougar.write", self.name,
                                  nbytes=len(data)):
            yield from self._dual_string_delay(string)
            self._inflight[index] += 1
            try:
                write_proc = self.sim.process(disk.write(lba, data),
                                              name=f"{disk.name}.write")
                string_proc = self.sim.process(
                    string.transfer(len(data), write=True),
                    name=f"{string.name}.xfer")
                ctrl_proc = self.sim.process(
                    self._controller_transfer(string, len(data)),
                    name=f"{self.name}.xfer")
                yield self.sim.all_of([write_proc, string_proc, ctrl_proc])
                return None
            finally:
                self._inflight[index] -= 1
