"""The XBUS parity computation engine.

One crossbar port is "a parity computation engine" (Section 2.2): it
streams blocks out of XBUS memory, XORs them, and streams the result
back.  Functionally we compute real XOR (numpy over the byte buffers)
so that parity on disk is genuine and reconstruction is verifiable;
the time charged is the port traffic — every input block read plus the
result written, at the port rate.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import HardwareError
from repro.hw.specs import XBUS_SPEC, XbusSpec
from repro.sim import BandwidthChannel, Simulator


def xor_blocks(blocks: Sequence[bytes]) -> bytes:
    """Pure XOR of equal-length byte blocks (no simulated time)."""
    if not blocks:
        raise HardwareError("xor of zero blocks")
    length = len(blocks[0])
    for block in blocks:
        if len(block) != length:
            raise HardwareError(
                f"xor blocks differ in length: {len(block)} != {length}")
    result = np.frombuffer(blocks[0], dtype=np.uint8).copy()
    for block in blocks[1:]:
        result ^= np.frombuffer(block, dtype=np.uint8)
    return result.tobytes()


class ParityEngine:
    """Timed XOR engine on its own crossbar port."""

    def __init__(self, sim: Simulator, spec: XbusSpec = XBUS_SPEC,
                 name: str = "parity"):
        self.sim = sim
        self.name = name
        self.port = BandwidthChannel(
            sim, rate_mb_s=spec.port_rate_mb_s, name=f"{name}.port")
        self.blocks_xored = 0

    def compute(self, blocks: Sequence[bytes]):
        """Process: XOR ``blocks``; returns the parity block.

        Charges port time for reading every input block and writing the
        result back to memory.
        """
        traffic = sum(len(block) for block in blocks) + len(blocks[0])
        parity = xor_blocks(blocks)  # validates lengths up front
        yield from self.port.transfer(traffic)
        self.blocks_xored += len(blocks)
        return parity

    def verify(self, data_blocks: Iterable[bytes], parity: bytes) -> bool:
        """Instant check that ``parity`` matches ``data_blocks``."""
        return xor_blocks(list(data_blocks)) == parity
