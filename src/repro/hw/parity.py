"""The XBUS parity computation engine.

One crossbar port is "a parity computation engine" (Section 2.2): it
streams blocks out of XBUS memory, XORs them, and streams the result
back.  Functionally we compute real XOR (numpy over the byte buffers)
so that parity on disk is genuine and reconstruction is verifiable;
the time charged is the port traffic — every input block read plus the
result written, at the port rate.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.errors import HardwareError
from repro.hw.specs import XBUS_SPEC, XbusSpec
from repro.sim import BandwidthChannel, Simulator

#: Anything the parity engine can stream: the zero-copy data path hands
#: ``memoryview`` slices around, so blocks need not be ``bytes``.
BlockLike = Union[bytes, bytearray, memoryview]


def _as_u8(block: BlockLike) -> np.ndarray:
    """View ``block`` as a uint8 array without copying when possible."""
    if isinstance(block, memoryview) and not block.c_contiguous:
        # np.frombuffer needs contiguous memory.
        block = bytes(block)  # lint: disable=SIM004
    return np.frombuffer(block, dtype=np.uint8)


def xor_blocks(blocks: Sequence[BlockLike]) -> bytes:
    """Pure XOR of equal-length byte blocks (no simulated time).

    Accepts ``bytes``, ``bytearray`` or ``memoryview`` blocks.  One
    output buffer accumulates each block in place — measured faster
    than every vectorized alternative tried (copying the inputs into a
    fresh 2-D array costs more than the single ``reduce`` saves, and
    even a zero-copy strided 2-D view of adjacent blocks reduces
    slower than the in-place loop streams).
    """
    if not blocks:
        raise HardwareError("xor of zero blocks")
    length = len(blocks[0])
    for index, block in enumerate(blocks):
        if len(block) != length:
            raise HardwareError(
                f"xor block {index} differs in length: "
                f"{len(block)} != {length}")
    if len(blocks) == 1:
        return bytes(blocks[0])
    result = _as_u8(blocks[0]).copy()
    for block in blocks[1:]:
        result ^= _as_u8(block)
    return result.tobytes()


class ParityEngine:
    """Timed XOR engine on its own crossbar port."""

    def __init__(self, sim: Simulator, spec: XbusSpec = XBUS_SPEC,
                 name: str = "parity"):
        self.sim = sim
        self.name = name
        self.port = BandwidthChannel(
            sim, rate_mb_s=spec.port_rate_mb_s, name=f"{name}.port")
        self.blocks_xored = 0

    def compute(self, blocks: Sequence[bytes]):
        """Process: XOR ``blocks``; returns the parity block.

        Charges port time for reading every input block and writing the
        result back to memory.
        """
        traffic = sum(len(block) for block in blocks) + len(blocks[0])
        parity = xor_blocks(blocks)  # validates lengths up front
        with self.sim.tracer.span("parity.compute", self.name,
                                  nbytes=traffic, blocks=len(blocks)):
            yield from self.port.transfer(traffic)
        self.blocks_xored += len(blocks)
        return parity

    def verify(self, data_blocks: Iterable[bytes], parity: bytes) -> bool:
        """Instant check that ``parity`` matches ``data_blocks``."""
        return xor_blocks(list(data_blocks)) == parity
