"""Component specifications and calibration constants.

Every number in this file is either quoted directly from the paper
("RAID-II: A High-Bandwidth Network File Server", ISCA 1994) or fitted
so that the microbenchmarks in ``experiments/`` reproduce the paper's
published curves.  Each constant carries a provenance note.

The simulated prototype is calibrated against these published anchors:

* single Wren IV sustains 1.3 MB/s; RAID-I delivers at most 2.3 MB/s
  to an application (Section 1),
* the Sun 4/280 backplane saturates at 9 MB/s (Section 1),
* a Cougar SCSI string sustains about 3 MB/s (Figure 7),
* VME data ports sustain 6.9 MB/s reads / 5.9 MB/s writes (Section 2.3),
* HIPPI loopback reaches 38.5 MB/s with ~1.1 ms per-packet setup
  (Figure 6),
* hardware system level: ~20 MB/s random, 31/23 MB/s sequential
  read/write (Figure 5, Table 1),
* small I/O: ~275 IO/s (RAID-I) vs ~400 IO/s (RAID-II) on fifteen
  disks (Table 2),
* LFS: ~21 MB/s large reads, ~15 MB/s writes, 23 ms small-read
  overhead, 3 ms small-write overhead (Figure 8, Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KIB, MB, MIB, MS, SECTOR_SIZE


@dataclass(frozen=True)
class DiskSpec:
    """Mechanical and interface parameters of one disk drive model."""

    name: str
    capacity_bytes: int
    rpm: float
    #: Single-cylinder and full-stroke seek times; the seek curve is
    #: ``min + (max - min) * sqrt(distance_fraction)`` whose random
    #: average works out to ``min + 0.533 * (max - min)``.
    min_seek_s: float
    max_seek_s: float
    sectors_per_track: int
    tracks_per_cylinder: int
    #: Fixed command/controller overhead charged per operation.
    per_op_overhead_s: float
    #: Fraction of a revolution charged to a *sequential* write, which
    #: (unlike reads) gets no benefit from the track read-ahead buffer
    #: ("writes have no such advantage on these disks", Section 2.3).
    sequential_write_rotation_fraction: float
    #: Forward gap (in sectors) a read may skip and still hit the track
    #: read-ahead buffer.  RAID-5 parity rotation makes a disk's
    #: sequential data units skip one stripe unit whenever a row parks
    #: its parity there; the drive's read-ahead covers such gaps.
    readahead_window_sectors: int = 256

    @property
    def revolution_time_s(self) -> float:
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency_s(self) -> float:
        return self.revolution_time_s / 2.0

    @property
    def track_bytes(self) -> int:
        return self.sectors_per_track * SECTOR_SIZE

    @property
    def cylinder_bytes(self) -> int:
        return self.track_bytes * self.tracks_per_cylinder

    @property
    def num_cylinders(self) -> int:
        return max(1, self.capacity_bytes // self.cylinder_bytes)

    @property
    def media_rate_mb_s(self) -> float:
        """Sustained media transfer rate (one track per revolution)."""
        return self.track_bytes / self.revolution_time_s / MB

    @property
    def avg_seek_s(self) -> float:
        """Average random seek implied by the sqrt seek curve."""
        return self.min_seek_s + 0.533 * (self.max_seek_s - self.min_seek_s)


#: The 3.5-inch 320 MB IBM 0661 drives of RAID-II (Section 2.2).
#: 4316 rpm and the seek range give the "faster rotation and seek times"
#: the paper credits for RAID-II's higher I/O rates (Table 2); the
#: 60-sector track puts the media rate at ~2.2 MB/s so that one disk on
#: a string delivers ~2 MB/s (the first point of Figure 7).
IBM_0661 = DiskSpec(
    name="IBM 0661",
    capacity_bytes=320 * MB,
    rpm=4316.0,
    min_seek_s=2.0 * MS,
    max_seek_s=21.7 * MS,  # avg = 2.0 + 0.533 * 19.7 = 12.5 ms
    sectors_per_track=60,  # 30 KB/track / 13.9 ms rev = 2.21 MB/s media
    tracks_per_cylinder=14,
    per_op_overhead_s=2.0 * MS,
    sequential_write_rotation_fraction=0.5,
)

#: The 5.25-inch Seagate Wren IV drives of RAID-I (Section 1): slower
#: seek and rotation.  The 48-sector track puts the media rate at
#: ~1.44 MB/s so that, together with SCSI and host costs, a single
#: disk sustains the paper's 1.3 MB/s through the RAID-I host path.
SEAGATE_WREN_IV = DiskSpec(
    name="Seagate Wren IV",
    capacity_bytes=344 * MB,
    rpm=3600.0,
    min_seek_s=3.0 * MS,
    max_seek_s=30.2 * MS,  # avg = 3.0 + 0.533 * 27.2 = 17.5 ms
    sectors_per_track=48,  # 24 KB/track / 16.7 ms rev = 1.44 MB/s media
    tracks_per_cylinder=9,
    per_op_overhead_s=2.5 * MS,
    sequential_write_rotation_fraction=0.5,
)


@dataclass(frozen=True)
class ScsiStringSpec:
    """One SCSI string (bus) hanging off a Cougar controller."""

    #: "Cougar string bandwidth is limited to about 3 megabytes/second"
    #: (Figure 7 caption).  Set at the top of that range: Table 1's
    #: 31 MB/s from ten saturated strings needs ~3.1 MB/s each
    #: net of command overhead.
    rate_mb_s: float = 3.55
    #: String bandwidth for writes.  Writes carry extra SCSI handshake
    #: per block and get none of the controller's read streaming;
    #: fitted so ten saturated strings deliver Table 1's 23 MB/s
    #: sequential writes against 31 MB/s reads.
    write_rate_mb_s: float = 3.05
    #: SCSI selection/command/status and disconnect/reconnect phases
    #: occupy the bus for about 2 ms per command on 1993-era SCSI.
    per_transfer_overhead_s: float = 2.0 * MS
    #: Paper configuration: three disks per string (Section 2.2).
    disks_per_string: int = 3


SCSI_STRING_SPEC = ScsiStringSpec()


@dataclass(frozen=True)
class CougarSpec:
    """Interphase Cougar dual-string VME disk controller."""

    #: "The Cougar disk controllers can transfer data at 8 MB/s"
    #: (Section 2.2).
    rate_mb_s: float = 8.0
    per_transfer_overhead_s: float = 0.2 * MS
    strings: int = 2
    #: Serial command-handling delay charged to an operation started
    #: while the controller's *other* string is busy.  This is the
    #: "contention on the controller ... when both strings are used"
    #: responsible for the dip at 768 KB in Figure 5; fitted to the
    #: dip's depth.
    dual_string_penalty_s: float = 8.0 * MS


COUGAR_SPEC = CougarSpec()


@dataclass(frozen=True)
class VmePortSpec:
    """An XBUS VME interface port.

    "our relatively slow, synchronous VME interface ports ... only
    support 6.9 megabytes/second on read operations and 5.9
    megabytes/second on write operations" (Section 2.3).  Reads move
    data disk->XBUS memory; writes move XBUS memory->disk.
    """

    read_rate_mb_s: float = 6.9
    write_rate_mb_s: float = 5.9
    per_transfer_overhead_s: float = 0.1 * MS


VME_DATA_PORT_SPEC = VmePortSpec()

#: The XBUS control (TMC-VME link) port that connects the board to the
#: host.  Table 1's sequential experiment attached a *fifth* Cougar to
#: it; the port hardware matches the data ports, derated slightly for
#: the control traffic and register accesses it also carries.
VME_CONTROL_PORT_SPEC = VmePortSpec(
    read_rate_mb_s=6.0,
    write_rate_mb_s=5.2,
    per_transfer_overhead_s=0.2 * MS,
)


@dataclass(frozen=True)
class XbusSpec:
    """The XBUS crossbar board (Section 2.2, Figure 4)."""

    #: "Each port was intended to support 40 megabytes/second" --
    #: 32-bit ports at 80 ns cycle time.
    port_rate_mb_s: float = 40.0
    memory_banks: int = 4
    #: 8 MB DRAM per bank (Figure 4).
    bank_bytes: int = 8 * MIB
    #: Each bank matches port speed; four banks give the board its
    #: 160 MB/s aggregate.
    bank_rate_mb_s: float = 40.0
    #: Memory is interleaved in sixteen-word (64-byte) blocks; we model
    #: interleaving by spreading transfers across banks round-robin.
    interleave_bytes: int = 64


XBUS_SPEC = XbusSpec()


@dataclass(frozen=True)
class HippiSpec:
    """TMC HIPPI source/destination boards attached to the XBUS."""

    #: Figure 6: loopback sustains 38.5 MB/s in each direction --
    #: "very close to the maximum bandwidth of the XBUS ports".
    port_rate_mb_s: float = 38.5
    #: "the overhead of sending a HIPPI packet is about 1.1
    #: milliseconds, mostly due to setting up the HIPPI and XBUS
    #: control registers across the slow VME link" (Section 2.3).
    packet_overhead_s: float = 1.1 * MS
    #: Largest burst a single HIPPI packet carries into the 32 KB FIFO
    #: interfaces; larger requests stream as one packet per request in
    #: the loopback microbenchmark, so the overhead is charged per
    #: request there.
    fifo_bytes: int = 32 * KIB


HIPPI_SPEC = HippiSpec()


@dataclass(frozen=True)
class EthernetSpec:
    """The 10 Mb/s Ethernet on the host workstation."""

    rate_mb_s: float = 1.25  # 10 megabits/second
    #: Fixed protocol-processing cost per packet.  The paper's "an
    #: Ethernet packet takes approximately 0.5 millisecond to transfer"
    #: (Section 2.3) corresponds to a ~625-byte frame at line rate;
    #: splitting that into 0.3 ms fixed + payload at line rate keeps
    #: both small-RPC latency and bulk throughput plausible.
    packet_overhead_s: float = 0.3 * MS
    mtu_bytes: int = 1500


ETHERNET_SPEC = EthernetSpec()


@dataclass(frozen=True)
class WorkstationSpec:
    """A host or client workstation's CPU/memory/backplane model."""

    name: str
    #: Effective memory-system copy bandwidth.  A kernel-to-user copy
    #: makes a read pass and a write pass; DMA makes one pass.  RAID-I
    #: saturated at 2.3 MB/s delivered, i.e. ~3 passes over a ~7 MB/s
    #: memory system (Section 1).
    memory_copy_rate_mb_s: float
    #: "the low backplane bandwidth of the Sun 4/280's system bus ...
    #: becomes saturated at 9 megabytes/second" (Section 1).
    backplane_rate_mb_s: float
    #: CPU cost to field one I/O request/completion (system call,
    #: context switches, interrupt handling).  Fitted to Table 2's
    #: fifteen-disk rates: RAID-II ~400 IO/s -> 2.5 ms; RAID-I ~275
    #: IO/s -> 3.4 ms (extra copy management on the data path).
    per_io_cpu_s: float


SUN_4_280_RAID2 = WorkstationSpec(
    name="Sun 4/280 (RAID-II host)",
    memory_copy_rate_mb_s=7.0,
    backplane_rate_mb_s=9.0,
    per_io_cpu_s=2.5 * MS,
)

SUN_4_280_RAID1 = WorkstationSpec(
    name="Sun 4/280 (RAID-I host)",
    memory_copy_rate_mb_s=7.0,
    backplane_rate_mb_s=9.0,
    per_io_cpu_s=3.4 * MS,
)

#: SPARCstation 10/51 client (Section 3.4): its "user-level network
#: interface implementation performs many copy operations", limiting a
#: single client to ~3.1 MB/s writes and ~3.2 MB/s reads.
SPARCSTATION_10_51 = WorkstationSpec(
    name="SPARCstation 10/51",
    memory_copy_rate_mb_s=9.6,  # three passes -> ~3.2 MB/s delivered
    backplane_rate_mb_s=80.0,
    per_io_cpu_s=1.0 * MS,
)


@dataclass(frozen=True)
class LfsSpec:
    """Sprite-LFS-on-RAID-II parameters (Section 3.4)."""

    #: "The LFS log is interleaved or striped across the disks in units
    #: of 64 kilobytes."
    stripe_unit_bytes: int = 64 * KIB
    #: "The log is written to the disk array in units or segments of
    #: 960 kilobytes."
    segment_bytes: int = 960 * KIB
    block_bytes: int = 4 * KIB
    #: "4 milliseconds of file system overhead" per operation plus
    #: "19 milliseconds of disk overhead" for small random reads
    #: (the 19 ms emerges from the disk model; only the FS part is a
    #: constant here).
    fs_overhead_s: float = 4.0 * MS
    #: "approximately 3 milliseconds of network and file system
    #: overhead per request" for small writes.
    small_write_overhead_s: float = 3.0 * MS
    #: File-system read-ahead: on a sequential access, up to this many
    #: extra blocks are fetched into the XBUS prefetch buffers ("LFS
    #: performs prefetching into XBUS memory buffers ... so small
    #: sequential reads can also benefit", Section 3.2).  0 disables.
    readahead_blocks: int = 32


LFS_SPEC = LfsSpec()
