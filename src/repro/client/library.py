"""The special client library for RAID files (Section 3.2/3.3).

"The fast data path across the Ultranet uses a special library of file
system operations for RAID files: open, read, write, etc.  The library
converts file operations to operations on an Ultranet socket between
the client and the RAID-II server" — applications relink against it;
no client-kernel changes are needed.

:class:`RaidFileClient` is that library: ``open`` performs the socket
setup and server-side name lookup, ``read``/``write`` move bulk data
over the HIPPI path, and ``close`` tears the handle down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.host.workstation import Workstation
from repro.hw.specs import SPARCSTATION_10_51
from repro.net.ultranet import UltranetLink
from repro.sim import Simulator


@dataclass
class _Handle:
    fd: int
    path: str
    open: bool = True


class RaidFileClient:
    """raid_open / raid_read / raid_write / raid_close over the Ultranet."""

    def __init__(self, sim: Simulator, server, workstation=None,
                 name: str = "client"):
        self.sim = sim
        self.server = server
        self.workstation = workstation or Workstation(
            sim, SPARCSTATION_10_51, name=name)
        self.link = UltranetLink(sim, name=f"{name}.ultranet")
        self._handles: dict[int, _Handle] = {}
        self._next_fd = 3

    # ------------------------------------------------------------------
    def open(self, path: str):
        """Process: open a RAID file; returns a file descriptor.

        The library opens a socket to the server, sends the open
        command, and the host resolves the name (Section 3.3).
        """
        yield from self.link.rpc()                      # socket setup
        yield from self.link.rpc()                      # open command
        yield from self.server.host.handle_io()         # host opens file
        exists = yield from self.server.fs.exists(path)
        if not exists:
            yield from self.server.fs.create(path)
        fd = self._next_fd
        self._next_fd += 1
        self._handles[fd] = _Handle(fd, path)
        return fd

    def _handle(self, fd: int) -> _Handle:
        handle = self._handles.get(fd)
        if handle is None or not handle.open:
            raise ProtocolError(f"bad or closed file descriptor {fd}")
        return handle

    def read(self, fd: int, offset: int, nbytes: int):
        """Process: raid_read — bulk data arrives over the HIPPI path."""
        handle = self._handle(fd)
        data = yield from self.server.client_read(
            self.workstation, self.link, handle.path, offset, nbytes)
        return data

    def write(self, fd: int, offset: int, data: bytes):
        """Process: raid_write — bulk data leaves over the HIPPI path."""
        handle = self._handle(fd)
        yield from self.server.client_write(
            self.workstation, self.link, handle.path, offset, data)
        return None

    def close(self, fd: int):
        """Process: close the handle and notify the server."""
        handle = self._handle(fd)
        handle.open = False
        yield from self.link.rpc()
        yield from self.server.host.handle_io()
        return None

    @property
    def open_files(self) -> int:
        return sum(1 for handle in self._handles.values() if handle.open)
