"""The client-side library for RAID-II's high-bandwidth mode."""

from repro.client.library import RaidFileClient

__all__ = ["RaidFileClient"]
