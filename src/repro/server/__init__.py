"""The assembled file servers.

:class:`Raid2Server` is the paper's artefact: a Sun 4/280 host, one or
more XBUS boards with their disk subsystems, HIPPI network ports and
an Ethernet — with RAID 5 and LFS layered on top, and both the
high-bandwidth (HIPPI, host-bypassing) and standard (Ethernet,
through-host) access modes.

:class:`Raid1Server` is the 1989 RAID-I prototype used as the paper's
baseline: the same class of host, but every byte crosses the host's
backplane and memory system, which is why it tops out at
~2.3 MB/s delivered (Section 1).
"""

from repro.server.config import Raid2Config
from repro.server.raid1_server import Raid1Server
from repro.server.raid2 import Raid2Server

__all__ = ["Raid1Server", "Raid2Config", "Raid2Server"]
