"""The RAID-II file server, assembled.

One host workstation, one or more XBUS boards (each with its Cougar/
SCSI/disk subsystem, HIPPI ports and parity engine), a RAID 5
controller per board, and LFS on top.  Service paths:

* **hardware level** (Section 2.3's "hardware system level
  experiments", no file system): data moves disk <-> XBUS memory <->
  HIPPI source -> HIPPI destination -> XBUS memory, pipelined in
  chunks so the network leg overlaps the next disk leg;
* **high-bandwidth mode**: client raid_read/raid_write over the
  Ultranet — bulk data crosses the HIPPI ports and *never touches the
  host memory*; the host only fields control traffic (and, in the
  paper's preliminary driver, polls during reads — modelled by holding
  the host CPU during sends, Section 3.4);
* **standard mode**: requests over Ethernet — data crosses the XBUS
  control port into host memory and out the Ethernet, the classic
  through-the-host path.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import HardwareError
from repro.host.cache import LruBlockCache
from repro.host.workstation import Workstation
from repro.hw.ethernet import Ethernet
from repro.hw.specs import SPARCSTATION_10_51, SUN_4_280_RAID2
from repro.hw.xbus_board import XbusBoard
from repro.lfs import LogStructuredFS
from repro.net.ultranet import UltranetLink
from repro.raid import Raid5Controller
from repro.server.config import Raid2Config
from repro.sim import Simulator
from repro.units import KIB, MIB

#: Pipeline chunk for streaming requests: data is sent on the network
#: while the next chunk is still coming off the disks (Section 3.3).
PIPELINE_CHUNK = 256 * KIB


class XbusParity:
    """Adapter: the board's parity engine as a RAID parity computer."""

    def __init__(self, board: XbusBoard):
        self.board = board

    def compute(self, blocks: Sequence[bytes]):
        parity = yield from self.board.compute_parity(blocks)
        return parity


def _chunks(offset: int, nbytes: int, chunk: int = PIPELINE_CHUNK):
    position = offset
    end = offset + nbytes
    while position < end:
        take = min(chunk, end - position)
        yield position, take
        position += take


class Raid2Server:
    """The RAID-II prototype."""

    def __init__(self, sim: Simulator, config: Optional[Raid2Config] = None,
                 name: str = "raid2"):
        self.sim = sim
        self.config = config or Raid2Config.paper_default()
        self.name = name
        self.host = Workstation(sim, SUN_4_280_RAID2, name=f"{name}.host")
        self.ethernet = Ethernet(sim, name=f"{name}.ether")
        self.boards = [
            XbusBoard(sim, self.config.xbus, name=f"{name}.xbus{index}",
                      retry=self.config.retry)
            for index in range(self.config.boards)
        ]
        # RAID 5 needs at least three disks; configurations that use
        # fewer (single-disk microbenchmarks) expose raw disk paths only.
        self.raids = []
        if self.config.disks_used is None or self.config.disks_used >= 3:
            self.raids = [
                Raid5Controller(
                    sim, board.disk_paths(limit=self.config.disks_used),
                    self.config.stripe_unit_bytes,
                    parity_computer=XbusParity(board),
                    name=f"{name}.raid{index}",
                    retry=self.config.retry)
                for index, board in enumerate(self.boards)
            ]
        self.filesystems: list[LogStructuredFS] = []
        #: "The host memory cache contains ... files that have been
        #: read into workstation memory for transfer over the Ethernet.
        #: The cache is managed with a simple Least Recently Used
        #: replacement policy" (Section 3.2).
        self.host_cache = LruBlockCache(capacity_bytes=16 * MIB,
                                        name=f"{name}.hostcache")

    # ------------------------------------------------------------------
    # convenience accessors (single-board configurations)
    # ------------------------------------------------------------------
    @property
    def board(self) -> XbusBoard:
        return self.boards[0]

    @property
    def raid(self) -> Raid5Controller:
        return self.raids[0]

    @property
    def fs(self) -> LogStructuredFS:
        if not self.filesystems:
            raise HardwareError("run setup_lfs() before using the FS paths")
        return self.filesystems[0]

    def setup_lfs(self):
        """Process: create and format LFS on every board's array.

        Segments are aligned to the array's stripe rows so that each
        full-segment flush is a full-stripe write.
        """
        for index, raid in enumerate(self.raids):
            row_bytes = (raid.layout.data_units_per_row
                         * raid.stripe_unit_bytes)
            fs = LogStructuredFS(
                self.sim, raid, spec=self.config.lfs,
                max_inodes=self.config.max_inodes, host=self.host,
                align_segments_to=row_bytes,
                name=f"{self.name}.lfs{index}")
            yield from fs.format()
            self.filesystems.append(fs)
        return None

    # ------------------------------------------------------------------
    # hardware system level (Figure 5 / Table 1 paths, no file system)
    # ------------------------------------------------------------------
    def hw_read(self, offset: int, nbytes: int, board_index: int = 0):
        """Process: array -> XBUS memory -> HIPPI out -> HIPPI in -> memory.

        The whole request is issued to the array at once (the RAID
        layer fans it out over every disk it touches) while the HIPPI
        loopback streams concurrently — the board's FIFOs let the
        network leg consume data as it lands in memory, so the
        operation finishes with the slower of the two sides.
        """
        board = self.boards[board_index]
        raid = self.raids[board_index]
        with self.sim.tracer.span("server.hw_read", self.name,
                                  nbytes=nbytes):
            legs = [
                self.sim.process(raid.read(offset, nbytes)),
                self.sim.process(board.hippi_loopback(nbytes)),
            ]
            yield self.sim.all_of(legs)
            return None

    def hw_write(self, offset: int, nbytes: int, board_index: int = 0,
                 fill: int = 0x5A):
        """Process: HIPPI in -> XBUS memory -> parity -> array.

        As with reads, the network and array sides stream concurrently.
        """
        board = self.boards[board_index]
        raid = self.raids[board_index]
        payload = bytes([fill]) * nbytes
        with self.sim.tracer.span("server.hw_write", self.name,
                                  nbytes=nbytes):
            legs = [
                self.sim.process(board.hippi_loopback(nbytes)),
                self.sim.process(raid.write(offset, payload)),
            ]
            yield self.sim.all_of(legs)
            return None

    def hw_read_through_host(self, offset: int, nbytes: int,
                             board_index: int = 0):
        """Process: the same read *without* the high-bandwidth path.

        Every chunk crosses the XBUS control port into host memory and
        is then copied to its consumer — the traditional server
        architecture the XBUS exists to avoid.  The host memory system
        becomes the bottleneck, exactly as on RAID-I.
        """
        raid = self.raids[board_index]
        board = self.boards[board_index]
        with self.sim.tracer.span("server.hw_read_through_host", self.name,
                                  nbytes=nbytes):
            for position, take in _chunks(offset, nbytes):
                yield from raid.read(position, take)
                legs = [
                    self.sim.process(board.to_host(take)),
                    self.sim.process(self.host.dma_in(take)),
                ]
                yield self.sim.all_of(legs)
                yield from self.host.copy(take)
            return None

    # ------------------------------------------------------------------
    # high-bandwidth mode (Ultranet / HIPPI clients)
    # ------------------------------------------------------------------
    def client_read(self, client: Workstation, link: UltranetLink,
                    path: str, offset: int, nbytes: int):
        """Process: a raid_read() from a network client.

        Returns the bytes delivered.  The preliminary device driver
        polls: "the host workstation waits while data are being
        transmitted from the source board to the network" (Section
        3.4), so the host CPU is held for each send — with the client's
        copy-bound network stack, this pins single-client reads around
        3 MB/s, as measured.
        """
        with self.sim.tracer.span("server.client_read", self.name,
                                  nbytes=nbytes, path=path):
            yield from link.rpc()
            data = yield from self.fs.read(path, offset, nbytes)
            for position, take in _chunks(0, len(data)):
                yield self.host.cpu.acquire()  # polling driver
                try:
                    legs = [
                        self.sim.process(self.board.send_hippi(take)),
                        self.sim.process(link.data(take)),
                        self.sim.process(client.memory.transfer(3 * take)),
                    ]
                    yield self.sim.all_of(legs)
                finally:
                    self.host.cpu.release()
            return data

    def client_write(self, client: Workstation, link: UltranetLink,
                     path: str, offset: int, data: bytes):
        """Process: a raid_write() from a network client.

        The client's user-level network stack performs three memory
        passes per byte (the copies that limit a SPARCstation 10/51 to
        ~3.1 MB/s); host CPU use is near zero (Section 3.4).
        """
        with self.sim.tracer.span("server.client_write", self.name,
                                  nbytes=len(data), path=path):
            yield from link.rpc()
            pending_write = None
            for position, take in _chunks(0, len(data)):
                legs = [
                    self.sim.process(client.memory.transfer(3 * take)),
                    self.sim.process(link.data(take)),
                    self.sim.process(self.board.receive_hippi(take)),
                ]
                yield self.sim.all_of(legs)
                if pending_write is not None:
                    yield pending_write
                # The file-system work for this chunk overlaps the
                # network legs of the next one (LFS ops themselves
                # serialize on the host, so at most one is in flight).
                pending_write = self.sim.process(self.fs.write(
                    path, offset + position,
                    data[position:position + take]))
            if pending_write is not None:
                yield pending_write
            return None

    # ------------------------------------------------------------------
    # standard mode (Ethernet clients)
    # ------------------------------------------------------------------
    def ethernet_read(self, path: str, offset: int, nbytes: int):
        """Process: an NFS-style read over the Ethernet.

        Data crosses the XBUS control port into host memory, then goes
        out the Ethernet — the low-bandwidth path of Section 2.1.1.
        Ranges already sitting in the host's LRU file cache skip the
        array and the control port entirely (Section 3.2).
        """
        with self.sim.tracer.span("server.ethernet_read", self.name,
                                  nbytes=nbytes, path=path) as span:
            yield from self.host.handle_io()
            cached = self.host_cache.get((path, offset, nbytes))
            if cached is not None:
                span.set(cache="hit")
                yield from self.ethernet.send(len(cached))
                return cached
            data = yield from self.fs.read(path, offset, nbytes)
            legs = [
                self.sim.process(self.board.to_host(len(data))),
                self.sim.process(self.host.dma_in(len(data))),
            ]
            yield self.sim.all_of(legs)
            self.host_cache.put((path, offset, nbytes), data)
            yield from self.ethernet.send(len(data))
            return data

    def ethernet_write(self, path: str, offset: int, data: bytes):
        """Process: an NFS-style write over the Ethernet.

        Keeps the host cache coherent: every cached range of the file
        is dropped ("the file system keeps the two caches consistent",
        Section 3.2).
        """
        with self.sim.tracer.span("server.ethernet_write", self.name,
                                  nbytes=len(data), path=path):
            yield from self.host.handle_io()
            yield from self.ethernet.send(len(data))
            legs = [
                self.sim.process(self.host.dma_out(len(data))),
                self.sim.process(self.board.from_host(len(data))),
            ]
            yield self.sim.all_of(legs)
            self.host_cache.invalidate_where(lambda key: key[0] == path)
            yield from self.fs.write(path, offset, data)
            return None


def make_sparcstation_client(sim: Simulator,
                             name: str = "client") -> Workstation:
    """The paper's single network client: a SPARCstation 10/51."""
    return Workstation(sim, SPARCSTATION_10_51, name=name)
