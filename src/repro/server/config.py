"""Server configurations, including presets for each paper experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.hw.specs import IBM_0661, LFS_SPEC, DiskSpec, LfsSpec
from repro.hw.xbus_board import XbusConfig
from repro.units import KIB


@dataclass(frozen=True)
class Raid2Config:
    """Shape of one RAID-II server instance."""

    boards: int = 1
    xbus: XbusConfig = field(default_factory=XbusConfig)
    #: Use only the first N disk paths of each board (None = all).
    disks_used: Optional[int] = None
    stripe_unit_bytes: int = 64 * KIB
    lfs: LfsSpec = LFS_SPEC
    max_inodes: int = 1024
    #: Transient-error healing for the RAID layer (and, when its
    #: ``op_timeout_s`` is set, the Cougar controllers).  None disables
    #: retries entirely.
    retry: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY

    # ------------------------------------------------------------------
    # presets matching the paper's experimental setups
    # ------------------------------------------------------------------
    @classmethod
    def paper_default(cls, disk_spec: DiskSpec = IBM_0661) -> "Raid2Config":
        """Figure 5's setup: one XBUS board, 4 Cougars, 24 disks, RAID 5."""
        return cls(xbus=XbusConfig(disk_spec=disk_spec))

    @classmethod
    def table1_sequential(cls) -> "Raid2Config":
        """Table 1's setup: a fifth Cougar on the control port (30 disks)."""
        return cls(xbus=XbusConfig(control_cougar=True))

    @classmethod
    def table2_small_io(cls, ndisks: int = 15) -> "Raid2Config":
        """Table 2's setup: ``ndisks`` active disks, one process each."""
        return cls(disks_used=ndisks)

    @classmethod
    def fig8_lfs(cls) -> "Raid2Config":
        """Figure 8's setup: a single XBUS board with 16 disks.

        Sixteen disks = four Cougars with two disks per string, which
        keeps the string-major interleaved order the dip mechanism
        relies on.
        """
        return cls(xbus=XbusConfig(disks_per_string=2))
