"""The 1989 RAID-I prototype — the paper's baseline.

"RAID-I was constructed using a Sun 4/280 workstation with 128
megabytes of memory, four dual-string SCSI controllers, 28 5.25-inch
SCSI disks and specialized disk striping software" (Section 1).

Every byte a client reads crosses the host: disk -> SCSI string ->
controller -> VME backplane DMA into kernel memory -> programmed copy
into user space.  The DMA makes one pass over the memory system and
the copy makes two, so the ~7 MB/s memory system delivers at most
~2.3 MB/s to an application — the number that motivated RAID-II.
"""

from __future__ import annotations

from repro.host.workstation import Workstation
from repro.hw.cougar import CougarController
from repro.hw.disk import DiskDrive
from repro.hw.specs import SEAGATE_WREN_IV, SUN_4_280_RAID1, DiskSpec
from repro.raid import Raid0Controller
from repro.sim import Simulator
from repro.units import KIB, SECTOR_SIZE


class HostedDiskPath:
    """A disk reached through its controller and the host's memory DMA.

    All legs (drive media / SCSI string / controller / backplane /
    host-memory pass) run concurrently per operation — cut-through —
    so contention appears on whichever stage saturates first; for
    RAID-I that is the host memory system.
    """

    def __init__(self, host: Workstation, controller: CougarController,
                 disk: DiskDrive):
        self.host = host
        self.controller = controller
        self.disk = disk

    def read(self, lba: int, nsectors: int):
        sim = self.disk.sim
        nbytes = nsectors * SECTOR_SIZE
        legs = [
            sim.process(self.controller.read(self.disk, lba, nsectors)),
            sim.process(self.host.backplane.transfer(nbytes)),
            sim.process(self.host.memory.transfer(nbytes)),
        ]
        values = yield sim.all_of(legs)
        return values[0]

    def write(self, lba: int, data: bytes):
        sim = self.disk.sim
        legs = [
            sim.process(self.host.memory.transfer(len(data))),
            sim.process(self.host.backplane.transfer(len(data))),
            sim.process(self.controller.write(self.disk, lba, data)),
        ]
        yield sim.all_of(legs)
        return None


class Raid1Server:
    """The RAID-I prototype: striping software on a stock workstation."""

    def __init__(self, sim: Simulator, ndisks: int = 28,
                 disk_spec: DiskSpec = SEAGATE_WREN_IV,
                 stripe_unit_bytes: int = 64 * KIB, name: str = "raid1"):
        self.sim = sim
        self.name = name
        self.host = Workstation(sim, SUN_4_280_RAID1, name=f"{name}.host")
        # Four dual-string SCSI controllers; disks dealt round-robin
        # across the eight strings.
        self.controllers = [
            CougarController(sim, name=f"{name}.ctl{index}")
            for index in range(4)
        ]
        strings = [string for controller in self.controllers
                   for string in controller.strings]
        self.paths: list[HostedDiskPath] = []
        for index in range(ndisks):
            string = strings[index % len(strings)]
            disk = DiskDrive(sim, disk_spec, name=f"{name}.d{index}")
            string.attach(disk)
            controller = self.controllers[(index % len(strings)) // 2]
            self.paths.append(HostedDiskPath(self.host, controller, disk))
        self.raid = Raid0Controller(sim, self.paths, stripe_unit_bytes,
                                    name=f"{name}.stripe")

    def app_read(self, offset: int, nbytes: int):
        """Process: striped read delivered to a user-space application.

        The striping software gathers the data into kernel buffers
        (one memory pass each, inside the disk paths) and then copies
        it to the application (two more passes).
        """
        data = yield from self.raid.read(offset, nbytes)
        yield from self.host.copy(len(data))
        return data

    def app_write(self, offset: int, data: bytes):
        """Process: user-space write through the striping software."""
        yield from self.host.copy(len(data))
        yield from self.raid.write(offset, data)
        return None

    def single_disk_read(self, disk_index: int, lba: int, nsectors: int):
        """Process: one raw disk read delivered to an application."""
        path = self.paths[disk_index]
        data = yield from path.read(lba, nsectors)
        yield from self.host.copy(len(data))
        return data
