"""Striping address math for RAID Levels 0, 1, 3 and 5.

A layout maps a *logical* byte address space onto (disk, LBA) extents.
The logical space is divided into stripe units; a *row* is one unit
across every disk.  For parity layouts one unit per row holds parity.

RAID 5 uses the left-symmetric arrangement: the parity unit of row
``r`` lives on disk ``N - 1 - (r mod N)`` and the row's data units
follow round-robin from the disk after the parity disk.  Consecutive
logical units therefore land on consecutive (mod N) disks, which gives
sequential requests maximum parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RaidError
from repro.units import SECTOR_SIZE


@dataclass(frozen=True)
class Piece:
    """One contiguous slice of a request on one disk.

    ``logical_offset`` is where the piece starts in the logical address
    space; ``unit_offset`` is its byte offset within its stripe unit.
    """

    logical_offset: int
    nbytes: int
    disk: int
    lba: int
    row: int
    unit_offset: int

    @property
    def nsectors(self) -> int:
        return self.nbytes // SECTOR_SIZE


class _StripedLayout:
    """Shared unit/row arithmetic for the unit-striped layouts."""

    def __init__(self, num_disks: int, stripe_unit_bytes: int,
                 disk_capacity_bytes: int, data_units_per_row: int):
        if num_disks < 1:
            raise RaidError(f"need at least one disk, got {num_disks}")
        if stripe_unit_bytes % SECTOR_SIZE != 0 or stripe_unit_bytes <= 0:
            raise RaidError(
                f"stripe unit must be a positive multiple of {SECTOR_SIZE}, "
                f"got {stripe_unit_bytes}")
        if data_units_per_row < 1:
            raise RaidError("layout must have at least one data unit per row")
        self.num_disks = num_disks
        self.stripe_unit_bytes = stripe_unit_bytes
        self.data_units_per_row = data_units_per_row
        self.unit_sectors = stripe_unit_bytes // SECTOR_SIZE
        self.rows = disk_capacity_bytes // stripe_unit_bytes

    @property
    def capacity_bytes(self) -> int:
        """Usable logical capacity."""
        return self.rows * self.data_units_per_row * self.stripe_unit_bytes

    def row_lba(self, row: int) -> int:
        return row * self.unit_sectors

    def data_disk(self, row: int, k: int) -> int:
        """Disk holding the ``k``-th data unit of ``row``."""
        raise NotImplementedError

    def parity_disk(self, row: int) -> int | None:
        """Disk holding ``row``'s parity unit, or None for no parity."""
        return None

    def check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes <= 0:
            raise RaidError(f"bad range: offset={offset} nbytes={nbytes}")
        if offset % SECTOR_SIZE or nbytes % SECTOR_SIZE:
            raise RaidError(
                f"range must be {SECTOR_SIZE}-byte aligned: "
                f"offset={offset} nbytes={nbytes}")
        if offset + nbytes > self.capacity_bytes:
            raise RaidError(
                f"range [{offset}, {offset + nbytes}) exceeds capacity "
                f"{self.capacity_bytes}")

    def map_data(self, offset: int, nbytes: int) -> list[Piece]:
        """Split a logical range into per-disk pieces (unit granularity)."""
        self.check_range(offset, nbytes)
        unit = self.stripe_unit_bytes
        pieces: list[Piece] = []
        position = offset
        end = offset + nbytes
        while position < end:
            unit_index = position // unit
            unit_offset = position % unit
            take = min(unit - unit_offset, end - position)
            row = unit_index // self.data_units_per_row
            k = unit_index % self.data_units_per_row
            disk = self.data_disk(row, k)
            lba = self.row_lba(row) + unit_offset // SECTOR_SIZE
            pieces.append(Piece(
                logical_offset=position, nbytes=take, disk=disk, lba=lba,
                row=row, unit_offset=unit_offset))
            position += take
        return pieces

    def rows_of(self, offset: int, nbytes: int) -> range:
        """Rows spanned by a logical range."""
        self.check_range(offset, nbytes)
        row_bytes = self.data_units_per_row * self.stripe_unit_bytes
        first = offset // row_bytes
        last = (offset + nbytes - 1) // row_bytes
        return range(first, last + 1)

    def logical_offset_of_unit(self, row: int, k: int) -> int:
        """Logical byte address where data unit (row, k) begins."""
        return (row * self.data_units_per_row + k) * self.stripe_unit_bytes


class Raid0Layout(_StripedLayout):
    """Plain striping: no redundancy, all disks hold data."""

    def __init__(self, num_disks: int, stripe_unit_bytes: int,
                 disk_capacity_bytes: int):
        super().__init__(num_disks, stripe_unit_bytes, disk_capacity_bytes,
                         data_units_per_row=num_disks)

    def data_disk(self, row: int, k: int) -> int:
        return k


class Raid5Layout(_StripedLayout):
    """Left-symmetric rotated parity over one parity group."""

    def __init__(self, num_disks: int, stripe_unit_bytes: int,
                 disk_capacity_bytes: int):
        if num_disks < 3:
            raise RaidError(f"RAID 5 needs >= 3 disks, got {num_disks}")
        super().__init__(num_disks, stripe_unit_bytes, disk_capacity_bytes,
                         data_units_per_row=num_disks - 1)

    def parity_disk(self, row: int) -> int:
        return self.num_disks - 1 - (row % self.num_disks)

    def data_disk(self, row: int, k: int) -> int:
        parity = self.parity_disk(row)
        return (parity + 1 + k) % self.num_disks


class Raid1Layout(_StripedLayout):
    """Mirrored striping: disks form primary/mirror halves.

    Data is striped RAID-0 style over the first half; disk ``i`` is
    mirrored by disk ``i + num_disks/2``.
    """

    def __init__(self, num_disks: int, stripe_unit_bytes: int,
                 disk_capacity_bytes: int):
        if num_disks < 2 or num_disks % 2 != 0:
            raise RaidError(
                f"RAID 1 needs an even number of disks >= 2, got {num_disks}")
        super().__init__(num_disks, stripe_unit_bytes, disk_capacity_bytes,
                         data_units_per_row=num_disks // 2)

    def data_disk(self, row: int, k: int) -> int:
        return k

    def mirror_of(self, disk: int) -> int:
        half = self.num_disks // 2
        return disk + half if disk < half else disk - half


class Raid3Layout(_StripedLayout):
    """Byte/bit-interleaved striping with a dedicated parity disk.

    Modelled at sector granularity: logical sector ``s`` lives on data
    disk ``s mod (N-1)``; disk ``N-1`` holds parity for every row.
    Every access engages all data disks, and the controller serializes
    whole operations, reproducing Level 3's one-I/O-at-a-time
    behaviour (Section 4.2).
    """

    def __init__(self, num_disks: int, disk_capacity_bytes: int):
        if num_disks < 3:
            raise RaidError(f"RAID 3 needs >= 3 disks, got {num_disks}")
        super().__init__(num_disks, SECTOR_SIZE, disk_capacity_bytes,
                         data_units_per_row=num_disks - 1)

    def parity_disk(self, row: int) -> int:
        return self.num_disks - 1

    def data_disk(self, row: int, k: int) -> int:
        return k
