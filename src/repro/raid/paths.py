"""Disk-path adapters for the RAID layer.

A RAID controller is written against a minimal *disk path* protocol —
an object with ``read(lba, nsectors)`` / ``write(lba, data)``
simulation processes and a ``disk`` attribute.  The XBUS board
provides :class:`repro.hw.xbus_board.XbusDiskPath` (the full
disk->string->Cougar->VME->memory route); this module provides
:class:`DirectDiskPath`, which talks to a bare drive — used by RAID
unit tests and by hosts whose disks hang directly off the backplane
(the RAID-I prototype).
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from repro.hw.disk import DiskDrive
from repro.units import SECTOR_SIZE


class DiskPath(Protocol):
    """What the RAID controller needs from a disk route."""

    disk: DiskDrive

    def read(self, lba: int, nsectors: int) -> Any:
        """Simulation process returning the bytes read."""

    def write(self, lba: int, data: bytes) -> Any:
        """Simulation process writing ``data`` at ``lba``."""


class DirectDiskPath:
    """A path straight to the drive, optionally through shared channels.

    ``extra_channels`` (e.g. a host backplane) are crossed concurrently
    with the disk transfer, modelling DMA cut-through.
    """

    def __init__(self, disk: DiskDrive, extra_channels: Optional[list] = None):
        self.disk = disk
        self.extra_channels = list(extra_channels or [])

    @property
    def name(self) -> str:
        return self.disk.name

    def read(self, lba: int, nsectors: int):
        sim = self.disk.sim
        legs = [sim.process(self.disk.read(lba, nsectors))]
        nbytes = nsectors * SECTOR_SIZE
        for channel in self.extra_channels:
            legs.append(sim.process(channel.transfer(nbytes)))
        values = yield sim.all_of(legs)
        return values[0]

    def write(self, lba: int, data: bytes):
        sim = self.disk.sim
        legs = [sim.process(self.disk.write(lba, data))]
        for channel in self.extra_channels:
            legs.append(sim.process(channel.transfer(len(data))))
        yield sim.all_of(legs)
        return None
