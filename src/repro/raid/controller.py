"""RAID controllers: timed, byte-accurate striping with redundancy.

The controllers drive disk paths (see :mod:`repro.raid.paths`) and
implement the real algorithms:

* **RAID 0** — striping only.
* **RAID 1** — mirrored striping; reads alternate between copies.
* **RAID 5** — rotated parity with the classic write paths: a write
  covering a full row is a *full-stripe write* (parity computed over
  the new data, no old data read — the efficient large write the
  paper's Section 3.1 relies on); anything smaller is a
  *read-modify-write* costing the notorious four accesses (read old
  data + old parity, write new data + new parity).  Degraded reads and
  writes reconstruct through parity, and a failed disk can be rebuilt
  byte-for-byte.
* **RAID 3** — sector-interleaved with a dedicated parity disk; every
  access engages all data disks and the whole array is locked per
  operation, reproducing Level 3's one-I/O-at-a-time behaviour that
  Section 4.2 contrasts with RAID-II's Level 5.

Parity arithmetic is performed by a pluggable *parity computer* so the
same controller code can use the XBUS board's timed parity engine, a
host-software XOR (charged to the host memory system), or an instant
XOR for functional tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import (DiskFailedError, MediumError, RaidError,
                          TransientDiskError, UnrecoverableArrayError)
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.hw.parity import xor_blocks
from repro.raid.layout import (Piece, Raid0Layout, Raid1Layout, Raid3Layout,
                               Raid5Layout, _StripedLayout)
from repro.sim import Resource, Simulator
from repro.units import SECTOR_SIZE


class InstantParity:
    """Zero-time XOR, for functional tests of the RAID algorithms."""

    def compute(self, blocks: Sequence[bytes]):
        return xor_blocks(blocks)
        yield  # pragma: no cover - makes this a generator


class SoftwareParity:
    """XOR performed by host software across a memory channel.

    Used by hosts without a parity engine (the RAID-I prototype): the
    traffic (inputs plus result) crosses the given bandwidth channel.
    """

    def __init__(self, channel):
        self.channel = channel

    def compute(self, blocks: Sequence[bytes]):
        parity = xor_blocks(blocks)
        traffic = sum(len(block) for block in blocks) + len(parity)
        yield from self.channel.transfer(traffic)
        return parity


class _BaseController:
    """Mapping, assembly and shared plumbing for all RAID levels."""

    def __init__(self, sim: Simulator, paths: Sequence, layout: _StripedLayout,
                 name: str = "raid",
                 retry: Optional[RetryPolicy] = None):
        if len(paths) != layout.num_disks:
            raise RaidError(
                f"layout expects {layout.num_disks} disks, got {len(paths)}")
        self.sim = sim
        self.paths = list(paths)
        self.layout = layout
        self.name = name
        #: Transient-error retry policy (None disables retries).
        self.retry = retry
        self.degraded_reads = 0
        self.degraded_writes = 0
        self.media_error_heals = 0
        self.transient_retries = 0
        metrics = sim.metrics
        self._m_degraded_reads = metrics.counter(name, "degraded_reads")
        self._m_degraded_writes = metrics.counter(name, "degraded_writes")
        self._m_media_error_heals = metrics.counter(name,
                                                    "media_error_heals")
        self._m_transient_retries = metrics.counter(name,
                                                    "transient_retries")
        self._m_rebuilt_rows = metrics.counter(name, "rebuilt_rows")

    @property
    def capacity_bytes(self) -> int:
        return self.layout.capacity_bytes

    @property
    def stripe_unit_bytes(self) -> int:
        return self.layout.stripe_unit_bytes

    # ------------------------------------------------------------------
    # timed reads (common shape; degraded handling per level)
    # ------------------------------------------------------------------
    def read(self, offset: int, nbytes: int):
        """Process: read a logical range; returns the bytes."""
        with self.sim.tracer.span("raid.read", self.name, nbytes=nbytes,
                                  offset=offset):
            pieces = self.layout.map_data(offset, nbytes)
            procs = [self.sim.process(self._read_piece(piece),
                                      name="piece-read")
                     for piece in pieces]
            values = yield self.sim.all_of(procs)
            return b"".join(values)

    def _read_piece(self, piece: Piece):
        path = self.paths[piece.disk]
        if path.disk.failed:
            data = yield from self._degraded_read(piece)
            return data
        try:
            data = yield from path.read(piece.lba, piece.nsectors)
            return data
        except DiskFailedError:
            data = yield from self._degraded_read(piece)
            return data

    def _degraded_read(self, piece: Piece):
        raise UnrecoverableArrayError(
            f"{self.name}: disk {piece.disk} failed and this level has "
            "no redundancy")
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # retried unit I/O (shared by the redundant levels)
    # ------------------------------------------------------------------
    def _read_unit(self, disk: int, lba: int, nsectors: int):
        """Process: one unit read, retrying transient errors.

        Hard errors (``DiskFailedError``, ``MediumError``) propagate to
        the caller, which routes them through redundancy.
        """
        policy = self.retry
        if policy is None:
            data = yield from self.paths[disk].read(lba, nsectors)
            return data
        backoff = policy.backoff_s
        for attempt in range(1, policy.max_attempts + 1):
            try:
                data = yield from self.paths[disk].read(lba, nsectors)
                return data
            except TransientDiskError:
                self.transient_retries += 1
                self._m_transient_retries.inc()
                if attempt == policy.max_attempts:
                    raise
            yield self.sim.timeout(backoff)
            backoff *= policy.backoff_factor

    def _data_write(self, disk: int, lba: int, payload,
                    tolerate_failure: bool = True):
        """Process: one unit write, retrying transient errors.

        With ``tolerate_failure`` (the default) a dead disk swallows
        the write — correct wherever redundancy covers the lost bytes
        (parity computed over the *new* data, or a surviving mirror).
        Rebuild writes pass ``False``: losing the replacement must
        abort the rebuild, not silently complete it.
        """
        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        backoff = policy.backoff_s if policy is not None else 0.0
        for attempt in range(1, attempts + 1):
            try:
                yield from self.paths[disk].write(lba, payload)
                return None
            except DiskFailedError:
                if not tolerate_failure:
                    raise
                self.degraded_writes += 1
                self._m_degraded_writes.inc()
                return None
            except TransientDiskError:
                self.transient_retries += 1
                self._m_transient_retries.inc()
                if attempt == attempts:
                    raise
            yield self.sim.timeout(backoff)
            backoff *= policy.backoff_factor

    # ------------------------------------------------------------------
    # instantaneous verification helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int, nbytes: int) -> bytes:
        """Assemble a logical range straight from the disk stores."""
        pieces = self.layout.map_data(offset, nbytes)
        return b"".join(
            self.paths[p.disk].disk.peek(p.lba, p.nsectors) for p in pieces)


class Raid0Controller(_BaseController):
    """Striping without redundancy."""

    def __init__(self, sim: Simulator, paths: Sequence,
                 stripe_unit_bytes: int, name: str = "raid0"):
        capacity = min(path.disk.spec.capacity_bytes for path in paths)
        layout = Raid0Layout(len(paths), stripe_unit_bytes, capacity)
        super().__init__(sim, paths, layout, name)

    def write(self, offset: int, data: bytes):
        """Process: write a logical range."""
        with self.sim.tracer.span("raid.write", self.name,
                                  nbytes=len(data), offset=offset):
            pieces = self.layout.map_data(offset, len(data))
            view = memoryview(data)  # pieces are views; disks copy at poke
            procs = []
            for piece in pieces:
                start = piece.logical_offset - offset
                payload = view[start:start + piece.nbytes]
                procs.append(self.sim.process(
                    self.paths[piece.disk].write(piece.lba, payload)))
            yield self.sim.all_of(procs)
            return None


class Raid1Controller(_BaseController):
    """Mirrored striping; reads alternate between the two copies."""

    def __init__(self, sim: Simulator, paths: Sequence,
                 stripe_unit_bytes: int, name: str = "raid1",
                 retry: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY):
        capacity = min(path.disk.spec.capacity_bytes for path in paths)
        layout = Raid1Layout(len(paths), stripe_unit_bytes, capacity)
        super().__init__(sim, paths, layout, name, retry=retry)
        self._layout1 = layout
        self._toggle = 0

    def _pick_copy(self, primary: int) -> int:
        mirror = self._layout1.mirror_of(primary)
        primary_ok = not self.paths[primary].disk.failed
        mirror_ok = not self.paths[mirror].disk.failed
        if primary_ok and mirror_ok:
            self._toggle ^= 1
            return primary if self._toggle else mirror
        if primary_ok:
            return primary
        if mirror_ok:
            return mirror
        raise UnrecoverableArrayError(
            f"{self.name}: both copies of disk {primary} failed")

    def _read_piece(self, piece: Piece):
        disk = self._pick_copy(piece.disk)
        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        backoff = policy.backoff_s if policy is not None else 0.0
        for attempt in range(1, attempts + 1):
            try:
                data = yield from self.paths[disk].read(piece.lba,
                                                        piece.nsectors)
                return data
            except DiskFailedError:
                data = yield from self._fallback_read(piece, disk)
                return data
            except MediumError:
                data = yield from self._fallback_read(piece, disk,
                                                      heal=True)
                return data
            except TransientDiskError:
                self.transient_retries += 1
                self._m_transient_retries.inc()
                if attempt == attempts:
                    data = yield from self._fallback_read(piece, disk)
                    return data
            yield self.sim.timeout(backoff)
            backoff *= policy.backoff_factor

    def _fallback_read(self, piece: Piece, bad_disk: int,
                       heal: bool = False):
        """Process: serve a piece from the other copy; heal on the way.

        ``heal`` rewrites the bad copy's extent with the good bytes
        (best-effort) after a medium error — the drive remaps the bad
        sectors on write.
        """
        self.degraded_reads += 1
        self._m_degraded_reads.inc()
        other = self._layout1.mirror_of(bad_disk)
        if self.paths[other].disk.failed:
            raise UnrecoverableArrayError(
                f"{self.name}: both copies of disk {piece.disk} failed")
        data = yield from self._read_unit(other, piece.lba, piece.nsectors)
        if heal and not self.paths[bad_disk].disk.failed:
            try:
                yield from self.paths[bad_disk].write(piece.lba, data)
                self.media_error_heals += 1
                self._m_media_error_heals.inc()
            except (DiskFailedError, TransientDiskError):
                pass
        return data

    def write(self, offset: int, data: bytes):
        """Process: write both copies of every piece in parallel."""
        with self.sim.tracer.span("raid.write", self.name,
                                  nbytes=len(data), offset=offset):
            pieces = self.layout.map_data(offset, len(data))
            view = memoryview(data)  # pieces are views; disks copy at poke
            procs = []
            for piece in pieces:
                start = piece.logical_offset - offset
                payload = view[start:start + piece.nbytes]
                for disk in (piece.disk,
                             self._layout1.mirror_of(piece.disk)):
                    if self.paths[disk].disk.failed:
                        continue
                    procs.append(self.sim.process(
                        self._data_write(disk, piece.lba, payload)))
            if not procs:
                raise UnrecoverableArrayError(
                    f"{self.name}: no surviving copy to write")
            yield self.sim.all_of(procs)
            return None

    def rebuild(self, disk_index: int, max_rows: Optional[int] = None):
        """Process: copy a replacement disk's contents from its mirror."""
        source = self._layout1.mirror_of(disk_index)
        if self.paths[source].disk.failed:
            raise UnrecoverableArrayError(
                f"{self.name}: mirror of disk {disk_index} also failed")
        rows = self.layout.rows if max_rows is None else min(
            self.layout.rows, max_rows)
        with self.sim.tracer.span("raid.rebuild", self.name,
                                  disk=disk_index, rows=rows):
            for row in range(rows):
                lba = self.layout.row_lba(row)
                data = yield from self._read_unit(
                    source, lba, self.layout.unit_sectors)
                yield from self._data_write(disk_index, lba, data,
                                            tolerate_failure=False)
                self._m_rebuilt_rows.inc()
            return None


class Raid5Controller(_BaseController):
    """Left-symmetric RAID 5 over one parity group."""

    def __init__(self, sim: Simulator, paths: Sequence,
                 stripe_unit_bytes: int, parity_computer=None,
                 name: str = "raid5",
                 retry: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY):
        capacity = min(path.disk.spec.capacity_bytes for path in paths)
        layout = Raid5Layout(len(paths), stripe_unit_bytes, capacity)
        super().__init__(sim, paths, layout, name, retry=retry)
        self._layout5 = layout
        self.parity = parity_computer if parity_computer is not None \
            else InstantParity()
        self._row_locks: dict[int, Resource] = {}
        #: disk index -> first row NOT yet rebuilt.  While a replaced
        #: disk is rebuilding, rows at or past the frontier are treated
        #: as unavailable (their on-disk contents are blank) and served
        #: through reconstruction instead.
        self._rebuild_frontier: dict[int, int] = {}
        self.full_stripe_writes = 0
        self.rmw_writes = 0
        self.reconstruct_writes = 0

    # ------------------------------------------------------------------
    def _row_lock(self, row: int) -> Resource:
        lock = self._row_locks.get(row)
        if lock is None:
            lock = Resource(self.sim, capacity=1, name=f"{self.name}.row{row}")
            self._row_locks[row] = lock
        return lock

    def _row_disks(self, row: int) -> list[int]:
        """All disks holding a unit of ``row`` (data plus parity)."""
        parity = self._layout5.parity_disk(row)
        data = [self._layout5.data_disk(row, k)
                for k in range(self.layout.data_units_per_row)]
        return data + [parity]

    def _unavailable(self, disk: int, row: int) -> bool:
        """True when ``disk``'s copy of ``row`` cannot be trusted:
        the disk failed, or it is a replacement whose rebuild has not
        reached that row yet."""
        if self.paths[disk].disk.failed:
            return True
        frontier = self._rebuild_frontier.get(disk)
        return frontier is not None and row >= frontier

    def _surviving(self, disks: list[int], exclude: int,
                   row: int) -> list[int]:
        result = []
        for disk in disks:
            if disk == exclude:
                continue
            if self._unavailable(disk, row):
                raise UnrecoverableArrayError(
                    f"{self.name}: second failure on disk {disk}")
            result.append(disk)
        return result

    def _read_piece(self, piece: Piece):
        if self._unavailable(piece.disk, piece.row):
            data = yield from self._degraded_read(piece)
            return data
        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        backoff = policy.backoff_s if policy is not None else 0.0
        for attempt in range(1, attempts + 1):
            try:
                data = yield from self.paths[piece.disk].read(piece.lba,
                                                              piece.nsectors)
                return data
            except DiskFailedError:
                data = yield from self._degraded_read(piece)
                return data
            except MediumError:
                data = yield from self._heal_read(piece)
                return data
            except TransientDiskError:
                self.transient_retries += 1
                self._m_transient_retries.inc()
                if attempt == attempts:
                    data = yield from self._degraded_read(piece)
                    return data
            yield self.sim.timeout(backoff)
            backoff *= policy.backoff_factor

    # ------------------------------------------------------------------
    # degraded read: XOR of every other unit in the row
    # ------------------------------------------------------------------
    def _degraded_read(self, piece: Piece):
        self.degraded_reads += 1
        self._m_degraded_reads.inc()
        data = yield from self._reconstruct_range(
            piece.row, piece.disk,
            piece.unit_offset // SECTOR_SIZE, piece.nsectors)
        return data

    def _heal_read(self, piece: Piece):
        """Process: reconstruct past a medium error, then write back.

        The write-back (best-effort) heals the latent sectors — the
        drive remaps them on write — so subsequent reads go direct.
        """
        data = yield from self._degraded_read(piece)
        if not self.paths[piece.disk].disk.failed:
            try:
                yield from self.paths[piece.disk].write(piece.lba, data)
                self.media_error_heals += 1
                self._m_media_error_heals.inc()
            except (DiskFailedError, TransientDiskError):
                pass
        return data

    def _reconstruct_range(self, row: int, failed_disk: int,
                           sector_offset: int, nsectors: int):
        """Process: rebuild ``nsectors`` of ``failed_disk``'s unit in ``row``."""
        others = self._surviving(self._row_disks(row), failed_disk, row)
        lba = self.layout.row_lba(row) + sector_offset
        procs = [self.sim.process(self._read_unit(disk, lba, nsectors))
                 for disk in others]
        blocks = yield self.sim.all_of(procs)
        parity = yield from self.parity.compute(blocks)
        return parity

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write(self, offset: int, data: bytes):
        """Process: write a logical range with parity maintenance."""
        with self.sim.tracer.span("raid.write", self.name,
                                  nbytes=len(data), offset=offset):
            pieces = self.layout.map_data(offset, len(data))
            data = memoryview(data)  # sliced (never copied) on the way down
            by_row: dict[int, list[Piece]] = {}
            for piece in pieces:
                by_row.setdefault(piece.row, []).append(piece)
            procs = [
                self.sim.process(
                    self._write_row(row, row_pieces, offset, data),
                    name=f"{self.name}.row{row}.write")
                for row, row_pieces in by_row.items()
            ]
            yield self.sim.all_of(procs)
            return None

    def _payload_of(self, piece: Piece, offset: int,
                    data: memoryview) -> memoryview:
        start = piece.logical_offset - offset
        return data[start:start + piece.nbytes]

    def _write_row(self, row: int, pieces: list[Piece], offset: int,
                   data: bytes):
        covered = sum(piece.nbytes for piece in pieces)
        with self.sim.tracer.span("raid.write_row", self.name,
                                  nbytes=covered, row=row) as span:
            lock = self._row_lock(row)
            yield lock.acquire()
            try:
                row_bytes = (self.layout.data_units_per_row
                             * self.layout.stripe_unit_bytes)
                if covered == row_bytes:
                    span.set(strategy="full_stripe")
                    yield from self._full_stripe_write(row, pieces, offset,
                                                       data)
                else:
                    yield from self._partial_write(row, pieces, offset, data)
            finally:
                lock.release()
            return None

    def _write_with_parity(self, data_writes, parity_disk: int,
                           parity_lba: int, parity_blocks):
        """Process: run data writes concurrently with the parity
        computation; the parity write starts as soon as the engine
        finishes (the crossbar streamed all three concurrently)."""
        procs = list(data_writes)
        parity_proc = self.sim.process(self.parity.compute(parity_blocks))

        def parity_then_write():
            parity_block = yield parity_proc
            if not self.paths[parity_disk].disk.failed:
                yield from self._data_write(parity_disk, parity_lba,
                                            parity_block)

        procs.append(self.sim.process(parity_then_write()))
        yield self.sim.all_of(procs)
        return None

    def _full_stripe_write(self, row: int, pieces: list[Piece], offset: int,
                           data: bytes):
        self.full_stripe_writes += 1
        layout = self._layout5
        ordered = sorted(pieces, key=lambda p: p.logical_offset)
        unit_payloads = [self._payload_of(piece, offset, data)
                         for piece in ordered]
        parity_disk = layout.parity_disk(row)
        lba = self.layout.row_lba(row)
        data_writes = [
            self.sim.process(self._data_write(piece.disk, piece.lba,
                                              payload))
            for piece, payload in zip(ordered, unit_payloads)
            if not self.paths[piece.disk].disk.failed
        ]
        yield from self._write_with_parity(data_writes, parity_disk, lba,
                                           unit_payloads)
        return None

    def _partial_write(self, row: int, pieces: list[Piece], offset: int,
                       data: bytes):
        layout = self._layout5
        parity_disk = layout.parity_disk(row)
        parity_failed = self._unavailable(parity_disk, row)
        target_failed = any(self._unavailable(p.disk, row) for p in pieces)

        if parity_failed and target_failed:
            raise UnrecoverableArrayError(
                f"{self.name}: write to row {row} lost both a data disk "
                "and the parity disk")
        if parity_failed:
            # No parity to maintain: just write the surviving data.
            procs = [
                self.sim.process(self._data_write(
                    p.disk, p.lba, self._payload_of(p, offset, data)))
                for p in pieces
            ]
            yield self.sim.all_of(procs)
            return None
        if target_failed or self._any_row_disk_failed(row):
            yield from self._degraded_row_write(row, pieces, offset, data)
            return None
        # Choose the cheaper healthy-path update: the classic
        # read-modify-write touches the written extents plus parity,
        # while a reconstruct-write reads only the *untouched* units.
        row_bytes = (self.layout.data_units_per_row
                     * self.layout.stripe_unit_bytes)
        covered = sum(piece.nbytes for piece in pieces)
        try:
            if covered * 2 > row_bytes:
                yield from self._reconstruct_write(row, pieces, offset, data)
            else:
                yield from self._rmw_write(row, pieces, offset, data)
        except (DiskFailedError, MediumError):
            # A disk died (or surfaced a latent error) under the
            # healthy-path update, before any new data landed on it.
            # Redo the row degraded: any already-spawned sibling writes
            # carry identical bytes, so the redo is idempotent.
            yield from self._degraded_row_write(row, pieces, offset, data)
        return None

    def _any_row_disk_failed(self, row: int) -> bool:
        return any(self._unavailable(d, row) for d in self._row_disks(row))

    def _rmw_write(self, row: int, pieces: list[Piece], offset: int,
                   data: bytes):
        """The classic four-access small write.

        Reads the old data and the old parity over the union of the
        written intra-unit ranges, computes ``new parity = old parity
        XOR old data XOR new data``, then writes new data and parity.
        """
        self.rmw_writes += 1
        layout = self._layout5
        parity_disk = layout.parity_disk(row)
        lo = min(piece.unit_offset for piece in pieces)
        hi = max(piece.unit_offset + piece.nbytes for piece in pieces)
        parity_lba = self.layout.row_lba(row) + lo // SECTOR_SIZE
        parity_sectors = (hi - lo) // SECTOR_SIZE

        read_procs = [self.sim.process(
            self._read_unit(piece.disk, piece.lba, piece.nsectors))
            for piece in pieces]
        read_procs.append(self.sim.process(
            self._read_unit(parity_disk, parity_lba, parity_sectors)))
        old_values = yield self.sim.all_of(read_procs)
        old_data, old_parity = old_values[:-1], old_values[-1]

        # Build equal-length delta blocks over [lo, hi) and XOR them
        # with the old parity; the parity computer charges the engine
        # traffic for the combination.
        deltas = []
        for piece, old in zip(pieces, old_data):
            new = self._payload_of(piece, offset, data)
            delta = bytearray(hi - lo)
            at = piece.unit_offset - lo
            delta[at:at + piece.nbytes] = xor_blocks([old, new])
            deltas.append(delta)

        data_writes = [self.sim.process(
            self._data_write(piece.disk, piece.lba,
                             self._payload_of(piece, offset, data)))
            for piece in pieces]
        yield from self._write_with_parity(
            data_writes, parity_disk, parity_lba, [old_parity] + deltas)
        return None

    def _reconstruct_write(self, row: int, pieces: list[Piece], offset: int,
                           data: bytes):
        """Large partial-row write: read the untouched units, compute
        fresh parity over the whole row, write the new data and parity.

        Cheaper than RMW when the write covers more than half the row —
        the case for big requests that straddle a row boundary.
        """
        layout = self._layout5
        unit = self.layout.stripe_unit_bytes
        parity_disk = layout.parity_disk(row)
        lba = self.layout.row_lba(row)
        nsectors = self.layout.unit_sectors

        by_unit: dict[int, list[Piece]] = {}
        for piece in pieces:
            k = self._unit_index_in_row(row, piece.disk)
            by_unit.setdefault(k, []).append(piece)

        # The new data can start flowing to its disks immediately — the
        # reads needed for parity touch *different* (untouched) disks.
        fully_covered = {
            k for k, unit_pieces in by_unit.items()
            if sum(p.nbytes for p in unit_pieces) == unit
        }
        data_writes = [self.sim.process(
            self._data_write(piece.disk, piece.lba,
                             self._payload_of(piece, offset, data)))
            for piece in pieces
            if self._unit_index_in_row(row, piece.disk) in fully_covered]

        fetch_units = [
            k for k in range(self.layout.data_units_per_row)
            if k not in fully_covered
        ]
        read_procs = [self.sim.process(
            self._read_unit(layout.data_disk(row, k), lba, nsectors))
            for k in fetch_units]
        old_blocks = yield self.sim.all_of(read_procs)

        images: list[bytearray] = [bytearray(unit)
                                   for _ in range(self.layout.data_units_per_row)]
        for k, block in zip(fetch_units, old_blocks):
            images[k][:] = block
        for k, unit_pieces in by_unit.items():
            for piece in unit_pieces:
                payload = self._payload_of(piece, offset, data)
                images[k][piece.unit_offset:piece.unit_offset
                          + piece.nbytes] = payload
        final = images  # disks and parity engine take bytearrays as-is

        # Partially-covered units rewrite their new extents now that
        # their old contents have been captured.
        data_writes += [self.sim.process(
            self._data_write(piece.disk, piece.lba,
                             self._payload_of(piece, offset, data)))
            for piece in pieces
            if self._unit_index_in_row(row, piece.disk) not in fully_covered]
        yield from self._write_with_parity(data_writes, parity_disk, lba,
                                           final)
        return None

    def _degraded_row_write(self, row: int, pieces: list[Piece], offset: int,
                            data: bytes):
        """Reconstruct-write: rebuild the whole row image, then rewrite.

        Used whenever any disk in the row is down: old units are
        fetched (reconstructing the failed one through the *old*
        parity), the new data is overlaid, fresh parity is computed
        over the full row, and every surviving changed unit plus the
        parity is written.
        """
        layout = self._layout5
        unit = self.layout.stripe_unit_bytes
        parity_disk = layout.parity_disk(row)
        lba = self.layout.row_lba(row)
        nsectors = self.layout.unit_sectors

        self.degraded_writes += 1
        self._m_degraded_writes.inc()
        units: list[bytes] = []  # old images, kept to skip unchanged units
        for k in range(self.layout.data_units_per_row):
            disk = layout.data_disk(row, k)
            if self._unavailable(disk, row):
                block = yield from self._reconstruct_range(row, disk, 0,
                                                           nsectors)
            else:
                try:
                    block = yield from self._read_unit(disk, lba, nsectors)
                except (DiskFailedError, MediumError):
                    block = yield from self._reconstruct_range(row, disk, 0,
                                                               nsectors)
            units.append(block)

        images = [bytearray(block) for block in units]
        for piece in pieces:
            k = self._unit_index_in_row(row, piece.disk)
            payload = self._payload_of(piece, offset, data)
            images[k][piece.unit_offset:piece.unit_offset + piece.nbytes] = \
                payload
        final = images  # compared/written as-is; disks copy at poke
        parity_block = yield from self.parity.compute(final)

        procs = []
        for k in range(self.layout.data_units_per_row):
            disk = layout.data_disk(row, k)
            if self.paths[disk].disk.failed:
                continue
            if final[k] == units[k]:
                continue  # unchanged unit
            procs.append(self.sim.process(
                self._data_write(disk, lba, final[k])))
        procs.append(self.sim.process(
            self._data_write(parity_disk, lba, parity_block)))
        yield self.sim.all_of(procs)
        return None

    def _unit_index_in_row(self, row: int, disk: int) -> int:
        layout = self._layout5
        for k in range(self.layout.data_units_per_row):
            if layout.data_disk(row, k) == disk:
                return k
        raise RaidError(f"disk {disk} holds no data unit in row {row}")

    # ------------------------------------------------------------------
    # rebuild and verification
    # ------------------------------------------------------------------
    def rebuild(self, disk_index: int, max_rows: Optional[int] = None):
        """Process: reconstruct a replaced disk's every unit from peers.

        While the rebuild runs, a *frontier* marks how far it has got:
        reads and writes treat the un-rebuilt remainder of the disk as
        unavailable and fall back to reconstruction, so clients can keep
        operating at full correctness throughout.  Each row is rebuilt
        under its row lock so concurrent writes serialize cleanly.
        """
        rows = self.layout.rows if max_rows is None else min(
            self.layout.rows, max_rows)
        nsectors = self.layout.unit_sectors
        self._rebuild_frontier[disk_index] = 0
        try:
            with self.sim.tracer.span("raid.rebuild", self.name,
                                      disk=disk_index, rows=rows):
                for row in range(rows):
                    lock = self._row_lock(row)
                    yield lock.acquire()
                    try:
                        others = self._surviving(self._row_disks(row),
                                                 disk_index, row)
                        lba = self.layout.row_lba(row)
                        procs = [self.sim.process(
                            self._read_unit(d, lba, nsectors))
                            for d in others]
                        blocks = yield self.sim.all_of(procs)
                        unit = yield from self.parity.compute(blocks)
                        yield from self._data_write(
                            disk_index, lba, unit, tolerate_failure=False)
                        self._rebuild_frontier[disk_index] = row + 1
                        self._m_rebuilt_rows.inc()
                    finally:
                        lock.release()
        finally:
            # Rows past max_rows (when bounded) remain untrusted only
            # for the duration of the call; a bounded rebuild is a test
            # convenience and callers treat the disk as fully rebuilt.
            del self._rebuild_frontier[disk_index]
        return None

    def verify_parity(self, max_rows: Optional[int] = None) -> bool:
        """Instant check: every row's parity equals the XOR of its data."""
        rows = self.layout.rows if max_rows is None else min(
            self.layout.rows, max_rows)
        nsectors = self.layout.unit_sectors
        for row in range(rows):
            lba = self.layout.row_lba(row)
            data_blocks = [
                self.paths[self._layout5.data_disk(row, k)].disk.peek(
                    lba, nsectors)
                for k in range(self.layout.data_units_per_row)
            ]
            parity = self.paths[self._layout5.parity_disk(row)].disk.peek(
                lba, nsectors)
            if xor_blocks(data_blocks) != parity:
                return False
        return True


class Raid3Controller(_BaseController):
    """Sector-interleaved RAID 3 with a dedicated parity disk.

    The entire array is a single server: operations are serialized by
    an array-wide lock, and every operation engages all data disks over
    whole rows (partial rows are read-modify-written).
    """

    def __init__(self, sim: Simulator, paths: Sequence,
                 parity_computer=None, name: str = "raid3",
                 retry: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY):
        capacity = min(path.disk.spec.capacity_bytes for path in paths)
        layout = Raid3Layout(len(paths), capacity)
        super().__init__(sim, paths, layout, name, retry=retry)
        self._layout3 = layout
        self.parity = parity_computer if parity_computer is not None \
            else InstantParity()
        self._array_lock = Resource(sim, capacity=1, name=f"{name}.lock")
        #: disk index -> first row NOT yet rebuilt (see Raid5Controller).
        self._rebuild_frontier: dict[int, int] = {}

    @property
    def row_bytes(self) -> int:
        return self.layout.data_units_per_row * SECTOR_SIZE

    def _row_span(self, offset: int, nbytes: int) -> tuple[int, int]:
        first = offset // self.row_bytes
        last = (offset + nbytes - 1) // self.row_bytes
        return first, last

    def _untrusted(self, disk: int, first_row: int, nrows: int) -> bool:
        """True when ``disk``'s copy of the extent cannot be trusted."""
        if self.paths[disk].disk.failed:
            return True
        frontier = self._rebuild_frontier.get(disk)
        return frontier is not None and first_row + nrows > frontier

    def _read_rows(self, first_row: int, last_row: int):
        """Process: read full rows from all data disks; returns buffers."""
        nrows = last_row - first_row + 1
        procs = [
            self.sim.process(self._read_disk_rows(d, first_row, nrows))
            for d in range(self.layout.data_units_per_row)
        ]
        buffers = yield self.sim.all_of(procs)
        return buffers

    def _read_disk_rows(self, disk: int, first_row: int, nrows: int):
        """Process: one data disk's share of a row span, healed through
        parity when the disk is down, mid-rebuild or erroring."""
        if self._untrusted(disk, first_row, nrows):
            data = yield from self._reconstruct_rows(disk, first_row, nrows)
            return data
        try:
            data = yield from self._read_unit(disk, first_row, nrows)
            return data
        except (DiskFailedError, MediumError):
            data = yield from self._reconstruct_rows(disk, first_row, nrows)
            return data

    def _reconstruct_rows(self, missing: int, first_row: int, nrows: int):
        """Process: XOR a missing disk's rows from the others + parity."""
        self.degraded_reads += 1
        self._m_degraded_reads.inc()
        ndisks = self.layout.data_units_per_row
        others = [d for d in range(ndisks) if d != missing]
        parity_disk = self._layout3.parity_disk(0)
        if parity_disk != missing:
            others.append(parity_disk)
        for d in others:
            if self._untrusted(d, first_row, nrows):
                raise UnrecoverableArrayError(
                    f"{self.name}: second failure on disk {d}")
        procs = [self.sim.process(self._read_unit(d, first_row, nrows))
                 for d in others]
        blocks = yield self.sim.all_of(procs)
        data = yield from self.parity.compute(blocks)
        return data

    @staticmethod
    def _interleave(buffers: list[bytes]) -> bytes:
        """Merge per-disk buffers back into logical sector order.

        Vectorized: stacking per-disk (nrows, sector) planes along a
        middle axis yields row-major (row, disk, sector) order, which is
        exactly the logical byte order.
        """
        nrows = len(buffers[0]) // SECTOR_SIZE
        planes = [np.frombuffer(buffer, dtype=np.uint8).reshape(
            nrows, SECTOR_SIZE) for buffer in buffers]
        return np.stack(planes, axis=1).tobytes()

    @staticmethod
    def _deinterleave(data: bytes, ndisks: int) -> list[bytes]:
        """Split logical sector order into per-disk buffers."""
        view = memoryview(data)
        if not view.c_contiguous:  # pragma: no cover - defensive
            view = memoryview(bytes(view))  # lint: disable=SIM004
        nsectors = len(data) // SECTOR_SIZE
        nrows = nsectors // ndisks
        grid = np.frombuffer(view, dtype=np.uint8).reshape(
            nrows, ndisks, SECTOR_SIZE)
        return [grid[:, disk_index, :].tobytes()
                for disk_index in range(ndisks)]

    def read(self, offset: int, nbytes: int):
        """Process: read a logical range (whole rows, one I/O at a time)."""
        self.layout.check_range(offset, nbytes)
        with self.sim.tracer.span("raid.read", self.name, nbytes=nbytes,
                                  offset=offset):
            yield self._array_lock.acquire()
            try:
                first, last = self._row_span(offset, nbytes)
                buffers = yield from self._read_rows(first, last)
                logical = self._interleave(buffers)
                start = offset - first * self.row_bytes
                return logical[start:start + nbytes]
            finally:
                self._array_lock.release()

    def write(self, offset: int, data: bytes):
        """Process: write a logical range with whole-row parity."""
        self.layout.check_range(offset, len(data))
        with self.sim.tracer.span("raid.write", self.name,
                                  nbytes=len(data), offset=offset):
            yield self._array_lock.acquire()
            try:
                first, last = self._row_span(offset, len(data))
                span_bytes = (last - first + 1) * self.row_bytes
                start = offset - first * self.row_bytes
                aligned = start == 0 and len(data) == span_bytes
                if aligned:
                    logical = data
                else:
                    old_buffers = yield from self._read_rows(first, last)
                    image = bytearray(self._interleave(old_buffers))
                    image[start:start + len(data)] = data
                    logical = image  # deinterleave reads it in place
                ndisks = self.layout.data_units_per_row
                buffers = self._deinterleave(logical, ndisks)
                parity = yield from self.parity.compute(buffers)
                procs = [
                    self.sim.process(self._data_write(d, first, buffers[d]))
                    for d in range(ndisks)
                ]
                parity_disk = self._layout3.parity_disk(0)
                procs.append(self.sim.process(
                    self._data_write(parity_disk, first, parity)))
                yield self.sim.all_of(procs)
                return None
            finally:
                self._array_lock.release()

    def rebuild(self, disk_index: int, max_rows: Optional[int] = None):
        """Process: reconstruct a replaced disk (data or parity).

        Rows are rebuilt in chunks under the array lock, so client I/O
        interleaves between chunks; the frontier keeps reads of the
        not-yet-rebuilt remainder on the reconstruction path (a
        repaired disk is blank, not failed, so without the frontier
        those reads would silently return zeros).
        """
        rows = self.layout.rows if max_rows is None else min(
            self.layout.rows, max_rows)
        chunk_rows = 128
        ndisks = self.layout.data_units_per_row
        sources = [d for d in range(ndisks) if d != disk_index]
        parity_disk = self._layout3.parity_disk(0)
        if parity_disk != disk_index:
            sources.append(parity_disk)
        self._rebuild_frontier[disk_index] = 0
        try:
            with self.sim.tracer.span("raid.rebuild", self.name,
                                      disk=disk_index, rows=rows):
                row = 0
                while row < rows:
                    nrows = min(chunk_rows, rows - row)
                    yield self._array_lock.acquire()
                    try:
                        for d in sources:
                            if self.paths[d].disk.failed:
                                raise UnrecoverableArrayError(
                                    f"{self.name}: second failure on "
                                    f"disk {d}")
                        procs = [self.sim.process(
                            self._read_unit(d, row, nrows))
                            for d in sources]
                        blocks = yield self.sim.all_of(procs)
                        unit = yield from self.parity.compute(blocks)
                        yield from self._data_write(
                            disk_index, row, unit, tolerate_failure=False)
                        self._rebuild_frontier[disk_index] = row + nrows
                        self._m_rebuilt_rows.inc(nrows)
                    finally:
                        self._array_lock.release()
                    row += nrows
        finally:
            del self._rebuild_frontier[disk_index]
        return None

    def verify_parity(self, max_rows: Optional[int] = None) -> bool:
        """Instant check of the dedicated parity disk."""
        rows = self.layout.rows if max_rows is None else min(
            self.layout.rows, max_rows)
        ndisks = self.layout.data_units_per_row
        parity_disk = self._layout3.parity_disk(0)
        for row in range(rows):
            data_blocks = [self.paths[d].disk.peek(row, 1)
                           for d in range(ndisks)]
            parity = self.paths[parity_disk].disk.peek(row, 1)
            if xor_blocks(data_blocks) != parity:
                return False
        return True
