"""RAID layer: striping layouts, controllers, parity and reconstruction.

The paper's array is "configured as a RAID Level 5 with one parity
group of 24 disks" (Section 2.3) using left-symmetric rotated parity.
RAID Levels 0, 1 and 3 are also implemented: Level 0 for raw striping
microbenchmarks, Level 1 for comparison, and Level 3 because Section 4
contrasts RAID-II's Level-5 flexibility ("can execute several small,
independent I/Os in parallel") against HPDS's bit-interleaved Level 3
("supports only one small I/O at a time").

All controllers move real bytes: parity on disk is genuine XOR and any
single-disk failure is recoverable byte-for-byte.
"""

from repro.raid.controller import (InstantParity, Raid0Controller,
                                   Raid1Controller, Raid3Controller,
                                   Raid5Controller, SoftwareParity)
from repro.raid.layout import (Piece, Raid0Layout, Raid1Layout, Raid3Layout,
                               Raid5Layout)
from repro.raid.paths import DirectDiskPath

__all__ = [
    "DirectDiskPath",
    "InstantParity",
    "Piece",
    "Raid0Controller",
    "Raid0Layout",
    "Raid1Controller",
    "Raid1Layout",
    "Raid3Controller",
    "Raid3Layout",
    "Raid5Controller",
    "Raid5Layout",
    "SoftwareParity",
]
