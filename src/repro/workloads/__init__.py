"""Workload generation and measurement runners for the experiments."""

from repro.workloads.generators import (random_aligned_offsets,
                                        sequential_offsets)
from repro.workloads.runner import Measurement, run_request_stream

__all__ = ["Measurement", "random_aligned_offsets", "run_request_stream",
           "sequential_offsets"]
