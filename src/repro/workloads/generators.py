"""Request-stream generators for the paper's workloads.

The evaluation uses two patterns: "subsequent fixed size operations
are at random locations" (Figure 5) and sequential streams (Table 1).
Both generators produce sector-aligned (offset, size) pairs within a
given capacity; determinism comes from the caller's seeded RNG.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import ReproError
from repro.units import SECTOR_SIZE


def random_aligned_offsets(rng: random.Random, capacity_bytes: int,
                           size_bytes: int, count: int,
                           alignment: int = SECTOR_SIZE
                           ) -> list[tuple[int, int]]:
    """``count`` random, aligned, in-range (offset, size) requests."""
    if size_bytes <= 0 or size_bytes > capacity_bytes:
        raise ReproError(
            f"request size {size_bytes} does not fit capacity "
            f"{capacity_bytes}")
    if alignment <= 0 or size_bytes % alignment:
        raise ReproError(f"size {size_bytes} not {alignment}-aligned")
    slots = (capacity_bytes - size_bytes) // alignment + 1
    return [(rng.randrange(slots) * alignment, size_bytes)
            for _ in range(count)]


def sequential_offsets(capacity_bytes: int, size_bytes: int, count: int,
                       start: int = 0) -> list[tuple[int, int]]:
    """``count`` back-to-back requests, wrapping at capacity."""
    if size_bytes <= 0 or size_bytes > capacity_bytes:
        raise ReproError(
            f"request size {size_bytes} does not fit capacity "
            f"{capacity_bytes}")
    requests = []
    position = start
    for _ in range(count):
        if position + size_bytes > capacity_bytes:
            position = 0
        requests.append((position, size_bytes))
        position += size_bytes
    return requests


def interleave(*streams: list[tuple[int, int]]) -> Iterator[tuple[int, int]]:
    """Round-robin merge of request streams (for mixed workloads)."""
    iterators = [iter(stream) for stream in streams]
    live = list(iterators)
    while live:
        for iterator in list(live):
            try:
                yield next(iterator)
            except StopIteration:
                live.remove(iterator)
