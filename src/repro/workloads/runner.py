"""Measurement runner: drive request streams and report rates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ReproError
from repro.sim import Simulator
from repro.units import MB

#: An op factory receives (offset, size) and returns a simulation
#: process (generator) performing the operation.
OpFactory = Callable[[int, int], object]


@dataclass(frozen=True)
class Measurement:
    """Result of one workload run."""

    bytes_moved: int
    ops: int
    elapsed_s: float

    @property
    def mb_per_s(self) -> float:
        return self.bytes_moved / MB / self.elapsed_s

    @property
    def ios_per_s(self) -> float:
        return self.ops / self.elapsed_s

    @property
    def mean_latency_s(self) -> float:
        return self.elapsed_s / self.ops


def run_request_stream(sim: Simulator, op_factory: OpFactory,
                       requests: Sequence[tuple[int, int]],
                       concurrency: int = 1) -> Measurement:
    """Run ``requests`` through ``op_factory`` and measure the rate.

    ``concurrency == 1`` issues requests back to back from a single
    process (the paper's single-process experiments); higher values
    deal the stream round-robin to that many worker processes (the
    per-disk-process experiments of Table 2).
    """
    if not requests:
        raise ReproError("empty request stream")
    if concurrency < 1:
        raise ReproError(f"concurrency must be >= 1, got {concurrency}")
    start = sim.now
    total_bytes = sum(size for _offset, size in requests)

    def worker(assigned: Sequence[tuple[int, int]]):
        for offset, size in assigned:
            yield from op_factory(offset, size)

    if concurrency == 1:
        sim.run_process(worker(requests))
    else:
        lanes = [list(requests[lane::concurrency])
                 for lane in range(concurrency)]
        procs = [sim.process(worker(lane), name=f"worker{i}")
                 for i, lane in enumerate(lanes) if lane]

        def join():
            yield sim.all_of(procs)

        sim.run_process(join())
    elapsed = sim.now - start
    if elapsed <= 0:
        raise ReproError("workload consumed no simulated time")
    return Measurement(bytes_moved=total_bytes, ops=len(requests),
                       elapsed_s=elapsed)
