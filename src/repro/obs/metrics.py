"""The component metrics registry: counters, gauges, histograms.

Every :class:`Simulator` owns a :class:`MetricsRegistry`; components
and the measurement shims in :mod:`repro.sim.monitor` register their
instruments against it on first use (get-or-create, keyed by
``(component, name)``).  Snapshots are plain nested dicts with sorted
keys, so two identical runs produce byte-identical snapshots — a
property the determinism tests rely on.

Instruments are deliberately dumb value holders: no locks, no
timestamps, no scheduling.  Like the tracer, the registry observes the
simulation and never participates in it.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import SimulationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS"]

#: Fixed latency buckets (seconds): 10 µs to ~100 s, roughly one
#: bucket per half-decade, matching the spread between a single
#: track-buffer hit and a full experiment run.
DEFAULT_LATENCY_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
    1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0, 100.0,
)


class Counter:
    """A monotonically increasing count (bytes moved, ops done...)."""

    __slots__ = ("component", "name", "unit", "value")

    kind = "counter"

    def __init__(self, component: str, name: str, unit: str = ""):
        self.component = component
        self.name = name
        self.unit = unit
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise SimulationError(
                f"counter {self.component}/{self.name} cannot decrease "
                f"(inc by {amount!r})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value, "unit": self.unit}


class Gauge:
    """A point-in-time value (queue depth, busy seconds, occupancy)."""

    __slots__ = ("component", "name", "unit", "value", "max_value")

    kind = "gauge"

    def __init__(self, component: str, name: str, unit: str = ""):
        self.component = component
        self.name = name
        self.unit = unit
        self.value: float = 0.0
        self.max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value,
                "max": self.max_value, "unit": self.unit}


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``buckets`` are the inclusive upper bounds of each bucket; one
    implicit overflow bucket catches everything beyond the last bound.
    """

    __slots__ = ("component", "name", "unit", "buckets", "counts",
                 "count", "total", "min_value", "max_value")

    kind = "histogram"

    def __init__(self, component: str, name: str,
                 buckets: tuple = DEFAULT_LATENCY_BUCKETS, unit: str = "s"):
        if not buckets or list(buckets) != sorted(buckets):
            raise SimulationError("histogram buckets must be sorted and "
                                  "non-empty")
        self.component = component
        self.name = name
        self.unit = unit
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise SimulationError(
                f"histogram {self.component}/{self.name} has no samples")
        return self.total / self.count

    def snapshot(self) -> dict:
        return {"kind": self.kind, "count": self.count, "total": self.total,
                "min": self.min_value, "max": self.max_value,
                "buckets": list(self.buckets), "counts": list(self.counts),
                "unit": self.unit}


class MetricsRegistry:
    """All instruments of one simulator, keyed by (component, name)."""

    __slots__ = ("_instruments", "_anon")

    def __init__(self):
        self._instruments: dict[tuple[str, str], object] = {}
        #: Per-prefix counters for deterministic anonymous components.
        self._anon: dict[str, int] = {}

    # -- get-or-create factories ----------------------------------------
    def counter(self, component: str, name: str, unit: str = "") -> Counter:
        return self._get(Counter, component, name, unit=unit)

    def gauge(self, component: str, name: str, unit: str = "") -> Gauge:
        return self._get(Gauge, component, name, unit=unit)

    def histogram(self, component: str, name: str,
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS,
                  unit: str = "s") -> Histogram:
        return self._get(Histogram, component, name, buckets=buckets,
                         unit=unit)

    def _get(self, cls, component: str, name: str, **kwargs):
        key = (component, name)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(component, name, **kwargs)
            self._instruments[key] = instrument
            return instrument
        if not isinstance(instrument, cls):
            raise SimulationError(
                f"metric {component}/{name} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def unique_component(self, prefix: str) -> str:
        """A deterministic fresh component name for anonymous users.

        Identical runs create instruments in identical order, so the
        generated names (``prefix.1``, ``prefix.2``...) are stable
        across runs — snapshot determinism holds even for unnamed
        meters.
        """
        nth = self._anon.get(prefix, 0) + 1
        self._anon[prefix] = nth
        return f"{prefix}.{nth}"

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> list:
        return [self._instruments[key] for key in sorted(self._instruments)]

    def snapshot(self) -> dict:
        """Nested ``{component: {name: {...}}}`` with sorted keys."""
        out: dict[str, dict] = {}
        for component, name in sorted(self._instruments):
            instrument = self._instruments[(component, name)]
            out.setdefault(component, {})[name] = instrument.snapshot()
        return out
