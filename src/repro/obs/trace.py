"""Sim-time span tracing.

A :class:`Tracer` records *spans* — named, component-tagged intervals
of simulated time with parent/child structure — as the data path
executes.  Component code instruments itself with::

    with self.sim.tracer.span("disk.read", self.name, nbytes=nbytes):
        ... the timed operation ...

and pays essentially nothing when tracing is off: the default
:data:`NULL_TRACER` answers ``span()`` with a shared no-op handle, so
the disabled cost per operation is one method call returning a
singleton (the kernel itself only ever performs a single
``tracer.enabled`` attribute check, in :meth:`Simulator.process`).

Tracing may *observe* but never *schedule*: a tracer must not create
events, timeouts or processes, and must not consume simulator sequence
numbers — the determinism fingerprint (see tests/test_sim_determinism)
is required to be bit-identical with tracing enabled and disabled.

Parent tracking across concurrent processes
-------------------------------------------
Simulation activities are generators that suspend at every ``yield``,
so a naive global span stack would tangle siblings: a Cougar read
spawns three concurrent legs whose bodies first run long after the
parent suspended.  The tracer therefore keeps one *current span* per
process: :meth:`Simulator.process` routes new process generators
through :meth:`Tracer.scoped`, which captures the spawner's current
span at spawn time and swaps the per-process context in and out around
every resume.  Spans opened inside any leg then parent correctly onto
the span that was open where the leg was spawned.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

__all__ = ["Span", "SpanHandle", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One completed (or still-open) traced interval of sim-time."""

    __slots__ = ("id", "name", "component", "start", "end", "parent_id",
                 "nbytes", "attrs")

    def __init__(self, span_id: int, name: str, component: str,
                 nbytes: int = 0, attrs: Optional[dict] = None):
        self.id = span_id
        self.name = name
        self.component = component
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.parent_id: Optional[int] = None
        self.nbytes = nbytes
        self.attrs = attrs

    @property
    def layer(self) -> str:
        """The data-path layer: the dotted prefix of the span name."""
        return self.name.split(".", 1)[0]

    @property
    def duration(self) -> Optional[float]:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span #{self.id} {self.name} [{self.component}] "
                f"{self.start}..{self.end} parent={self.parent_id}>")


class SpanHandle:
    """Context manager that opens/closes one span on its tracer."""

    __slots__ = ("_tracer", "span", "_prev")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._prev: Optional["SpanHandle"] = None

    def set(self, **attrs: Any) -> "SpanHandle":
        """Attach extra attributes to the span."""
        span = self.span
        if span.attrs is None:
            span.attrs = dict(attrs)
        else:
            span.attrs.update(attrs)
        return self

    def __enter__(self) -> "SpanHandle":
        tracer = self._tracer
        span = self.span
        span.start = tracer.sim.now
        parent = tracer._current
        if parent is not None:
            span.parent_id = parent.span.id
        self._prev = parent
        tracer._current = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        span = self.span
        span.end = tracer.sim.now
        if exc_type is not None:
            self.set(error=exc_type.__name__)
        tracer._current = self._prev
        tracer.finished.append(span)
        return False


class Tracer:
    """Records a span tree against a simulator's clock."""

    enabled = True

    def __init__(self, sim):
        self.sim = sim
        self.finished: list[Span] = []
        self._next_id = 0
        self._current: Optional[SpanHandle] = None

    # -- recording ------------------------------------------------------
    def span(self, name: str, component: str = "", nbytes: int = 0,
             **attrs: Any) -> SpanHandle:
        """A context manager recording one span; parent is whatever
        span is current in the opening process when it enters."""
        self._next_id += 1
        return SpanHandle(self, Span(self._next_id, name, component,
                                     nbytes, attrs or None))

    def reset(self) -> None:
        """Drop all recorded spans (the current open stack is kept)."""
        self.finished.clear()

    # -- queries --------------------------------------------------------
    def spans(self) -> list[Span]:
        """Finished spans, in completion order."""
        return list(self.finished)

    def roots(self) -> list[Span]:
        return [span for span in self.finished if span.parent_id is None]

    def children_of(self, span: Span) -> list[Span]:
        return [child for child in self.finished
                if child.parent_id == span.id]

    # -- per-process context propagation --------------------------------
    def scoped(self, generator) -> Iterator:
        """Wrap a process generator for context propagation.

        The wrapper captures the spawner's current span now (at spawn
        time) and installs it as the child's context around every
        resume, saving and restoring whatever context the interleaved
        neighbour processes had.  It forwards sends, throws (Interrupt
        delivery, close) and the return value unchanged, and performs
        no scheduling of its own.

        This must be a plain function: a generator's body runs only at
        its first resume, long after the spawner suspended, so the
        spawn-time context has to be read here and passed in.
        """
        return self._scoped(generator, self._current)

    def _scoped(self, generator,
                ctx: Optional[SpanHandle]) -> Iterator:
        send: Any = None
        throw: Optional[BaseException] = None
        while True:
            prev = self._current
            self._current = ctx
            try:
                if throw is not None:
                    exc, throw = throw, None
                    item = generator.throw(exc)
                else:
                    item = generator.send(send)
            except StopIteration as stop:
                self._current = prev
                return stop.value
            except BaseException:
                self._current = prev
                raise
            ctx = self._current
            self._current = prev
            try:
                send = yield item
            except BaseException as exc:
                throw = exc


class _NullSpanHandle:
    """Shared no-op span handle: enter/exit/set do nothing."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpanHandle":
        return self

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """The disabled tracer: every span is the shared no-op handle."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, component: str = "", nbytes: int = 0,
             **attrs: Any) -> _NullSpanHandle:
        return _NULL_SPAN

    def spans(self) -> list[Span]:
        return []

    def reset(self) -> None:
        return None


#: The shared disabled tracer every fresh :class:`Simulator` gets.
NULL_TRACER = NullTracer()
