"""Observability: sim-time tracing, metrics, and exporters.

The subsystem threads through the whole stack (DESIGN.md §8):

* :mod:`repro.obs.trace` — spans and the per-simulator tracer; the
  default :data:`NULL_TRACER` makes disabled tracing nearly free.
* :mod:`repro.obs.metrics` — the per-simulator instrument registry.
* :mod:`repro.obs.session` — ambient collection for the experiment
  CLI's ``--trace``/``--metrics`` flags.
* :mod:`repro.obs.export` — Chrome trace JSON (Perfetto), the text
  flamegraph, per-layer breakdown and utilization reports.
"""

from repro.obs.export import (chrome_trace_events, chrome_trace_json,
                              collect_busy_components, render_flamegraph,
                              render_layer_breakdown,
                              render_metrics_snapshot,
                              render_utilization_report)
from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry)
from repro.obs.session import ObsSession, observe, observe_simulator
from repro.obs.trace import NULL_TRACER, NullTracer, Span, SpanHandle, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObsSession",
    "Span",
    "SpanHandle",
    "Tracer",
    "chrome_trace_events",
    "chrome_trace_json",
    "collect_busy_components",
    "observe",
    "observe_simulator",
    "render_flamegraph",
    "render_layer_breakdown",
    "render_metrics_snapshot",
    "render_utilization_report",
]
