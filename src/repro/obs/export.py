"""Exporters: Chrome trace JSON, text flamegraph, breakdown tables.

Three views of the same recorded spans:

* :func:`chrome_trace_json` — Chrome ``trace_event`` JSON (complete
  ``"X"`` events, sim-time mapped to microseconds).  Load the file at
  https://ui.perfetto.dev to scrub through a request's span tree.
* :func:`render_flamegraph` — a text sim-time flamegraph: the span
  tree merged by name, widest subtrees first, with inclusive time and
  call counts.
* :func:`render_layer_breakdown` — per-layer totals (disk, scsi,
  cougar, xbus, vme, hippi, raid, lfs, server...): inclusive
  span-seconds, bytes and span counts.  Concurrent spans overlap, so
  the column sums exceed elapsed sim-time by design — the table shows
  where *span-time* goes, exactly the Table 1 accounting.

Plus :func:`render_utilization_report`, which walks a component tree
(e.g. a :class:`Raid2Server`) and tabulates busy-time utilization and
queue depth for every channel, port and monitor it finds.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.obs.trace import Span
from repro.units import MB

__all__ = ["chrome_trace_events", "chrome_trace_json", "render_flamegraph",
           "render_layer_breakdown", "render_metrics_snapshot",
           "render_utilization_report", "collect_busy_components"]

#: Seconds of sim-time -> trace_event microseconds (a time-unit
#: conversion, not a byte count).
_US = 1e6  # lint: disable=UNIT001


def _span_groups(source) -> list[list[Span]]:
    """Normalize a session, tracer, or plain span list into groups."""
    tracers = getattr(source, "tracers", None)
    if tracers is not None:  # an ObsSession
        return [list(tracer.finished) for tracer in tracers]
    finished = getattr(source, "finished", None)
    if finished is not None:  # a Tracer
        return [list(finished)]
    return [list(source)]


def _clamped_end(span: Span, fallback: float) -> float:
    return span.end if span.end is not None else fallback


def _group_end(spans: list[Span]) -> float:
    return max((span.end for span in spans if span.end is not None),
               default=0.0)


# ---------------------------------------------------------------------------
# Chrome trace_event JSON
# ---------------------------------------------------------------------------

def chrome_trace_events(spans: list[Span], pid: int = 0) -> list[dict]:
    """One list of spans -> trace_event dicts (one process, one
    thread lane per component, in first-seen order)."""
    tids: dict[str, int] = {}
    events: list[dict] = []
    horizon = _group_end(spans)
    for span in spans:
        component = span.component or span.layer
        tid = tids.setdefault(component, len(tids) + 1)
        if span.start is None:
            continue
        args: dict = {"span_id": span.id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.nbytes:
            args["nbytes"] = span.nbytes
        if span.attrs:
            args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.layer,
            "ph": "X",
            "ts": span.start * _US,
            "dur": (_clamped_end(span, horizon) - span.start) * _US,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    for component, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": component},
        })
    return events


def chrome_trace_json(source) -> str:
    """Serialize a session/tracer/span-list as Chrome trace JSON.

    Each simulator of a session becomes its own ``pid`` so multi-run
    experiments stay separable in the Perfetto timeline.
    """
    events: list[dict] = []
    for pid, spans in enumerate(_span_groups(source)):
        events.extend(chrome_trace_events(spans, pid=pid))
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"sim{pid}"},
        })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      indent=None, separators=(",", ":"), sort_keys=True)


# ---------------------------------------------------------------------------
# text flamegraph
# ---------------------------------------------------------------------------

class _Frame:
    __slots__ = ("name", "time", "count", "nbytes", "children")

    def __init__(self, name: str):
        self.name = name
        self.time = 0.0
        self.count = 0
        self.nbytes = 0
        self.children: dict[str, "_Frame"] = {}


def _build_frames(spans: list[Span]) -> _Frame:
    by_id = {span.id: span for span in spans}
    horizon = _group_end(spans)
    root = _Frame("<root>")

    def path_of(span: Span) -> list[str]:
        names: list[str] = []
        cursor: Optional[Span] = span
        while cursor is not None:
            names.append(cursor.name)
            cursor = by_id.get(cursor.parent_id) \
                if cursor.parent_id is not None else None
        names.reverse()
        return names

    for span in spans:
        if span.start is None:
            continue
        frame = root
        for name in path_of(span):
            frame = frame.children.setdefault(name, _Frame(name))
        frame.time += _clamped_end(span, horizon) - span.start
        frame.count += 1
        frame.nbytes += span.nbytes
    return root


def render_flamegraph(source, width: int = 40) -> str:
    """Merged span tree as indented text, widest subtree first."""
    spans = [span for group in _span_groups(source) for span in group]
    root = _build_frames(spans)
    total = sum(frame.time for frame in root.children.values()) or 1.0
    lines = ["sim-time flamegraph (inclusive seconds, merged by name)"]

    def emit(frame: _Frame, depth: int) -> None:
        bar = "#" * max(1, round(width * frame.time / total))
        lines.append(f"  {'  ' * depth}{frame.name:<{30 - 2 * depth}} "
                     f"{frame.time:10.6f}s  x{frame.count:<5d} {bar}")
        for child in sorted(frame.children.values(),
                            key=lambda f: (-f.time, f.name)):
            emit(child, depth + 1)

    for frame in sorted(root.children.values(),
                        key=lambda f: (-f.time, f.name)):
        emit(frame, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# per-layer breakdown
# ---------------------------------------------------------------------------

def render_layer_breakdown(source) -> str:
    """Inclusive span-time, bytes and counts per data-path layer."""
    totals: dict[str, list] = {}
    spans = [span for group in _span_groups(source) for span in group]
    horizon = _group_end(spans)
    for span in spans:
        if span.start is None:
            continue
        entry = totals.setdefault(span.layer, [0.0, 0, 0])
        entry[0] += _clamped_end(span, horizon) - span.start
        entry[1] += span.nbytes
        entry[2] += 1
    lines = ["per-layer sim-time breakdown (inclusive; concurrent spans "
             "overlap)",
             f"  {'layer':<10} {'span-seconds':>14} {'MB':>10} {'spans':>8}"]
    for layer, (seconds, nbytes, count) in sorted(
            totals.items(), key=lambda item: (-item[1][0], item[0])):
        lines.append(f"  {layer:<10} {seconds:>14.6f} "
                     f"{nbytes / MB:>10.2f} {count:>8d}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# metrics snapshot rendering
# ---------------------------------------------------------------------------

def render_metrics_snapshot(snapshot: dict) -> str:
    """A merged-session or single-registry snapshot as a text table."""
    lines = ["metrics"]

    def emit(prefix: str, component: str, instruments: dict) -> None:
        for name, data in instruments.items():
            kind = data.get("kind", "?")
            if kind == "histogram":
                detail = (f"count={data['count']} total={data['total']:.6f} "
                          f"min={data['min']} max={data['max']}")
            elif kind == "gauge":
                detail = f"value={data['value']:g} max={data['max']:g}"
            else:
                detail = f"value={data['value']:g}"
            unit = data.get("unit") or ""
            label = f"{prefix}{component}/{name}"
            lines.append(f"  {label:<44} {kind:<9} {detail}"
                         + (f" {unit}" if unit else ""))

    # A session snapshot nests {"runN": {component: {...}}}; a bare
    # registry snapshot is {component: {name: {...}}} directly.
    for key in sorted(snapshot):
        value = snapshot[key]
        if value and all(isinstance(v, dict) and "kind" in v
                         for v in value.values()):
            emit("", key, value)
        else:
            for component in sorted(value):
                emit(f"{key}:", component, value[component])
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# component utilization / queue-depth report
# ---------------------------------------------------------------------------

def collect_busy_components(root, max_depth: int = 8) -> list:
    """Walk ``root``'s attribute tree for busy-time-bearing components.

    Anything with both ``name`` and ``busy_time`` counts (bandwidth
    channels, VME ports, busy monitors).  The walk follows instance
    attributes and list/tuple elements, skips back-references to the
    simulator, and is cycle-safe.
    """
    found: dict[int, object] = {}
    seen: set[int] = set()

    def visit(obj, depth: int) -> None:
        if depth > max_depth or id(obj) in seen:
            return
        seen.add(id(obj))
        if isinstance(obj, (list, tuple)):
            for item in obj:
                visit(item, depth + 1)
            return
        module = getattr(type(obj), "__module__", "")
        if not module.startswith("repro"):
            return
        if hasattr(obj, "busy_time") and hasattr(obj, "name"):
            found.setdefault(id(obj), obj)
        slots = []
        for klass in type(obj).__mro__:
            slots.extend(getattr(klass, "__slots__", ()))
        names = list(getattr(obj, "__dict__", {})) + slots
        for attr in names:
            if attr in ("sim", "_heap"):
                continue
            value = getattr(obj, attr, None)
            if value is not None and not isinstance(
                    value, (str, bytes, bytearray, memoryview, int, float,
                            bool, dict, set)):
                visit(value, depth + 1)

    visit(root, 0)
    return sorted(found.values(), key=lambda c: c.name)


def render_utilization_report(root, elapsed: float) -> str:
    """Utilization and queue depth for every component under ``root``."""
    lines = [f"component utilization over {elapsed:.6f}s sim-time",
             f"  {'component':<24} {'busy-s':>12} {'util':>7} {'queue':>6}"]
    for component in collect_busy_components(root):
        busy = component.busy_time
        util = min(1.0, busy / elapsed) if elapsed > 0 else 0.0
        queue = getattr(component, "queue_length", None)
        queue_text = f"{queue:>6d}" if queue is not None else "     -"
        lines.append(f"  {component.name:<24} {busy:>12.6f} "
                     f"{util:>6.1%} {queue_text}")
    return "\n".join(lines)
