"""Ambient observation sessions.

Experiments construct their own :class:`Simulator` instances deep
inside their ``run()`` functions, so the CLI cannot hand a tracer to
each one.  Instead, the CLI opens an :func:`observe` session; every
simulator created while it is active registers itself here and — when
the session asked for tracing — receives a live :class:`Tracer`
instead of the null one.  Afterwards the session holds every tracer
and metrics registry the run produced, ready for export.

Outside a session (the default), :func:`observe_simulator` hands out
the shared :data:`NULL_TRACER` and a fresh registry, and costs one
module-global read per ``Simulator()``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = ["ObsSession", "observe", "observe_simulator"]

_ACTIVE: Optional["ObsSession"] = None


class ObsSession:
    """Everything observed while one :func:`observe` block was active."""

    def __init__(self, trace: bool = False):
        self.trace = trace
        self.tracers: list[Tracer] = []
        self.registries: list[MetricsRegistry] = []

    def spans(self) -> list[Span]:
        """All finished spans from every simulator, in creation order
        of the simulators and completion order within each."""
        out: list[Span] = []
        for tracer in self.tracers:
            out.extend(tracer.finished)
        return out

    def metrics_snapshot(self) -> dict:
        """Merged snapshot: ``{"run<N>": registry_snapshot}`` for every
        simulator that registered at least one instrument."""
        out: dict[str, dict] = {}
        for index, registry in enumerate(self.registries):
            if len(registry):
                out[f"run{index}"] = registry.snapshot()
        return out


@contextmanager
def observe(trace: bool = False) -> Iterator[ObsSession]:
    """Collect tracers/registries from every simulator created inside."""
    global _ACTIVE
    session = ObsSession(trace=trace)
    previous, _ACTIVE = _ACTIVE, session
    try:
        yield session
    finally:
        _ACTIVE = previous


def observe_simulator(sim) -> tuple:
    """Called by ``Simulator.__init__``: (tracer, metrics) for ``sim``."""
    registry = MetricsRegistry()
    session = _ACTIVE
    if session is None:
        return NULL_TRACER, registry
    session.registries.append(registry)
    if not session.trace:
        return NULL_TRACER, registry
    tracer = Tracer(sim)
    session.tracers.append(tracer)
    return tracer, registry
