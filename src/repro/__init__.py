"""RAID-II: A High-Bandwidth Network File Server — full-system reproduction.

The package reproduces the Berkeley RAID-II prototype (ISCA 1994) as a
discrete-event simulation of its hardware with a real, byte-accurate
storage stack on top.  The main entry points:

>>> from repro import Raid2Server, Raid2Config, Simulator
>>> sim = Simulator()
>>> server = Raid2Server(sim, Raid2Config.fig8_lfs())
>>> sim.run_process(server.setup_lfs())
>>> sim.run_process(server.fs.create("/hello"))
2
>>> sim.run_process(server.fs.write("/hello", 0, b"world"))
>>> sim.run_process(server.fs.read("/hello", 0, 5))
b'world'

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.client import RaidFileClient
from repro.lfs import LogStructuredFS
from repro.raid import (Raid0Controller, Raid1Controller, Raid3Controller,
                        Raid5Controller)
from repro.server import Raid1Server, Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.zebra import ZebraClient, ZebraStorageServer

__version__ = "1.0.0"

__all__ = [
    "LogStructuredFS",
    "Raid0Controller",
    "Raid1Controller",
    "Raid1Server",
    "Raid2Config",
    "Raid2Server",
    "Raid3Controller",
    "Raid5Controller",
    "RaidFileClient",
    "Simulator",
    "ZebraClient",
    "ZebraStorageServer",
    "__version__",
]
