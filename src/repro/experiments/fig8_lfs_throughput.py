"""Figure 8 — performance of RAID-II running the LFS file system.

"For random read requests larger than 10 megabytes ... the file system
delivers up to 20 megabytes/second"; "for random write requests above
approximately 512 kilobytes ... close to its maximum value of 15
megabytes/second"; and crucially, "bandwidth for small random write
operations is better than bandwidth for small random reads" — the log
absorbs small writes.

Setup (Section 3.4): a single XBUS board with 16 disks, the log
striped in 64 KB units and written in 960 KB segments, a single
process issuing requests, data to/from network buffers in XBUS memory
(no network send).
"""

from __future__ import annotations

import random

from repro.experiments.base import ExperimentResult, Series
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB, MB, MIB

FULL_READ_SIZES_KIB = [16, 64, 256, 1024, 4096, 10240]
FULL_WRITE_SIZES_KIB = [16, 64, 256, 512, 1024, 4096]
QUICK_READ_SIZES_KIB = [64, 1024, 4096]
QUICK_WRITE_SIZES_KIB = [64, 512, 2048]

PAPER_ANCHORS = {
    "read_plateau_mb_s": 20.0,
    "write_plateau_mb_s": 15.0,
    "small_write_over_small_read": 1.5,  # "better than", factor approximate
}


def _build_server(file_mib: int):
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    sim.run_process(server.setup_lfs())
    chunk = bytes(1 * MIB)

    def fill():
        yield from server.fs.create("/big")
        for index in range(file_mib):
            yield from server.fs.write("/big", index * MIB, chunk)
        yield from server.fs.checkpoint()

    sim.run_process(fill())
    return sim, server


def run(quick: bool = False) -> ExperimentResult:
    read_sizes = QUICK_READ_SIZES_KIB if quick else FULL_READ_SIZES_KIB
    write_sizes = QUICK_WRITE_SIZES_KIB if quick else FULL_WRITE_SIZES_KIB
    file_mib = 16 if quick else 48
    sim, server = _build_server(file_mib)
    fs = server.fs
    rng = random.Random(77)
    span_blocks = file_mib * MIB // 4096

    reads = Series("random reads", "request KB", "MB/s")
    for size_kib in read_sizes:
        size = size_kib * KIB
        count = max(3, min(20, (8 * MIB) // size))
        start = sim.now

        def read_body(size=size, count=count):
            for _ in range(count):
                offset = rng.randrange(0, span_blocks - size // 4096) * 4096
                yield from fs.read("/big", offset, size)

        sim.run_process(read_body())
        reads.add(size_kib, count * size / MB / (sim.now - start))

    writes = Series("random writes", "request KB", "MB/s")
    for size_kib in write_sizes:
        size = size_kib * KIB
        count = max(4, min(24, (8 * MIB) // size))
        blob = bytes(size)
        start = sim.now

        def write_body(size=size, count=count, blob=blob):
            for _ in range(count):
                offset = rng.randrange(0, span_blocks - size // 4096) * 4096
                yield from fs.write("/big", offset, blob)
            yield from fs.sync()

        sim.run_process(write_body())
        writes.add(size_kib, count * size / MB / (sim.now - start))

    small_read = reads.points[0].y
    small_write = writes.points[0].y
    return ExperimentResult(
        experiment_id="fig8",
        title="LFS on RAID-II: random read/write bandwidth",
        series=[reads, writes],
        scalars={
            "read_plateau_mb_s": reads.points[-1].y,
            "write_plateau_mb_s": writes.points[-1].y,
            "small_write_over_small_read": small_write / small_read,
        },
        paper=PAPER_ANCHORS,
        notes=[
            "16 disks, 64 KB stripe unit, 960 KB segments, single "
            "request process, data to XBUS network buffers only.",
            "Small writes beat small reads: the log groups them into "
            "sequential segment writes (the LFS+RAID-5 synergy).",
        ],
    )
