"""Ablations of the design choices DESIGN.md calls out.

Each function isolates one claim of the paper:

* ``run_datapath`` — the XBUS high-bandwidth path vs forcing data
  through the host (the paper's core architectural argument, §2.1.1);
* ``run_lfs_vs_ffs`` — LFS vs a traditional update-in-place file
  system on RAID 5 small writes (the four-access penalty, §3.1);
* ``run_scaling`` — adding XBUS boards scales server bandwidth
  (§2.1.2);
* ``run_raid3`` — RAID 5 runs independent small I/Os concurrently,
  RAID 3 one at a time (§4.2, the HPDS comparison);
* ``run_cleaner`` — segment-cleaning overhead on a fragmented log
  (the paper's unimplemented piece, built and measured here).
"""

from __future__ import annotations

import dataclasses
import random

from repro.experiments.base import ExperimentResult, Series
from repro.ffs import UpdateInPlaceFS
from repro.hw import IBM_0661, DiskDrive
from repro.hw.specs import LFS_SPEC
from repro.lfs import LogStructuredFS
from repro.raid import (DirectDiskPath, Raid3Controller, Raid5Controller)
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB, MB, MIB, SECTOR_SIZE
from repro.workloads import run_request_stream

SMALL_DISK = dataclasses.replace(IBM_0661, capacity_bytes=64 * MIB)
NO_OVERHEAD_SPEC = dataclasses.replace(LFS_SPEC, fs_overhead_s=0.0,
                                       small_write_overhead_s=0.0)


# ---------------------------------------------------------------------------
# high-bandwidth path vs through-the-host
# ---------------------------------------------------------------------------

def run_datapath(quick: bool = False) -> ExperimentResult:
    count = 3 if quick else 8
    size = 1600 * KIB

    def measure(through_host: bool) -> float:
        sim = Simulator()
        server = Raid2Server(sim, Raid2Config.paper_default())
        row = (server.raid.layout.data_units_per_row
               * server.raid.stripe_unit_bytes)
        stride = -(-size // row) * row
        requests = [(index * stride, size) for index in range(count)]

        if through_host:
            def op(offset, nbytes):
                yield from server.hw_read_through_host(offset, nbytes)
        else:
            def op(offset, nbytes):
                yield from server.hw_read(offset, nbytes)

        return run_request_stream(sim, op, requests,
                                  concurrency=2).mb_per_s

    fast = measure(through_host=False)
    slow = measure(through_host=True)
    return ExperimentResult(
        experiment_id="ablation-datapath",
        title="High-bandwidth path vs through-the-host path",
        scalars={
            "xbus_path_mb_s": fast,
            "through_host_mb_s": slow,
            "speedup": fast / slow,
        },
        paper={"through_host_mb_s": 2.3},  # the RAID-I ceiling
        notes=[
            "Removing the direct disk-to-network path reduces the "
            "server to RAID-I-class bandwidth: the host memory system "
            "saturates (Section 1).",
        ],
    )


# ---------------------------------------------------------------------------
# LFS vs update-in-place FS on RAID 5 small writes
# ---------------------------------------------------------------------------

def _make_raid5(sim, ndisks=8, disk_bytes=64 * MIB):
    spec = dataclasses.replace(IBM_0661, capacity_bytes=disk_bytes)
    paths = [DirectDiskPath(DiskDrive(sim, spec, name=f"d{index}"))
             for index in range(ndisks)]
    return paths, Raid5Controller(sim, paths, 64 * KIB)


def run_lfs_vs_ffs(quick: bool = False) -> ExperimentResult:
    nwrites = 40 if quick else 120
    rng = random.Random(55)
    # Keep the file within the FFS baseline's direct+indirect reach.
    offsets = [rng.randrange(0, 500) * 4096 for _ in range(nwrites)]
    blob = bytes(4096)

    # --- LFS
    sim = Simulator()
    paths_lfs, raid_lfs = _make_raid5(sim)
    lfs = LogStructuredFS(sim, raid_lfs, spec=NO_OVERHEAD_SPEC,
                          max_inodes=64)
    sim.run_process(lfs.format())
    sim.run_process(lfs.create("/f"))
    start = sim.now

    def lfs_body():
        for offset in offsets:
            yield from lfs.write("/f", offset, blob)
        yield from lfs.sync()

    sim.run_process(lfs_body())
    lfs_rate = nwrites / (sim.now - start)
    lfs_disk_ops = sum(p.disk.reads + p.disk.writes for p in paths_lfs)

    # --- FFS
    sim2 = Simulator()
    paths_ffs, raid_ffs = _make_raid5(sim2)
    ffs = UpdateInPlaceFS(sim2, raid_ffs, max_files=16)
    sim2.run_process(ffs.format())
    sim2.run_process(ffs.create("/f"))
    ops_before = sum(p.disk.reads + p.disk.writes for p in paths_ffs)
    start = sim2.now

    def ffs_body():
        for offset in offsets:
            yield from ffs.write("/f", offset, blob)

    sim2.run_process(ffs_body())
    ffs_rate = nwrites / (sim2.now - start)
    ffs_disk_ops = sum(p.disk.reads + p.disk.writes
                       for p in paths_ffs) - ops_before

    return ExperimentResult(
        experiment_id="ablation-lfs-vs-ffs",
        title="4 KB random writes: LFS vs update-in-place FS on RAID 5",
        scalars={
            "lfs_writes_per_s": lfs_rate,
            "ffs_writes_per_s": ffs_rate,
            "lfs_speedup": lfs_rate / ffs_rate,
            "lfs_disk_ops_per_write": lfs_disk_ops / nwrites,
            "ffs_disk_ops_per_write": ffs_disk_ops / nwrites,
        },
        paper={"ffs_disk_ops_per_write": 4.0},
        notes=[
            "Traditional FS: each small write is a RAID-5 "
            "read-modify-write (4 accesses) plus in-place metadata.",
            "LFS buffers small writes and emits full-stripe segment "
            "writes — the reason RAID-II runs LFS (Section 3.1).",
        ],
    )


# ---------------------------------------------------------------------------
# scaling with XBUS boards
# ---------------------------------------------------------------------------

def run_scaling(quick: bool = False) -> ExperimentResult:
    per_board_requests = 4 if quick else 10
    size = 1600 * KIB
    series = Series("aggregate bandwidth", "XBUS boards", "MB/s")
    util_series = Series("host CPU utilization", "XBUS boards", "fraction")

    for boards in (1, 2, 3, 4):
        sim = Simulator()
        server = Raid2Server(sim, Raid2Config(boards=boards))
        row = (server.raids[0].layout.data_units_per_row
               * server.raids[0].stripe_unit_bytes)
        stride = -(-size // row) * row
        start = sim.now

        def board_stream(board_index):
            for index in range(per_board_requests):
                yield from server.hw_read(index * stride, size, board_index)
                yield from server.host.handle_io()

        procs = []
        for board_index in range(boards):
            procs.append(sim.process(board_stream(board_index)))
            procs.append(sim.process(board_stream(board_index)))
        sim.run()
        elapsed = sim.now - start
        moved = 2 * boards * per_board_requests * size
        series.add(boards, moved / MB / elapsed)
        util_series.add(boards, server.host.cpu_utilization(elapsed))

    return ExperimentResult(
        experiment_id="ablation-scaling",
        title="Bandwidth scaling with additional XBUS boards",
        series=[series, util_series],
        scalars={
            "one_board_mb_s": series.y_at(1),
            "four_boards_mb_s": series.y_at(4),
            "scaling_efficiency": series.y_at(4) / (4 * series.y_at(1)),
        },
        paper={},
        notes=[
            "Each board adds network-attached bandwidth; only control "
            "work lands on the host, so scaling holds until the host "
            "CPU saturates (Section 2.1.2).",
        ],
    )


# ---------------------------------------------------------------------------
# RAID 5 vs RAID 3 under concurrent small reads
# ---------------------------------------------------------------------------

def run_raid3(quick: bool = False) -> ExperimentResult:
    ops = 24 if quick else 64
    levels = {}
    for level in ("raid5", "raid3"):
        series = Series(f"{level} small-read rate", "concurrent streams",
                        "IO/s")
        for concurrency in (1, 2, 4, 8):
            sim = Simulator()
            paths = [DirectDiskPath(DiskDrive(sim, SMALL_DISK,
                                              name=f"d{index}"))
                     for index in range(9)]
            if level == "raid5":
                ctrl = Raid5Controller(sim, paths, 64 * KIB)
            else:
                ctrl = Raid3Controller(sim, paths)
            rng = random.Random(42)
            requests = [(rng.randrange(0, 40_000) * SECTOR_SIZE, 4096)
                        for _ in range(ops)]

            def op(offset, nbytes):
                yield from ctrl.read(offset, nbytes)

            result = run_request_stream(sim, op, requests, concurrency)
            series.add(concurrency, result.ios_per_s)
        levels[level] = series

    raid5 = levels["raid5"]
    raid3 = levels["raid3"]
    return ExperimentResult(
        experiment_id="ablation-raid3",
        title="Concurrent 4 KB reads: RAID 5 vs RAID 3 (HPDS comparison)",
        series=[raid5, raid3],
        scalars={
            "raid5_scaling_1_to_8": raid5.y_at(8) / raid5.y_at(1),
            "raid3_scaling_1_to_8": raid3.y_at(8) / raid3.y_at(1),
        },
        paper={},
        notes=[
            "RAID 5 'can execute several small, independent I/Os in "
            "parallel; RAID Level 3 supports only one small I/O at a "
            "time' (Section 4.2).",
        ],
    )


# ---------------------------------------------------------------------------
# segment-cleaner overhead
# ---------------------------------------------------------------------------

def run_cleaner(quick: bool = False) -> ExperimentResult:
    spec = dataclasses.replace(NO_OVERHEAD_SPEC, segment_bytes=256 * KIB)
    # A deliberately small volume (8 x 1.5 MiB disks -> ~42 segments) so
    # the log actually runs out of clean segments during the workload.
    disk_bytes = 3 * MIB // 2
    write_batch = 12 if quick else 30
    blob = bytes(64 * KIB)

    def fresh_log_rate() -> float:
        sim = Simulator()
        _paths, raid = _make_raid5(sim, disk_bytes=disk_bytes)
        fs = LogStructuredFS(sim, raid, spec=spec, max_inodes=64)
        sim.run_process(fs.format())
        sim.run_process(fs.create("/f"))
        start = sim.now

        def body():
            for index in range(write_batch):
                yield from fs.write("/f", index * 64 * KIB, blob)
            yield from fs.sync()

        sim.run_process(body())
        # Binary-sized volume reported as decimal MB/s on purpose.
        return write_batch * 64 * KIB / MB / (sim.now - start)  # lint: disable=UNIT002

    def fragmented_log_rate() -> float:
        sim = Simulator()
        _paths, raid = _make_raid5(sim, disk_bytes=disk_bytes)
        fs = LogStructuredFS(sim, raid, spec=spec, max_inodes=256)
        sim.run_process(fs.format())
        # Fragment the log: fill with many files, delete every other one.
        nfiles = 40

        def fragment():
            for index in range(nfiles):
                path = f"/junk{index:03d}"
                yield from fs.create(path)
                yield from fs.write(path, 0, bytes(192 * KIB))
            yield from fs.sync()
            for index in range(0, nfiles, 2):
                yield from fs.unlink(f"/junk{index:03d}")
            yield from fs.sync()

        sim.run_process(fragment())
        sim.run_process(fs.create("/f"))
        start = sim.now

        def body():
            for index in range(write_batch):
                if fs.free_segments() < 6:
                    yield from fs.clean(max_segments=4)
                yield from fs.write("/f", index * 64 * KIB, blob)
            yield from fs.sync()

        sim.run_process(body())
        # Binary-sized volume reported as decimal MB/s on purpose.
        return write_batch * 64 * KIB / MB / (sim.now - start)  # lint: disable=UNIT002

    fresh = fresh_log_rate()
    fragmented = fragmented_log_rate()
    return ExperimentResult(
        experiment_id="ablation-cleaner",
        title="Write bandwidth: fresh log vs fragmented log with cleaning",
        scalars={
            "fresh_log_mb_s": fresh,
            "fragmented_with_cleaner_mb_s": fragmented,
            "cleaner_overhead_fraction": 1.0 - fragmented / fresh,
        },
        paper={},
        notes=[
            "The paper's prototype lacked the cleaner; this measures "
            "the cost of the piece they left out.",
        ],
    )
