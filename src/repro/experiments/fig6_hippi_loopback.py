"""Figure 6 — HIPPI loopback performance.

"In the loopback mode, the overhead of sending a HIPPI packet is about
1.1 milliseconds ... For large requests, however, the XBUS and HIPPI
boards support 38 megabytes/second in both directions."

Data moves XBUS memory -> HIPPI source -> HIPPI destination -> XBUS
memory, both directions streaming concurrently; small transfers are
dominated by the register-setup overhead across the slow VME link.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, Series
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB, MB

FULL_SIZES_KIB = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
QUICK_SIZES_KIB = [8, 64, 512, 4096]

PAPER_ANCHORS = {
    "loopback_plateau_mb_s": 38.5,
    "packet_overhead_ms": 1.1,
}


def run(quick: bool = False) -> ExperimentResult:
    sizes = QUICK_SIZES_KIB if quick else FULL_SIZES_KIB
    repeats = 3 if quick else 6

    series = Series("loopback throughput", "transfer KB",
                    "MB/s per direction")
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.paper_default())
    board = server.board

    for size_kib in sizes:
        nbytes = size_kib * KIB
        start = sim.now

        def body():
            for _ in range(repeats):
                yield from board.hippi_loopback(nbytes)

        sim.run_process(body())
        elapsed = sim.now - start
        series.add(size_kib, repeats * nbytes / MB / elapsed)

    # Derive the small-transfer overhead from the tiniest point.
    smallest = sizes[0] * KIB
    per_op = smallest / (series.y_at(sizes[0]) * MB)
    overhead_ms = (per_op - smallest / (38.5 * MB)) * 1000

    return ExperimentResult(
        experiment_id="fig6",
        title="HIPPI loopback throughput vs transfer size",
        series=[series],
        scalars={
            "loopback_plateau_mb_s": series.y_at(sizes[-1]),
            "packet_overhead_ms": overhead_ms,
        },
        paper=PAPER_ANCHORS,
        notes=[
            "Loopback: no network protocol overhead; both directions "
            "stream concurrently at the port rate.",
            "~3x FDDI and two orders of magnitude above Ethernet.",
        ],
    )
