"""One module per paper table/figure, plus ablations.

Every experiment exposes ``run(quick=False) -> ExperimentResult``;
``quick=True`` shrinks request counts for smoke tests.  The benchmark
harness under ``benchmarks/`` regenerates each table/figure by calling
these and printing the series next to the paper's anchors.
"""

from repro.experiments.base import ExperimentResult, Point, Series

__all__ = ["ExperimentResult", "Point", "Series"]
