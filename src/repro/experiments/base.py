"""Shared result containers and rendering for the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Point:
    """One (x, y) sample of a swept series."""

    x: float
    y: float


@dataclass
class Series:
    """A named curve, e.g. 'random reads' over request size."""

    name: str
    x_label: str
    y_label: str
    points: list[Point] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append(Point(x, y))

    def y_at(self, x: float) -> float:
        for point in self.points:
            if point.x == x:
                return point.y
        raise KeyError(f"no point at x={x!r} in series {self.name!r}")

    @property
    def max_y(self) -> float:
        return max(point.y for point in self.points)


@dataclass
class ExperimentResult:
    """Everything one experiment produced, ready to render."""

    experiment_id: str
    title: str
    series: list[Series] = field(default_factory=list)
    #: Named scalar results (peak rates, I/O rates, utilizations...).
    scalars: dict[str, float] = field(default_factory=dict)
    #: The paper's anchor values for the scalars, same keys where known.
    paper: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: Metrics-registry snapshots from the simulators the experiment
    #: ran (one entry per run), filled in when the CLI observes the
    #: run; see repro.obs.  Shape: {"run1": {component: {name: ...}}}.
    metrics: dict = field(default_factory=dict)

    def series_named(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"no series {name!r} in {self.experiment_id}")

    def render(self) -> str:
        """Human-readable text report (what the benches print)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.scalars:
            width = max(len(key) for key in self.scalars)
            for key, value in self.scalars.items():
                anchor = self.paper.get(key)
                suffix = f"   (paper: {anchor:g})" if anchor is not None else ""
                lines.append(f"  {key:<{width}} : {value:8.2f}{suffix}")
        for series in self.series:
            lines.append(f"  -- {series.name} "
                         f"({series.x_label} -> {series.y_label})")
            for point in series.points:
                lines.append(f"     {point.x:>12g}  {point.y:10.2f}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def ratio(measured: float, anchor: Optional[float]) -> Optional[float]:
    """measured / paper anchor, when an anchor exists."""
    if anchor in (None, 0):
        return None
    return measured / anchor
