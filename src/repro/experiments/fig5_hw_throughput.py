"""Figure 5 — hardware system level read and write performance.

"RAID-II achieves approximately 20 megabytes/second for both random
reads and writes" at large request sizes, with a dip in the read curve
at 768 KB where "the striping scheme involves a second string on one
of the controllers".

Setup (Section 2.3): one XBUS board, RAID 5, one parity group of 24
disks, four Cougars; data travels disk -> XBUS memory -> HIPPI source
-> HIPPI destination -> XBUS memory.  Reads issue synchronous random
requests; writes are buffered in XBUS memory (the data already
originates there), so two requests are in flight — and the write
driver lays requests out stripe-aligned, as a raw-array benchmark
naturally does.
"""

from __future__ import annotations

import random

from repro.experiments.base import ExperimentResult, Series
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB
from repro.workloads import random_aligned_offsets, run_request_stream

#: Request sizes swept (KiB); the paper's x-axis spans ~32 KB-1.6 MB.
FULL_SIZES_KIB = [64, 128, 256, 384, 512, 640, 704, 768, 832, 896,
                  1024, 1280, 1600]
QUICK_SIZES_KIB = [128, 512, 704, 768, 832, 1600]

PAPER_ANCHORS = {
    "read_plateau_mb_s": 20.0,
    "write_plateau_mb_s": 20.0,
}


def _measure(mode: str, size: int, count: int, seed: int) -> float:
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.paper_default())
    capacity = server.raid.capacity_bytes
    rng = random.Random(seed)
    if mode == "read":
        requests = random_aligned_offsets(rng, capacity, size, count,
                                          alignment=512)
        concurrency = 1

        def op(offset, nbytes):
            yield from server.hw_read(offset, nbytes)
    else:
        row = (server.raid.layout.data_units_per_row
               * server.raid.stripe_unit_bytes)
        span = -(-size // row) * row
        slots = (capacity - span) // row
        requests = [(rng.randrange(slots) * row, size) for _ in range(count)]
        concurrency = 2  # write-behind through XBUS memory

        def op(offset, nbytes):
            yield from server.hw_write(offset, nbytes)

    return run_request_stream(sim, op, requests, concurrency).mb_per_s


def run(quick: bool = False) -> ExperimentResult:
    sizes = QUICK_SIZES_KIB if quick else FULL_SIZES_KIB
    count = 6 if quick else 12

    reads = Series("random reads", "request KB", "MB/s")
    writes = Series("random writes", "request KB", "MB/s")
    for size_kib in sizes:
        reads.add(size_kib, _measure("read", size_kib * KIB, count, seed=101))
        writes.add(size_kib, _measure("write", size_kib * KIB, count,
                                      seed=202))

    result = ExperimentResult(
        experiment_id="fig5",
        title="Hardware system level random read/write throughput",
        series=[reads, writes],
        scalars={
            "read_plateau_mb_s": reads.y_at(sizes[-1]),
            "write_plateau_mb_s": writes.y_at(sizes[-1]),
            "read_dip_768_vs_704_ratio":
                reads.y_at(768) / reads.y_at(704) if 704 in sizes else 0.0,
        },
        paper=PAPER_ANCHORS,
        notes=[
            "Reads: synchronous random requests, sector-aligned.",
            "Writes: stripe-aligned, two in flight (XBUS write-behind).",
            "Paper dip at 768 KB: request begins engaging a second "
            "string on one controller.",
        ],
    )
    return result
