"""Section 3.4's network measurements: one SPARCstation 10/51 client.

"A SPARCstation 10/51 client on the HIPPI network writes data to
RAID-II at 3.1 megabytes per second ... utilization of the Sun4/280
workstation due to network operations is close to zero ... [the
polling read driver] limits RAID-II read operations for a single
SPARCstation client to 3.2 megabytes/second."
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.net import UltranetLink
from repro.server import Raid2Config, Raid2Server
from repro.server.raid2 import make_sparcstation_client
from repro.sim import Simulator
from repro.units import MB, MIB

PAPER_ANCHORS = {
    "client_read_mb_s": 3.2,
    "client_write_mb_s": 3.1,
    "host_cpu_util_during_writes": 0.02,
}


def run(quick: bool = False) -> ExperimentResult:
    nbytes = (2 if quick else 6) * MIB
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.fig8_lfs())
    sim.run_process(server.setup_lfs())
    client = make_sparcstation_client(sim)
    link = UltranetLink(sim)
    payload = bytes(nbytes)

    def prepare():
        yield from server.fs.create("/media")
        yield from server.fs.write("/media", 0, payload)
        yield from server.fs.sync()

    sim.run_process(prepare())

    start = sim.now
    sim.run_process(server.client_read(client, link, "/media", 0, nbytes))
    read_rate = nbytes / MB / (sim.now - start)

    start = sim.now
    cpu_before = server.host.cpu_busy_time
    sim.run_process(server.client_write(client, link, "/media", 0, payload))
    write_elapsed = sim.now - start
    write_rate = nbytes / MB / write_elapsed
    cpu_util = (server.host.cpu_busy_time - cpu_before) / write_elapsed

    # "RAID-II is capable of scaling to much higher bandwidth": three
    # clients writing concurrently, each limited by its own copy stack.
    trio = [make_sparcstation_client(sim, name=f"c{index}")
            for index in range(3)]
    trio_links = [UltranetLink(sim, name=f"l{index}") for index in range(3)]
    chunk = nbytes // 2

    def prepare_targets():
        for index in range(3):
            yield from server.fs.create(f"/t{index}")

    sim.run_process(prepare_targets())
    start = sim.now
    procs = [
        sim.process(server.client_write(trio[index], trio_links[index],
                                        f"/t{index}", 0, bytes(chunk)))
        for index in range(3)
    ]
    sim.run()
    aggregate = 3 * chunk / MB / (sim.now - start)
    assert all(proc.processed for proc in procs)

    return ExperimentResult(
        experiment_id="netclient",
        title="Single SPARCstation 10/51 client over the Ultranet",
        scalars={
            "client_read_mb_s": read_rate,
            "client_write_mb_s": write_rate,
            "host_cpu_util_during_writes": cpu_util,
            "aggregate_write_3_clients_mb_s": aggregate,
        },
        paper=PAPER_ANCHORS,
        notes=[
            "Both directions limited by the client's copy-heavy "
            "user-level network stack, not by RAID-II.",
            "Reads also hold the host CPU (the preliminary polling "
            "driver, Section 3.4).",
        ],
    )
