"""Table 1 — peak sequential read/write bandwidth of one XBUS board.

"For requests of size 1.6 megabytes, read performance is 31
megabytes/second, compared to 23 megabytes/second for writes."

Setup: the four data-port Cougars plus "a fifth disk controller
attached to the XBUS control bus interface" — 30 disks on ten strings.
The streaming harness strides whole stripe rows and keeps three
requests in flight (the double-buffering a sequential driver's
read-ahead provides).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB
from repro.workloads import run_request_stream

REQUEST_BYTES = 1600 * KIB

PAPER_ANCHORS = {
    "sequential_read_mb_s": 31.0,
    "sequential_write_mb_s": 23.0,
}


def _measure(mode: str, count: int) -> float:
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.table1_sequential())
    row = (server.raid.layout.data_units_per_row
           * server.raid.stripe_unit_bytes)
    stride = -(-REQUEST_BYTES // row) * row
    capacity = server.raid.capacity_bytes
    requests = [((index * stride) % (capacity - stride), REQUEST_BYTES)
                for index in range(count)]

    if mode == "read":
        def op(offset, nbytes):
            yield from server.hw_read(offset, nbytes)
    else:
        def op(offset, nbytes):
            yield from server.hw_write(offset, nbytes)

    return run_request_stream(sim, op, requests, concurrency=3).mb_per_s


def run(quick: bool = False) -> ExperimentResult:
    count = 10 if quick else 30
    read_rate = _measure("read", count)
    write_rate = _measure("write", count)
    return ExperimentResult(
        experiment_id="table1",
        title="Peak sequential bandwidth, one XBUS board (30 disks)",
        scalars={
            "sequential_read_mb_s": read_rate,
            "sequential_write_mb_s": write_rate,
            "read_over_write": read_rate / write_rate,
        },
        paper=dict(PAPER_ANCHORS, read_over_write=31.0 / 23.0),
        notes=[
            "Fifth Cougar on the control port; 1.6 MB requests, "
            "row-strided, three in flight.",
            "Writes trail reads: no track-buffer read-ahead plus "
            "parity traffic (Section 2.3).",
        ],
    )
