"""Table 2 — small random I/O rates: RAID-I vs RAID-II.

4 KB random reads, one process per active disk.  The paper measures
~275 IO/s for RAID-I and "over 400" for RAID-II on fifteen disks, and
notes RAID-II delivers a higher fraction of its disks' potential (78%
vs 67%) because data need not move through the host.

The RAID-II path: disk -> Cougar -> VME -> XBUS memory, with the host
CPU only fielding the completion.  The RAID-I path additionally drags
every byte across the host's backplane and memory system and pays a
larger per-I/O CPU cost for copy management.
"""

from __future__ import annotations

import random

from repro.experiments.base import ExperimentResult
from repro.server import Raid1Server, Raid2Config, Raid2Server
from repro.sim import Simulator

OPS_PER_DISK = 60
OPS_PER_DISK_QUICK = 25

PAPER_ANCHORS = {
    "raid2_1disk_ios": 34.0,
    "raid2_15disk_ios": 400.0,
    "raid1_1disk_ios": 27.5,
    "raid1_15disk_ios": 275.0,
    "raid2_delivered_fraction": 0.78,
    "raid1_delivered_fraction": 0.67,
}


def _raid2_rate(ndisks: int, ops_per_disk: int, seed: int) -> float:
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.table2_small_io(ndisks))
    paths = server.board.disk_paths(limit=ndisks)
    rng = random.Random(seed)
    completed = [0]

    def worker(path):
        for _ in range(ops_per_disk):
            lba = rng.randrange(0, path.disk.num_sectors - 8)
            yield from path.read(lba, 8)
            yield from server.host.handle_io()
            completed[0] += 1

    for path in paths:
        sim.process(worker(path))
    elapsed = sim.run()
    return completed[0] / elapsed


def _raid1_rate(ndisks: int, ops_per_disk: int, seed: int) -> float:
    sim = Simulator()
    server = Raid1Server(sim)
    rng = random.Random(seed)
    completed = [0]

    def worker(path):
        for _ in range(ops_per_disk):
            lba = rng.randrange(0, path.disk.num_sectors - 8)
            data = yield from path.read(lba, 8)
            yield from server.host.copy(len(data))
            yield from server.host.handle_io()
            completed[0] += 1

    for path in server.paths[:ndisks]:
        sim.process(worker(path))
    elapsed = sim.run()
    return completed[0] / elapsed


def run(quick: bool = False) -> ExperimentResult:
    ops = OPS_PER_DISK_QUICK if quick else OPS_PER_DISK
    raid2_one = _raid2_rate(1, ops, seed=31)
    raid2_fifteen = _raid2_rate(15, ops, seed=32)
    raid1_one = _raid1_rate(1, ops, seed=33)
    raid1_fifteen = _raid1_rate(15, ops, seed=34)
    return ExperimentResult(
        experiment_id="table2",
        title="4 KB random read I/O rates (one process per disk)",
        scalars={
            "raid2_1disk_ios": raid2_one,
            "raid2_15disk_ios": raid2_fifteen,
            "raid1_1disk_ios": raid1_one,
            "raid1_15disk_ios": raid1_fifteen,
            "raid2_delivered_fraction": raid2_fifteen / (15 * raid2_one),
            "raid1_delivered_fraction": raid1_fifteen / (15 * raid1_one),
        },
        paper=PAPER_ANCHORS,
        notes=[
            "IBM 0661 (RAID-II) vs Seagate Wren IV (RAID-I) drives.",
            "RAID-I moves all data through host memory; RAID-II does "
            "not, hence the higher delivered fraction.",
        ],
    )
