"""Extension experiment: Figure 5's read sweep in degraded mode.

Re-runs the hardware-system-level random-read sweep with a
:class:`~repro.faults.plan.FaultPlan` that kills one disk halfway
through each measurement — RAID-II keeps serving every byte by
reconstructing the dead disk's units through parity, at reduced
bandwidth.  The plan-driven injection (rather than a manual ``fail()``)
exercises the same machinery the fault-matrix tests replay.
"""

from __future__ import annotations

import random

from repro.experiments.base import ExperimentResult, Series
from repro.faults import DiskDeath, FaultPlan, attach_server
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB, MIB
from repro.workloads import random_aligned_offsets, run_request_stream

FULL_SIZES_KIB = [128, 256, 512, 1024, 1600]
QUICK_SIZES_KIB = [256, 1024]

#: Bytes of real data laid down before measuring, so the post-run
#: repair + rebuild + parity scrub exercises nonzero content.
SEED_BYTES = 2 * MIB
#: Disk (in striping order) the plan kills.
VICTIM = 7


def _run(size: int, count: int, seed: int, plan_for=None):
    """One fresh-server measurement; returns (server, measurement).

    ``plan_for`` maps the freshly built server to a
    :class:`FaultPlan` (plans name disks, and the names live on the
    server's topology).
    """
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.paper_default())
    if plan_for is not None:
        attach_server(plan_for(server), server)
    pattern = bytes(range(256)) * (SEED_BYTES // 256)
    sim.run_process(server.raid.write(0, pattern))
    rng = random.Random(seed)
    requests = random_aligned_offsets(
        rng, server.raid.capacity_bytes, size, count, alignment=512)

    def op(offset, nbytes):
        yield from server.hw_read(offset, nbytes)

    return server, run_request_stream(sim, op, requests)


def run(quick: bool = False) -> ExperimentResult:
    sizes = QUICK_SIZES_KIB if quick else FULL_SIZES_KIB
    count = 5 if quick else 10
    rebuild_rows = 32

    healthy = Series("healthy reads", "request KB", "MB/s")
    degraded = Series("degraded reads (1 disk dead)", "request KB", "MB/s")
    degraded_reads_total = 0
    last_server = None
    for size_kib in sizes:
        _, clean = _run(size_kib * KIB, count, seed=11)
        healthy.add(size_kib, clean.mb_per_s)
        # Kill one disk halfway through the healthy run's duration:
        # early requests run clean, later ones reconstruct.
        server, hurt = _run(
            size_kib * KIB, count, seed=11,
            plan_for=lambda s: FaultPlan.of(DiskDeath(
                disk=s.raid.paths[VICTIM].disk.name,
                at_s=clean.elapsed_s / 2)))
        degraded.add(size_kib, hurt.mb_per_s)
        degraded_reads_total += server.raid.degraded_reads
        last_server = server

    # Close the loop on the last (degraded) server: replace the dead
    # disk, rebuild the seeded region, and scrub its parity.
    raid = last_server.raid
    raid.paths[VICTIM].disk.repair()
    last_server.sim.run_process(raid.rebuild(VICTIM, max_rows=rebuild_rows))
    parity_clean = raid.verify_parity(max_rows=rebuild_rows)

    last = sizes[-1]
    return ExperimentResult(
        experiment_id="fig5-degraded",
        title="Figure 5 read sweep, healthy vs degraded (fault plan)",
        series=[healthy, degraded],
        scalars={
            "healthy_plateau_mb_s": healthy.y_at(last),
            "degraded_plateau_mb_s": degraded.y_at(last),
            "degraded_fraction": degraded.y_at(last) / healthy.y_at(last),
            "degraded_reads_total": float(degraded_reads_total),
            "parity_clean_after_rebuild": 1.0 if parity_clean else 0.0,
        },
        paper={},
        notes=[
            "A FaultPlan kills one disk mid-measurement; all reads "
            "still complete via parity reconstruction.",
            "After the sweep the dead disk is replaced, rebuilt over "
            "the seeded region, and its parity scrubbed clean.",
        ],
    )
