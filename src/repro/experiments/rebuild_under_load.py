"""Extension experiment: rebuild bandwidth with and without load.

After a disk replacement the array must reconstruct its contents while
continuing to serve clients.  This measures the tension from both
sides on a small-disk server: the rebuild's own data rate idle vs with
a concurrent client read stream, and the client stream healthy vs
while the rebuild runs.
"""

from __future__ import annotations

import dataclasses
import random

from repro.experiments.base import ExperimentResult
from repro.hw.specs import IBM_0661
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB, MB, MIB
from repro.workloads import random_aligned_offsets, run_request_stream

#: Shrunken disks so a full-depth rebuild stays cheap.
SMALL_DISK = dataclasses.replace(IBM_0661, capacity_bytes=16 * MIB)
SEED_BYTES = 2 * MIB
REQUEST = 256 * KIB
VICTIM = 7


def _client_reads(server, sim, count, seed):
    rng = random.Random(seed)
    requests = random_aligned_offsets(rng, SEED_BYTES, REQUEST, count,
                                      alignment=512)

    def op(offset, nbytes):
        yield from server.hw_read(offset, nbytes)

    return run_request_stream(sim, op, requests)


def run(quick: bool = False) -> ExperimentResult:
    count = 6 if quick else 16
    rebuild_rows = 48 if quick else 256
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.paper_default(
        disk_spec=SMALL_DISK))
    raid = server.raid
    pattern = bytes(range(256)) * (SEED_BYTES // 256)
    sim.run_process(raid.write(0, pattern))

    healthy = _client_reads(server, sim, count, seed=21).mb_per_s

    # Round 1: rebuild with no competing traffic.
    raid.paths[VICTIM].disk.fail()
    raid.paths[VICTIM].disk.repair()
    start = sim.now
    sim.run_process(raid.rebuild(VICTIM, max_rows=rebuild_rows))
    idle_elapsed = sim.now - start
    rebuilt_bytes = rebuild_rows * raid.stripe_unit_bytes

    # Round 2: same rebuild racing a client read stream.
    raid.paths[VICTIM].disk.fail()
    raid.paths[VICTIM].disk.repair()
    start = sim.now
    rebuild_proc = sim.process(raid.rebuild(VICTIM, max_rows=rebuild_rows))
    during = _client_reads(server, sim, count, seed=22).mb_per_s
    sim.run()  # let the rebuild drain
    assert rebuild_proc.processed
    loaded_elapsed = sim.now - start

    parity_clean = raid.verify_parity(max_rows=rebuild_rows)
    idle_rate = rebuilt_bytes / MB / idle_elapsed
    loaded_rate = rebuilt_bytes / MB / loaded_elapsed
    return ExperimentResult(
        experiment_id="rebuild-under-load",
        title="Rebuild data rate vs concurrent client bandwidth",
        scalars={
            "rebuild_idle_mb_s": idle_rate,
            "rebuild_under_load_mb_s": loaded_rate,
            "client_healthy_mb_s": healthy,
            "client_during_rebuild_mb_s": during,
            "rebuild_slowdown_fraction": loaded_rate / idle_rate,
            "client_slowdown_fraction": during / healthy,
            "parity_clean_after_rebuild": 1.0 if parity_clean else 0.0,
        },
        paper={},
        notes=[
            "Per-row locks let client reads interleave with the "
            "rebuild frontier; reads past it reconstruct via parity.",
            "The loaded rebuild elapsed time includes the tail after "
            "the client stream finishes.",
        ],
    )
