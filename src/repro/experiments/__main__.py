"""Run experiments from the command line.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig5 table2 ...     # quick runs
    python -m repro.experiments --full fig8         # full-resolution
    python -m repro.experiments all
    python -m repro.experiments --trace out.json fig5   # Perfetto trace
    python -m repro.experiments --metrics table2        # registry dump

``--trace FILE`` records sim-time spans for a single experiment and
writes a Chrome ``trace_event`` JSON file loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``; a per-layer
breakdown table is printed alongside.  ``--metrics`` prints each run's
metrics-registry snapshot after the experiment's own report.
"""

from __future__ import annotations

import sys

from repro.experiments import (ablations, degraded_mode, fig5_degraded,
                               fig5_hw_throughput, fig6_hippi_loopback,
                               fig7_string_scaling, fig8_lfs_throughput,
                               network_clients, raid1_baseline,
                               rebuild_under_load, recovery_time,
                               table1_peak_sequential, table2_small_io,
                               vme_ports, zebra_scaling)
from repro.obs import (chrome_trace_json, observe, render_layer_breakdown,
                       render_metrics_snapshot)

REGISTRY = {
    "fig5": fig5_hw_throughput.run,
    "fig6": fig6_hippi_loopback.run,
    "fig7": fig7_string_scaling.run,
    "fig8": fig8_lfs_throughput.run,
    "table1": table1_peak_sequential.run,
    "table2": table2_small_io.run,
    "raid1-baseline": raid1_baseline.run,
    "vme-ports": vme_ports.run,
    "netclient": network_clients.run,
    "recovery-time": recovery_time.run,
    "degraded-mode": degraded_mode.run,
    "fig5-degraded": fig5_degraded.run,
    "rebuild-under-load": rebuild_under_load.run,
    "zebra": zebra_scaling.run,
    "ablation-datapath": ablations.run_datapath,
    "ablation-lfs-vs-ffs": ablations.run_lfs_vs_ffs,
    "ablation-scaling": ablations.run_scaling,
    "ablation-raid3": ablations.run_raid3,
    "ablation-cleaner": ablations.run_cleaner,
}


def _parse(argv: list[str]):
    """Split argv into (names, quick, trace_path, want_metrics)."""
    names: list[str] = []
    quick = True
    trace_path = None
    want_metrics = False
    position = 0
    while position < len(argv):
        arg = argv[position]
        if arg == "--full":
            quick = False
        elif arg == "--metrics":
            want_metrics = True
        elif arg == "--trace":
            position += 1
            if position >= len(argv):
                raise ValueError("--trace needs an output path")
            trace_path = argv[position]
        elif arg.startswith("--trace="):
            trace_path = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            raise ValueError(f"unknown option {arg!r}")
        else:
            names.append(arg)
        position += 1
    return names, quick, trace_path, want_metrics


def main(argv: list[str]) -> int:
    try:
        args, quick, trace_path, want_metrics = _parse(argv)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    if not args or args == ["list"]:
        print("available experiments:")
        for name in REGISTRY:
            print(f"  {name}")
        print("\nusage: python -m repro.experiments [--full] "
              "[--trace out.json] [--metrics] <name>... | all | list")
        return 0
    names = list(REGISTRY) if args == ["all"] else args
    if trace_path is not None and len(names) != 1:
        print("--trace records one experiment at a time; "
              f"got {len(names)} names", file=sys.stderr)
        return 2
    for name in names:
        runner = REGISTRY.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; try 'list'",
                  file=sys.stderr)
            return 2
        with observe(trace=trace_path is not None) as session:
            result = runner(quick=quick)
        result.metrics = session.metrics_snapshot()
        print(result.render())
        if trace_path is not None:
            with open(trace_path, "w", encoding="utf-8") as handle:
                handle.write(chrome_trace_json(session))
            nspans = sum(len(tracer.finished)
                         for tracer in session.tracers)
            print(f"\nwrote {nspans} spans to {trace_path} "
                  "(load in https://ui.perfetto.dev)")
            print(render_layer_breakdown(session))
        if want_metrics:
            print()
            print(render_metrics_snapshot(result.metrics))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
