"""Run experiments from the command line.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig5 table2 ...     # quick runs
    python -m repro.experiments --full fig8         # full-resolution
    python -m repro.experiments all
"""

from __future__ import annotations

import sys

from repro.experiments import (ablations, degraded_mode, fig5_hw_throughput,
                               fig6_hippi_loopback, fig7_string_scaling,
                               fig8_lfs_throughput, network_clients,
                               raid1_baseline, recovery_time,
                               table1_peak_sequential, table2_small_io,
                               vme_ports, zebra_scaling)

REGISTRY = {
    "fig5": fig5_hw_throughput.run,
    "fig6": fig6_hippi_loopback.run,
    "fig7": fig7_string_scaling.run,
    "fig8": fig8_lfs_throughput.run,
    "table1": table1_peak_sequential.run,
    "table2": table2_small_io.run,
    "raid1-baseline": raid1_baseline.run,
    "vme-ports": vme_ports.run,
    "netclient": network_clients.run,
    "recovery-time": recovery_time.run,
    "degraded-mode": degraded_mode.run,
    "zebra": zebra_scaling.run,
    "ablation-datapath": ablations.run_datapath,
    "ablation-lfs-vs-ffs": ablations.run_lfs_vs_ffs,
    "ablation-scaling": ablations.run_scaling,
    "ablation-raid3": ablations.run_raid3,
    "ablation-cleaner": ablations.run_cleaner,
}


def main(argv: list[str]) -> int:
    args = [arg for arg in argv if arg != "--full"]
    quick = "--full" not in argv
    if not args or args == ["list"]:
        print("available experiments:")
        for name in REGISTRY:
            print(f"  {name}")
        print("\nusage: python -m repro.experiments [--full] "
              "<name>... | all | list")
        return 0
    names = list(REGISTRY) if args == ["all"] else args
    for name in names:
        runner = REGISTRY.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; try 'list'",
                  file=sys.stderr)
            return 2
        print(runner(quick=quick).render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
