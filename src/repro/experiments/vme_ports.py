"""Section 2.3's VME port microbenchmark.

"our relatively slow, synchronous VME interface ports ... only support
6.9 megabytes/second on read operations and 5.9 megabytes/second on
write operations" — the stated reason hardware system-level bandwidth
falls short of the 40 MB/s design goal.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.hw import VmePort
from repro.hw.vme import Direction
from repro.sim import Simulator
from repro.units import KIB, MB

PAPER_ANCHORS = {
    "vme_read_mb_s": 6.9,
    "vme_write_mb_s": 5.9,
}


def _port_rate(direction: Direction, transfers: int) -> float:
    sim = Simulator()
    port = VmePort(sim)
    nbytes = 64 * KIB

    def body():
        for _ in range(transfers):
            yield from port.transfer(nbytes, direction)

    sim.run_process(body())
    return transfers * nbytes / MB / sim.now


def run(quick: bool = False) -> ExperimentResult:
    transfers = 8 if quick else 32
    return ExperimentResult(
        experiment_id="vme-ports",
        title="XBUS VME data-port sustained rates",
        scalars={
            "vme_read_mb_s": _port_rate(Direction.READ, transfers),
            "vme_write_mb_s": _port_rate(Direction.WRITE, transfers),
        },
        paper=PAPER_ANCHORS,
        notes=[
            "The synchronous VME interface is the gap between the "
            "40 MB/s port design goal and delivered disk bandwidth.",
        ],
    )
