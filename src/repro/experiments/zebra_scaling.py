"""Section 5.2 (future work, implemented): Zebra striping across servers.

"Its use with RAID-II would provide a mechanism for striping
high-bandwidth file accesses over multiple network connections, and
therefore across multiple XBUS boards."  This experiment measures a
Zebra client's log-write and read bandwidth as storage servers are
added, plus the cost of reading through a failed server (parity
reconstruction).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, Series
from repro.sim import Simulator
from repro.units import KIB, MB, MIB
from repro.zebra import ZebraClient, ZebraStorageServer


def _ensemble(sim: Simulator, nservers: int):
    servers = [ZebraStorageServer(sim, name=f"zs{index}")
               for index in range(nservers)]
    client = ZebraClient(sim, servers, fragment_bytes=256 * KIB)
    return servers, client


def run(quick: bool = False) -> ExperimentResult:
    payload_mib = 4 if quick else 12
    payload = bytes(payload_mib * MIB)
    server_counts = (3, 4, 6) if quick else (3, 4, 5, 6)

    writes = Series("log write bandwidth", "storage servers", "MB/s")
    reads = Series("read bandwidth", "storage servers", "MB/s")
    for nservers in server_counts:
        sim = Simulator()
        _servers, client = _ensemble(sim, nservers)
        # ZebraClient.create is synchronous (name-collides with the
        # LFS process of the same name).
        client.create("/data")  # lint: disable=SIM001
        start = sim.now

        def write_body():
            yield from client.write("/data", 0, payload)
            yield from client.sync()

        sim.run_process(write_body())
        writes.add(nservers, len(payload) / MB / (sim.now - start))

        start = sim.now
        sim.run_process(client.read("/data", 0, len(payload)))
        reads.add(nservers, len(payload) / MB / (sim.now - start))

    # Degraded read: one server down, parity reconstruction on the fly.
    sim = Simulator()
    servers, client = _ensemble(sim, 4)
    client.create("/data")  # lint: disable=SIM001
    sim.run_process(client.write("/data", 0, payload))
    sim.run_process(client.sync())
    start = sim.now
    sim.run_process(client.read("/data", 0, len(payload)))
    healthy = len(payload) / MB / (sim.now - start)
    servers[1].fail()
    start = sim.now
    sim.run_process(client.read("/data", 0, len(payload)))
    degraded = len(payload) / MB / (sim.now - start)

    return ExperimentResult(
        experiment_id="zebra",
        title="Zebra: striping the client log across RAID-II servers",
        series=[writes, reads],
        scalars={
            "write_scaling_3_to_max": writes.points[-1].y / writes.points[0].y,
            "healthy_read_mb_s": healthy,
            "degraded_read_mb_s": degraded,
            "degraded_read_fraction": degraded / healthy,
        },
        paper={},
        notes=[
            "Each stripe's fragments (data + rotating parity) are "
            "stored on distinct servers in parallel.",
            "A single server loss costs bandwidth (every fragment on "
            "it is rebuilt by XOR from the stripe survivors) but no "
            "data.",
            "The client here is bandwidth-capable (a supercomputer "
            "class sink), not the copy-limited SPARCstation of "
            "Section 3.4.",
        ],
    )
