"""Section 3.1's recovery claim: LFS check vs UNIX-style fsck.

"For a 1 gigabyte file system, it takes a few seconds to perform an
LFS file system check, compared with approximately 20 minutes to check
the consistency of a typical UNIX file system of comparable size."

Both file systems are populated with the same file set on equal-sized
RAID-5 arrays, then checked: the LFS check is a crash-mount (read the
checkpoint and imap, roll the log tail forward); the UNIX-style fsck
walks every inode and indirect block on the volume.  The measured
ratio is reported along with a linear extrapolation to a 1 GB volume.
"""

from __future__ import annotations

import dataclasses
import random

from repro.experiments.base import ExperimentResult
from repro.ffs import UpdateInPlaceFS
from repro.hw import IBM_0661, DiskDrive
from repro.hw.specs import LFS_SPEC
from repro.lfs import LogStructuredFS
from repro.raid import DirectDiskPath, Raid5Controller
from repro.sim import Simulator
from repro.units import GB, KIB, MIB

SPEC = dataclasses.replace(LFS_SPEC, fs_overhead_s=0.0,
                           small_write_overhead_s=0.0)


def _make_array(sim: Simulator, disk_bytes: int):
    disk_spec = dataclasses.replace(IBM_0661, capacity_bytes=disk_bytes)
    paths = [DirectDiskPath(DiskDrive(sim, disk_spec, name=f"d{index}"))
             for index in range(8)]
    return Raid5Controller(sim, paths, 64 * KIB)


def run(quick: bool = False) -> ExperimentResult:
    nfiles = 60 if quick else 200
    file_bytes = 96 * KIB  # large enough to need an indirect block
    disk_bytes = 16 * MIB if quick else 48 * MIB
    rng = random.Random(3)

    # ---- LFS: populate, crash, measure the mount ----
    sim = Simulator()
    raid = _make_array(sim, disk_bytes)
    volume_bytes = raid.capacity_bytes
    lfs = LogStructuredFS(sim, raid, spec=SPEC, max_inodes=nfiles + 16)
    sim.run_process(lfs.format())

    def populate_lfs():
        for index in range(nfiles):
            path = f"/f{index:04d}"
            yield from lfs.create(path)
            yield from lfs.write(path, 0, rng.randbytes(file_bytes))
        yield from lfs.checkpoint()
        # A little post-checkpoint activity for roll-forward to chew on.
        yield from lfs.write("/f0000", 0, rng.randbytes(32 * KIB))
        yield from lfs.sync()

    sim.run_process(populate_lfs())
    lfs.crash()
    remount = LogStructuredFS(sim, raid, spec=SPEC, max_inodes=nfiles + 16)
    start = sim.now
    sim.run_process(remount.mount())
    lfs_check_s = sim.now - start

    # ---- FFS: same file set, then fsck ----
    sim2 = Simulator()
    raid2 = _make_array(sim2, disk_bytes)
    ffs = UpdateInPlaceFS(sim2, raid2, max_files=nfiles + 16)
    sim2.run_process(ffs.format())
    rng2 = random.Random(3)

    def populate_ffs():
        # Two passes, the second in random file order, so the indirect
        # blocks end up scattered across the volume — the natural state
        # of an aged update-in-place file system (and the reason fsck
        # seeks so much).
        for index in range(nfiles):
            path = f"/f{index:04d}"
            yield from ffs.create(path)
            yield from ffs.write(path, 0, rng2.randbytes(44 * KIB))
        order = list(range(nfiles))
        rng2.shuffle(order)
        for index in order:
            path = f"/f{index:04d}"
            yield from ffs.write(path, 44 * KIB,
                                 rng2.randbytes(file_bytes - 44 * KIB))

    sim2.run_process(populate_ffs())
    start = sim2.now
    report = sim2.run_process(ffs.fsck())
    fsck_s = sim2.now - start
    assert report["errors"] == 0

    # Extrapolate by file population: a 1 GB volume of the era held on
    # the order of 30k files (~35 KB average).  fsck's cost is per
    # file; the LFS check's cost is a checkpoint read plus the log
    # tail, independent of volume size.
    files_per_gb = 30_000
    fsck_per_file_s = fsck_s / nfiles
    return ExperimentResult(
        experiment_id="recovery-time",
        title="Crash-check time: LFS roll-forward vs UNIX-style fsck",
        scalars={
            "lfs_check_s": lfs_check_s,
            "fsck_s": fsck_s,
            "fsck_over_lfs": fsck_s / lfs_check_s,
            "fsck_per_file_ms": fsck_per_file_s * 1000,
            "fsck_extrapolated_1gb_min":
                fsck_per_file_s * files_per_gb / 60.0,
            "lfs_extrapolated_1gb_s": lfs_check_s,
        },
        paper={
            "fsck_extrapolated_1gb_min": 20.0,
            "lfs_extrapolated_1gb_s": 3.0,  # "a few seconds"
        },
        notes=[
            "LFS reads the checkpoint + imap and rolls the short log "
            "tail forward; fsck walks every inode and indirect block "
            "of an aged (scattered-metadata) volume.",
            "Extrapolation: ~30k files per GB at 1993 file sizes; the "
            "LFS check does not grow with the volume.",
        ],
    )
