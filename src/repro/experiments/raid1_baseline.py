"""Section 1's RAID-I baseline numbers — the motivation for RAID-II.

"RAID-I proved woefully inadequate at providing high-bandwidth I/O,
sustaining at best 2.3 megabytes/second to a user-level application
... a single disk on RAID-I can sustain 1.3 megabytes/second.  The
bandwidth of nearly 26 of the 28 disks in the array is effectively
wasted."
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.server import Raid1Server, Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import KIB, MIB, SECTOR_SIZE
from repro.workloads import run_request_stream

PAPER_ANCHORS = {
    "raid1_app_read_mb_s": 2.3,
    "raid1_single_disk_mb_s": 1.3,
    "raid2_hw_read_mb_s": 20.0,
    "improvement_factor": 10.0,
}


def run(quick: bool = False) -> ExperimentResult:
    count = 4 if quick else 10

    # RAID-I striped read delivered to a user application.
    sim = Simulator()
    raid1 = Raid1Server(sim)
    requests = [(index * MIB, 1 * MIB) for index in range(count)]

    def app_read(offset, nbytes):
        yield from raid1.app_read(offset, nbytes)

    raid1_rate = run_request_stream(sim, app_read, requests).mb_per_s

    # A single RAID-I disk, with user-space copy overlapped (read-ahead).
    sim2 = Simulator()
    raid1b = Raid1Server(sim2)
    disk = raid1b.paths[0].disk
    single_requests = [(index * 64 * KIB, 64 * KIB)
                       for index in range(count * 4)]

    def single_read(offset, nbytes):
        yield from raid1b.single_disk_read(
            0, offset // SECTOR_SIZE, nbytes // SECTOR_SIZE)

    single_rate = run_request_stream(sim2, single_read, single_requests,
                                     concurrency=2).mb_per_s

    # RAID-II hardware level, same class of streaming workload.
    sim3 = Simulator()
    raid2 = Raid2Server(sim3, Raid2Config.paper_default())
    row = (raid2.raid.layout.data_units_per_row
           * raid2.raid.stripe_unit_bytes)
    stride = -(-1600 * KIB // row) * row
    seq = [(index * stride, 1600 * KIB) for index in range(count)]

    def hw_read(offset, nbytes):
        yield from raid2.hw_read(offset, nbytes)

    raid2_rate = run_request_stream(sim3, hw_read, seq,
                                    concurrency=3).mb_per_s

    wasted_disks = 28 - raid1_rate / single_rate
    return ExperimentResult(
        experiment_id="raid1-baseline",
        title="RAID-I's host-bound ceiling vs RAID-II (Section 1)",
        scalars={
            "raid1_app_read_mb_s": raid1_rate,
            "raid1_single_disk_mb_s": single_rate,
            "raid2_hw_read_mb_s": raid2_rate,
            "improvement_factor": raid2_rate / raid1_rate,
            "raid1_wasted_disks_of_28": wasted_disks,
        },
        paper=dict(PAPER_ANCHORS, raid1_wasted_disks_of_28=26.0),
        notes=[
            "RAID-I: every byte crosses the Sun 4/280 backplane and is "
            "copied kernel->user, saturating the memory system.",
            "RAID-II: an order of magnitude more bandwidth from the "
            "same class of host (the paper's central claim).",
        ],
    )
