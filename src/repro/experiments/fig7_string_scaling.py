"""Figure 7 — disk read performance vs disks on one SCSI string.

"Cougar string bandwidth is limited to about 3 megabytes/second, less
than that of three disks.  The dashed line indicates the performance
if bandwidth scaled linearly."

One Cougar, one string, 1..5 disks streaming 64 KB sequential reads.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, Series
from repro.hw import IBM_0661, CougarController, DiskDrive
from repro.sim import Simulator
from repro.units import KIB, MB, SECTOR_SIZE

PAPER_ANCHORS = {
    "string_plateau_mb_s": 3.0,
    "single_disk_mb_s": 2.0,
}


def _rate_with_disks(ndisks: int, ops_per_disk: int) -> float:
    sim = Simulator()
    cougar = CougarController(sim, name="c0")
    string = cougar.strings[0]
    disks = []
    for index in range(ndisks):
        disk = DiskDrive(sim, IBM_0661, name=f"d{index}")
        string.attach(disk)
        disks.append(disk)

    unit = 64 * KIB
    nsectors = unit // SECTOR_SIZE

    def streamer(disk):
        for op in range(ops_per_disk):
            yield from cougar.read(disk, op * nsectors, nsectors)

    for disk in disks:
        sim.process(streamer(disk))
    elapsed = sim.run()
    return ndisks * ops_per_disk * unit / MB / elapsed


def run(quick: bool = False) -> ExperimentResult:
    ops = 10 if quick else 30
    measured = Series("measured", "disks on string", "MB/s")
    linear = Series("linear scaling (dashed)", "disks on string", "MB/s")
    single = _rate_with_disks(1, ops)
    for ndisks in range(1, 6):
        measured.add(ndisks, _rate_with_disks(ndisks, ops))
        linear.add(ndisks, ndisks * single)

    return ExperimentResult(
        experiment_id="fig7",
        title="Disk read performance vs disks per SCSI string",
        series=[measured, linear],
        scalars={
            "single_disk_mb_s": single,
            "string_plateau_mb_s": measured.y_at(5),
        },
        paper=PAPER_ANCHORS,
        notes=[
            "The string saturates near 3 MB/s — below three disks' "
            "aggregate media rate, the stated limit on hardware "
            "system-level performance.",
        ],
    )
