"""Extension experiment: the array under failure and repair.

The paper defers reliability analysis to its references ([4], [16],
[6] in Section 2.3) but the machinery is all here, so we measure what
the prototype would have delivered: client read bandwidth healthy,
degraded (one disk dead, every affected unit reconstructed through
parity), and while a replacement disk rebuilds in the background, plus
the rebuild's own data rate.
"""

from __future__ import annotations

import random

from repro.experiments.base import ExperimentResult
from repro.server import Raid2Config, Raid2Server
from repro.sim import Simulator
from repro.units import MB, MIB
from repro.workloads import random_aligned_offsets, run_request_stream

REQUEST = MIB


def _measure_reads(server, sim, count, seed) -> float:
    rng = random.Random(seed)
    requests = random_aligned_offsets(
        rng, server.raid.capacity_bytes, REQUEST, count, alignment=512)

    def op(offset, nbytes):
        yield from server.hw_read(offset, nbytes)

    return run_request_stream(sim, op, requests).mb_per_s


def run(quick: bool = False) -> ExperimentResult:
    count = 5 if quick else 12
    rebuild_rows = 16 if quick else 48
    sim = Simulator()
    server = Raid2Server(sim, Raid2Config.paper_default())

    # Seed the array so reads return real data everywhere we touch.
    def seed_array():
        yield from server.raid.write(0, bytes(2 * REQUEST))

    sim.run_process(seed_array())

    healthy = _measure_reads(server, sim, count, seed=1)

    victim_index = 7
    server.raid.paths[victim_index].disk.fail()
    degraded = _measure_reads(server, sim, count, seed=2)

    # Replace the disk; measure client reads *while* the rebuild runs.
    server.raid.paths[victim_index].disk.repair()
    rebuild_start = sim.now
    rebuild_proc = sim.process(
        server.raid.rebuild(victim_index, max_rows=rebuild_rows))
    during_rebuild = _measure_reads(server, sim, count, seed=3)
    sim.run()  # let the rebuild finish
    rebuild_elapsed = sim.now - rebuild_start
    rebuilt_bytes = rebuild_rows * server.raid.stripe_unit_bytes
    assert rebuild_proc.processed

    return ExperimentResult(
        experiment_id="degraded-mode",
        title="Read bandwidth: healthy vs degraded vs rebuilding",
        scalars={
            "healthy_mb_s": healthy,
            "degraded_mb_s": degraded,
            "during_rebuild_mb_s": during_rebuild,
            "degraded_fraction": degraded / healthy,
            "rebuild_rate_mb_s": rebuilt_bytes / MB / rebuild_elapsed,
        },
        paper={},
        notes=[
            "Degraded reads reconstruct every unit of the failed disk "
            "from the row's survivors plus parity.",
            "The rebuild runs under per-row locks; client traffic "
            "continues concurrently with reduced bandwidth.",
        ],
    )
