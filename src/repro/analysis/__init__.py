"""Static lints and runtime sanitizers for the reproduction.

Two halves:

* **Static lints** (:mod:`repro.analysis.lint` plus the rule modules)
  catch the silent failure modes of generator-based simulation code —
  an ``Event``-returning call that is never yielded is a no-op, and
  wall-clock time or unseeded randomness silently breaks determinism.
* **Runtime sanitizers** (:mod:`repro.analysis.fsck_lfs`,
  :mod:`repro.analysis.scrub_raid`) verify on-disk invariants: LFS
  metadata consistency (the machine-checked analogue of the UNIX
  ``fsck`` pass Section 3.1 contrasts with LFS roll-forward) and
  RAID parity cleanliness (scrubbing, a first-class operation in
  production arrays).

Run ``python -m repro.analysis --help`` for the command-line front end;
integration tests can finish with
:func:`repro.testing.assert_fs_consistent` /
:func:`repro.testing.assert_parity_clean`.
"""

from repro.analysis.fsck_lfs import FsckReport, fsck
from repro.analysis.lint import (Finding, Linter, LintRule, all_rules,
                                 lint_paths, register_rule)
from repro.analysis.scrub_raid import (ScrubReport, scrub_array, scrub_images,
                                       scrub_process)

# Importing the rule modules registers the concrete rules.
from repro.analysis import rules_sim as _rules_sim  # noqa: F401,E402
from repro.analysis import rules_units as _rules_units  # noqa: F401,E402

__all__ = [
    "Finding",
    "FsckReport",
    "LintRule",
    "Linter",
    "ScrubReport",
    "all_rules",
    "fsck",
    "lint_paths",
    "register_rule",
    "scrub_array",
    "scrub_images",
    "scrub_process",
]
