"""The lint framework: rule registry, findings, pragma handling.

Rules are small classes registered with :func:`register_rule`.  A rule
sees the whole *project* first (:meth:`LintRule.prepare`) — which lets
the simulation rules learn, from the code base itself, which functions
are simulation processes — and is then asked to :meth:`LintRule.check`
each source file.

Suppression pragmas, honoured by the framework (not the rules):

* ``# lint: disable=CODE[,CODE...]`` on a finding's line suppresses
  those codes for that line (``all`` suppresses every code);
* ``# lint: disable-file=CODE[,CODE...]`` anywhere in a file
  suppresses those codes for the whole file.

Everything here is stdlib-``ast`` only; no third-party dependency.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Type

_LINE_PRAGMA = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_*,\s]+|all)")
_FILE_PRAGMA = re.compile(r"#\s*lint:\s*disable-file=([A-Za-z0-9_*,\s]+|all)")


@dataclass(frozen=True)
class Finding:
    """One lint hit, pointing at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


class SourceFile:
    """A parsed source file plus its suppression pragmas."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        annotate_parents(self.tree)
        self.file_disabled: set[str] = set()
        self.line_disabled: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _FILE_PRAGMA.search(line)
            if match:
                self.file_disabled |= _parse_codes(match.group(1))
                continue
            match = _LINE_PRAGMA.search(line)
            if match:
                self.line_disabled[lineno] = _parse_codes(match.group(1))

    def suppressed(self, finding: Finding) -> bool:
        for codes in (self.file_disabled,
                      self.line_disabled.get(finding.line, ())):
            if "all" in codes or finding.code in codes:
                return True
        return False


def _parse_codes(raw: str) -> set[str]:
    return {code.strip() for code in raw.split(",") if code.strip()}


def annotate_parents(tree: ast.AST) -> None:
    """Attach a ``_lint_parent`` attribute to every node."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_lint_parent", None)


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Yield ``node``'s descendants without entering nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(child))


def is_generator(func: ast.FunctionDef) -> bool:
    """True when the function's own body contains a yield."""
    return any(isinstance(child, (ast.Yield, ast.YieldFrom))
               for child in walk_scope(func))


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def call_name(call: ast.Call) -> Optional[str]:
    """The terminal name of a call: ``a.b.c(...)`` -> ``c``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class Project:
    """All files under analysis, plus facts rules derive across them."""

    def __init__(self, files: list[SourceFile]):
        self.files = files
        #: Names of functions/methods, defined anywhere in the linted
        #: tree, whose bodies contain a ``yield`` — i.e. the simulation
        #: processes.  Calling one of these and dropping the result is
        #: a silent no-op.
        self.generator_names: set[str] = set()
        for source in files:
            for func in iter_functions(source.tree):
                if is_generator(func):
                    self.generator_names.add(func.name)


class LintRule:
    """Base class for lint rules.  Subclass and register."""

    code = "XXX000"
    description = ""

    def prepare(self, project: Project) -> None:
        """Called once with the whole project before any check()."""

    def check(self, source: SourceFile,
              project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, source: SourceFile, node: ast.AST,
                message: str) -> Finding:
        return Finding(self.code, message, source.path,
                       getattr(node, "lineno", 0),
                       getattr(node, "col_offset", 0))


_RULES: list[Type[LintRule]] = []


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    _RULES.append(cls)
    return cls


def all_rules() -> list[Type[LintRule]]:
    return list(_RULES)


class Linter:
    """Runs a set of rules over a set of files."""

    def __init__(self, rules: Optional[Iterable[Type[LintRule]]] = None):
        self.rules = [cls() for cls in (rules if rules is not None
                                        else all_rules())]

    def run_sources(self, sources: list[SourceFile]) -> list[Finding]:
        project = Project(sources)
        for rule in self.rules:
            # prepare() collides by name with experiment generators;
            # here it is the plain hook above.
            rule.prepare(project)  # lint: disable=SIM001
        findings: list[Finding] = []
        for source in sources:
            for rule in self.rules:
                for finding in rule.check(source, project):
                    if not source.suppressed(finding):
                        findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return findings

    def run_text(self, text: str, path: str = "<string>") -> list[Finding]:
        """Lint a single in-memory snippet (used by the rule tests)."""
        return self.run_sources([SourceFile(path, text)])

    def run_paths(self, paths: Iterable[str]) -> list[Finding]:
        sources = []
        for filename in sorted(expand_paths(paths)):
            text = Path(filename).read_text(encoding="utf-8")
            sources.append(SourceFile(filename, text))
        return self.run_sources(sources)


def expand_paths(paths: Iterable[str]) -> list[str]:
    """Resolve files and directories into a list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            out.extend(str(f) for f in p.rglob("*.py")
                       if "__pycache__" not in f.parts
                       and "egg-info" not in "".join(f.parts))
        elif p.suffix == ".py":
            out.append(str(p))
    return out


def lint_paths(paths: Iterable[str]) -> list[Finding]:
    """Convenience front end: lint files/directories with every rule."""
    return Linter().run_paths(paths)
