"""Simulation-correctness lint rules (SIM001..SIM005).

The event kernel's contract is easy to violate silently:

* calling a simulation process (a generator function) without
  ``yield from`` creates a generator object and throws it away — the
  I/O it models simply never happens;
* an ``Event``-returning call (``resource.acquire()``,
  ``sim.timeout()``...) used as a bare statement is never waited on;
* wall-clock time or the global ``random`` module leaks host
  non-determinism into simulated time;
* a bare ``except:`` swallows :class:`repro.errors.SimulationError`
  (and ``Interrupt``), hiding kernel misuse;
* a stray ``bytes(...)``/slice copy on the data path silently undoes
  the zero-copy discipline (payloads are threaded as ``memoryview``
  slices and copied only at the durability boundary);
* a ``tracer.span(...)`` not used as a context manager never records
  its end time — the span silently covers zero sim-time (or leaks as
  an unfinished parent for every span opened after it).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import (Finding, LintRule, Project, SourceFile,
                                 call_name, is_generator, iter_functions,
                                 parent_of, register_rule, walk_scope)

#: Methods that return an Event the caller must wait on.  These come
#: from the kernel API (Simulator/Resource/Store), so they cannot be
#: discovered by the generator scan.
EVENT_RETURNING = {"acquire", "timeout", "all_of", "any_of"}

#: Generator-named calls that are legitimately dropped: spawning a
#: process is fire-and-forget by design.
_SPAWN_NAMES = {"process", "run_process"}

#: Method names shared with the builtin containers (``list.append``,
#: ``set.add``, ...).  A project generator with one of these names
#: (e.g. ``SegmentWriter.append``) cannot be told apart from the
#: builtin by name alone, so these are never flagged — the cost of a
#: purely syntactic analysis.
_AMBIGUOUS_NAMES = {"append", "add", "update", "extend", "insert", "pop",
                    "remove", "discard", "clear", "write", "close", "send",
                    "get", "set", "put"}


@register_rule
class UnyieldedEventCall(LintRule):
    """SIM001: a simulation-process or Event call whose result is dropped."""

    code = "SIM001"
    description = ("Event-returning call is never yielded "
                   "(the modelled work silently does not happen)")

    def check(self, source: SourceFile,
              project: Project) -> Iterator[Finding]:
        for func in iter_functions(source.tree):
            inside_generator = is_generator(func)
            for node in walk_scope(func):
                if not isinstance(node, ast.Expr) \
                        or not isinstance(node.value, ast.Call):
                    continue
                name = call_name(node.value)
                if name is None or name in _SPAWN_NAMES \
                        or name in _AMBIGUOUS_NAMES:
                    continue
                if name in project.generator_names:
                    how = "yield from" if inside_generator else "run_process"
                    yield self.finding(
                        source, node,
                        f"call to simulation process {name}() is a silent "
                        f"no-op; consume it with {how}")
                elif name in EVENT_RETURNING and inside_generator:
                    yield self.finding(
                        source, node,
                        f"{name}() returns an Event that is never yielded")


_TIME_CALLS = {"time", "sleep", "monotonic", "perf_counter", "time_ns",
               "monotonic_ns", "process_time"}
_DATETIME_CALLS = {"now", "utcnow", "today"}
#: ``random.Random(seed)`` constructs a seeded, reproducible generator
#: and is the sanctioned idiom; everything else on the module (or
#: ``SystemRandom``) is shared/unseeded state.
_RANDOM_OK = {"Random"}


@register_rule
class WallClockNondeterminism(LintRule):
    """SIM002: wall-clock time or unseeded randomness in sim code."""

    code = "SIM002"
    description = ("wall-clock or non-deterministic call "
                   "(breaks simulated-time reproducibility)")

    def check(self, source: SourceFile,
              project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            value = node.func.value
            if isinstance(value, ast.Name):
                if value.id == "time" and attr in _TIME_CALLS:
                    yield self.finding(
                        source, node,
                        f"time.{attr}() reads the wall clock; use the "
                        "simulator clock (sim.now / sim.timeout)")
                elif value.id == "random" and attr not in _RANDOM_OK:
                    yield self.finding(
                        source, node,
                        f"random.{attr}() uses the shared unseeded RNG; "
                        "use a seeded random.Random(seed) instance")
                elif value.id == "datetime" and attr in _DATETIME_CALLS:
                    yield self.finding(
                        source, node,
                        f"datetime.{attr}() reads the wall clock; "
                        "simulated time is sim.now")
            elif isinstance(value, ast.Attribute) \
                    and value.attr == "datetime" and attr in _DATETIME_CALLS:
                yield self.finding(
                    source, node,
                    f"datetime.datetime.{attr}() reads the wall clock; "
                    "simulated time is sim.now")


_BROAD = {"Exception", "BaseException"}


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    return any(isinstance(t, ast.Name) and t.id in _BROAD for t in types)


@register_rule
class SwallowedSimulationError(LintRule):
    """SIM003: a broad except that can swallow SimulationError."""

    code = "SIM003"
    description = ("bare/broad except swallows SimulationError "
                   "and Interrupt")

    def check(self, source: SourceFile,
              project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _handler_is_broad(node):
                continue
            if handler_reraises_or_uses(node):
                continue
            label = "bare except:" if node.type is None else \
                "broad except swallowing the exception"
            yield self.finding(
                source, node,
                f"{label} — SimulationError/Interrupt disappear here; "
                "catch specific errors or re-raise")


def handler_reraises_or_uses(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or inspects the exception."""
    body_nodes = [n for stmt in handler.body for n in ast.walk(stmt)]
    if any(isinstance(n, ast.Raise) for n in body_nodes):
        return True
    if handler.name is not None:
        return any(isinstance(n, ast.Name) and n.id == handler.name
                   for n in body_nodes)
    return False


# ---------------------------------------------------------------------------
# SIM004 — zero-copy discipline on the data path
# ---------------------------------------------------------------------------

#: Directories whose payload-carrying code is held to the zero-copy
#: discipline.  Anything outside these trees may copy freely.
_HOT_PATH_DIRS = {"hw", "raid", "lfs"}

#: Parameter annotations naming copy-on-slice buffer types.
_BUFFER_ANNOTATIONS = {"bytes", "bytearray"}


def _in_hot_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return any(part in _HOT_PATH_DIRS for part in parts)


def _buffer_params(func: ast.FunctionDef) -> set[str]:
    """Names of parameters annotated ``bytes``/``bytearray``."""
    args = func.args
    every = (args.posonlyargs + args.args + args.kwonlyargs
             + [a for a in (args.vararg, args.kwarg) if a is not None])
    names = set()
    for arg in every:
        ann = arg.annotation
        if isinstance(ann, ast.Name) and ann.id in _BUFFER_ANNOTATIONS:
            names.add(arg.arg)
    return names


def _is_constant_name(node: ast.AST) -> bool:
    """``BLOCK_SIZE``-style names: ALL_CAPS means a size constant, so
    ``bytes(BLOCK_SIZE)`` builds zeros rather than copying a buffer."""
    return isinstance(node, ast.Name) and node.id.isupper()


@register_rule
class DataPathCopy(LintRule):
    """SIM004: a buffer copy inside the hw/raid/lfs data path."""

    code = "SIM004"
    description = ("bytes()/slice copy on the zero-copy data path "
                   "(thread memoryview slices; copy only at the "
                   "durability boundary)")

    def check(self, source: SourceFile,
              project: Project) -> Iterator[Finding]:
        if not _in_hot_path(source.path):
            return
        yield from self._check_bytes_calls(source)
        yield from self._check_param_slices(source)

    def _check_bytes_calls(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Name) \
                    or node.func.id != "bytes" \
                    or len(node.args) != 1 or node.keywords:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Name) and not _is_constant_name(arg):
                yield self.finding(
                    source, node,
                    f"bytes({arg.id}) copies the whole buffer; pass the "
                    "buffer (or a memoryview of it) through unchanged")
            elif isinstance(arg, ast.Subscript) \
                    and isinstance(arg.slice, ast.Slice):
                yield self.finding(
                    source, node,
                    "bytes(buf[a:b]) materialises a copy; keep the "
                    "memoryview slice (copy only at the durability "
                    "boundary)")

    def _check_param_slices(self, source: SourceFile) -> Iterator[Finding]:
        # Only simulation processes (generators) are held to this: the
        # timed data path is made of processes, while plain helpers
        # (metadata codecs parsing 4 KB blocks) may slice freely.
        for func in iter_functions(source.tree):
            if not is_generator(func):
                continue
            buffers = _buffer_params(func)
            if not buffers:
                continue
            for node in walk_scope(func):
                if isinstance(node, ast.Subscript) \
                        and isinstance(node.slice, ast.Slice) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id in buffers:
                    yield self.finding(
                        source, node,
                        f"slicing bytes parameter {node.value.id!r} "
                        "copies; take memoryview("
                        f"{node.value.id}) once and slice that")


# ---------------------------------------------------------------------------
# SIM005 — span lifecycle discipline
# ---------------------------------------------------------------------------

#: Directories whose simulation processes must open spans with a
#: ``with`` statement: the instrumented data-path layers.
_SPAN_DIRS = _HOT_PATH_DIRS | {"server"}


def _in_span_dirs(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return any(part in _SPAN_DIRS for part in parts)


def _is_tracer_span(call: ast.Call) -> bool:
    """True for ``<...>.tracer.span(...)`` or ``tracer.span(...)``."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "span":
        return False
    owner = func.value
    if isinstance(owner, ast.Name):
        return owner.id == "tracer"
    return isinstance(owner, ast.Attribute) and owner.attr == "tracer"


@register_rule
class SpanNotContextManaged(LintRule):
    """SIM005: a tracer span opened without a ``with`` statement."""

    code = "SIM005"
    description = ("tracer.span() outside a with statement never "
                   "records its end time")

    def check(self, source: SourceFile,
              project: Project) -> Iterator[Finding]:
        if not _in_span_dirs(source.path):
            return
        for func in iter_functions(source.tree):
            if not is_generator(func):
                continue
            for node in walk_scope(func):
                if not isinstance(node, ast.Call) \
                        or not _is_tracer_span(node):
                    continue
                if isinstance(parent_of(node), ast.withitem):
                    continue
                yield self.finding(
                    source, node,
                    "tracer.span() must be the context expression of a "
                    "with statement ('with tracer.span(...):'); opened "
                    "any other way the span never ends and mis-parents "
                    "everything traced after it")
