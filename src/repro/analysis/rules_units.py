"""Unit-hygiene lint rules (UNIT001, UNIT002).

The paper reports decimal megabytes/second while block devices are
sized in binary units; :mod:`repro.units` exists so every size or time
literal names its unit.  These rules catch the two failure modes:
re-spelling a constant as a magic number, and mixing decimal (KB/MB/GB)
with binary (KIB/MIB) factors in one expression.
"""

from __future__ import annotations

# The rule tables below spell the magic values out on purpose.
# lint: disable-file=UNIT001

import ast
from typing import Iterator

from repro.analysis.lint import (Finding, LintRule, Project, SourceFile,
                                 parent_of, register_rule)

#: Literals that always have a named equivalent in repro.units.
_EXACT = {
    1000 * 1000: "MB",
    1000 * 1000 * 1000: "GB",
    1024 * 1024: "MIB",
    1024 * 1024 * 1024: "1024 * MIB",
}

#: Literals flagged only when used as a multiplication/division factor
#: (``n * 512``, ``x / 1024``): standalone uses (buffer sizes, counts)
#: are usually not unit conversions.
_FACTOR_ONLY = {
    512: "SECTOR_SIZE",
    1024: "KIB",
    0.001: "MS",
    1e-06: "US",
}

_MULDIV = (ast.Mult, ast.Div, ast.FloorDiv)


@register_rule
class MagicUnitLiteral(LintRule):
    """UNIT001: a magic size/time literal with a repro.units name."""

    code = "UNIT001"
    description = "magic size/time literal; use the repro.units constant"

    def check(self, source: SourceFile,
              project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Constant) \
                    or isinstance(node.value, bool) \
                    or not isinstance(node.value, (int, float)):
                continue
            value = node.value
            if value in _EXACT:
                yield self.finding(
                    source, node,
                    f"magic literal {value!r}; use repro.units."
                    f"{_EXACT[value]}")
            elif value in _FACTOR_ONLY and self._is_factor(node):
                yield self.finding(
                    source, node,
                    f"magic unit factor {value!r}; use repro.units."
                    f"{_FACTOR_ONLY[value]}")

    @staticmethod
    def _is_factor(node: ast.AST) -> bool:
        parent = parent_of(node)
        return isinstance(parent, ast.BinOp) \
            and isinstance(parent.op, _MULDIV)


_DECIMAL = {"KB", "MB", "GB"}
_BINARY = {"KIB", "MIB"}


@register_rule
class MixedUnitFamilies(LintRule):
    """UNIT002: decimal MB and binary MiB factors in one expression."""

    code = "UNIT002"
    description = "decimal (KB/MB/GB) and binary (KIB/MIB) units mixed"

    def check(self, source: SourceFile,
              project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.BinOp):
                continue
            # Only report at the topmost BinOp of an expression tree so
            # one mixed expression produces one finding.
            if isinstance(parent_of(node), ast.BinOp):
                continue
            names = {n.id for n in ast.walk(node)
                     if isinstance(n, ast.Name)}
            decimal = names & _DECIMAL
            binary = names & _BINARY
            if decimal and binary:
                yield self.finding(
                    source, node,
                    f"expression mixes decimal ({', '.join(sorted(decimal))})"
                    f" and binary ({', '.join(sorted(binary))}) units")
