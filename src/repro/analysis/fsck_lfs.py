"""Offline LFS consistency checker (the sanitizer half of analysis).

Section 3.1 of the paper contrasts LFS roll-forward recovery with the
UNIX ``fsck`` pass; this module is the machine-checked version of that
pass for our LFS: an *instant* (peek-based, no simulated time) audit of
the on-disk structures of a mounted, flushed volume.

Checks performed:

* superblock on disk decodes and matches the mounted geometry;
* the newest checkpoint region agrees with the in-memory imap block
  addresses (checkpoint/imap agreement);
* on-disk imap blocks byte-match the in-memory inode map;
* every allocated inode decodes, carries its own number, and its whole
  pointer tree (direct, indirect, double-indirect) stays inside the
  log with **no block address claimed twice**;
* pointers past EOF are null (a truncate that forgot to clear one
  would resurrect stale data);
* every allocated inode is reachable from the root directory exactly
  once, and every directory entry points to an allocated inode of the
  recorded type;
* the segment usage table matches the actual live block population
  (clean segments hold zero live bytes).

The checker reads disk state via ``peek`` so it needs a volume whose
volatile state has been flushed — :func:`repro.testing.assert_fs_consistent`
checkpoints first.  Unflushed state is itself reported as a finding
rather than silently tolerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CorruptFileSystemError
from repro.lfs import directory as dirmod
from repro.lfs.imap import PENDING
from repro.lfs.ondisk import (ADDRS_PER_BLOCK, BLOCK_SIZE, N_DIRECT,
                              NULL_ADDR, Checkpoint, FileType, Inode,
                              SegmentState, Superblock, decode_pointer_block)

ROOT_INO = 1


@dataclass(frozen=True)
class FsckFinding:
    """One inconsistency, with a stable code for tests to match on."""

    code: str
    message: str

    def render(self) -> str:
        return f"{self.code}: {self.message}"


@dataclass
class FsckReport:
    """Everything one fsck pass established."""

    findings: list[FsckFinding] = field(default_factory=list)
    files: int = 0
    directories: int = 0
    blocks_claimed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def codes(self) -> set[str]:
        return {finding.code for finding in self.findings}

    def add(self, code: str, message: str) -> None:
        self.findings.append(FsckFinding(code, message))

    def render(self) -> str:
        head = (f"fsck: {self.files} files, {self.directories} directories, "
                f"{self.blocks_claimed} blocks, "
                f"{len(self.findings)} inconsistencies")
        return "\n".join([head] + [f.render() for f in self.findings])


class _Fsck:
    """One audit run over a mounted LFS."""

    def __init__(self, fs):
        self.fs = fs
        self.report = FsckReport()
        #: block address -> human description of its claimant
        self.claimed: dict[int, str] = {}

    # -- helpers --------------------------------------------------------
    def _peek_block(self, addr: int) -> bytes:
        return self.fs.device.peek(addr * BLOCK_SIZE, BLOCK_SIZE)

    def _log_range(self) -> tuple[int, int]:
        sb = self.fs.sb
        start = sb.first_segment_block
        return start, start + sb.nsegments * sb.segment_blocks

    def _claim(self, addr: int, owner: str) -> bool:
        """Range-check and claim ``addr``; False when unusable."""
        lo, hi = self._log_range()
        if not lo <= addr < hi:
            self.report.add(
                "FSCK-RANGE",
                f"{owner}: address {addr} outside the log [{lo}, {hi})")
            return False
        previous = self.claimed.get(addr)
        if previous is not None:
            self.report.add(
                "FSCK-DUP",
                f"address {addr} claimed by both {previous} and {owner}")
            return False
        self.claimed[addr] = owner
        self.report.blocks_claimed += 1
        return True

    # -- phases ---------------------------------------------------------
    def run(self) -> FsckReport:
        fs = self.fs
        if not fs.mounted:
            self.report.add("FSCK-STATE", "file system is not mounted")
            return self.report
        self._check_volatile_flushed()
        self._check_superblock()
        self._check_checkpoint()
        self._check_imap_blocks()
        inodes = self._check_inodes()
        self._check_reachability(inodes)
        self._check_segment_usage()
        return self.report

    def _check_volatile_flushed(self) -> None:
        fs = self.fs
        if fs.writer is not None and fs.writer.pending_count:
            self.report.add(
                "FSCK-STATE",
                f"{fs.writer.pending_count} buffered blocks not flushed; "
                "checkpoint before fsck")
        if fs._dirty_inodes or fs._dirty_chunks or fs.imap.dirty_blocks:
            self.report.add(
                "FSCK-STATE",
                "dirty metadata in memory; checkpoint before fsck")

    def _check_superblock(self) -> None:
        try:
            on_disk = Superblock.decode(self._peek_block(0))
        except CorruptFileSystemError as exc:
            self.report.add("FSCK-SB", f"superblock unreadable: {exc}")
            return
        if on_disk != self.fs.sb:
            self.report.add(
                "FSCK-SB", "on-disk superblock differs from mounted geometry")

    def _check_checkpoint(self) -> None:
        fs = self.fs
        best: Checkpoint | None = None
        for base in (fs.sb.checkpoint_a, fs.sb.checkpoint_b):
            raw = fs.device.peek(base * BLOCK_SIZE,
                                 fs.sb.checkpoint_blocks * BLOCK_SIZE)
            try:
                candidate = Checkpoint.decode(raw)
            except CorruptFileSystemError:
                continue
            if best is None or candidate.seq > best.seq:
                best = candidate
        if best is None:
            self.report.add("FSCK-CP", "no valid checkpoint region on disk")
            return
        if best.seq != fs.checkpoint_seq:
            self.report.add(
                "FSCK-CP",
                f"newest checkpoint seq {best.seq} != mounted seq "
                f"{fs.checkpoint_seq}")
        if list(best.imap_addrs) != list(fs.imap_addrs):
            self.report.add(
                "FSCK-CP",
                "checkpoint imap addresses disagree with the mounted imap")

    def _check_imap_blocks(self) -> None:
        fs = self.fs
        for index, addr in enumerate(fs.imap_addrs):
            if addr == NULL_ADDR:
                continue
            if not self._claim(addr, f"imap block {index}"):
                continue
            try:
                expected = fs.imap.encode_block(index)
            except CorruptFileSystemError as exc:
                self.report.add("FSCK-IMAP", f"imap block {index}: {exc}")
                continue
            if self._peek_block(addr) != expected:
                self.report.add(
                    "FSCK-IMAP",
                    f"on-disk imap block {index} (addr {addr}) disagrees "
                    "with the in-memory inode map")

    def _check_inodes(self) -> dict[int, Inode]:
        """Validate every allocated inode and claim its block tree."""
        fs = self.fs
        inodes: dict[int, Inode] = {}
        for ino in fs.imap.allocated_inodes():
            addr = fs.imap.get(ino)
            if addr == PENDING:
                self.report.add(
                    "FSCK-IMAP", f"inode {ino} still PENDING in the imap")
                continue
            if not self._claim(addr, f"inode {ino}"):
                continue
            try:
                inode = Inode.decode(self._peek_block(addr))
            except CorruptFileSystemError as exc:
                self.report.add(
                    "FSCK-INODE",
                    f"inode {ino} at address {addr} unreadable: {exc}")
                continue
            if inode.ino != ino:
                self.report.add(
                    "FSCK-INODE",
                    f"imap entry {ino} points at inode numbered {inode.ino}")
                continue
            inodes[ino] = inode
            if inode.ftype == FileType.DIRECTORY:
                self.report.directories += 1
            else:
                self.report.files += 1
            self._check_pointer_tree(inode)
        return inodes

    def _check_pointer_tree(self, inode: Inode) -> None:
        nblocks = -(-inode.size // BLOCK_SIZE)
        owner = f"inode {inode.ino}"
        for bidx, addr in enumerate(inode.direct):
            if addr == NULL_ADDR:
                continue
            if bidx >= nblocks:
                self.report.add(
                    "FSCK-EOF",
                    f"{owner}: direct pointer {bidx} past EOF is non-null")
                continue
            self._claim(addr, f"{owner} data block {bidx}")
        indirect_needed = nblocks > N_DIRECT
        if inode.indirect != NULL_ADDR and not indirect_needed:
            self.report.add(
                "FSCK-EOF", f"{owner}: indirect block past EOF is non-null")
        elif inode.indirect != NULL_ADDR:
            self._check_chunk(inode, inode.indirect, chunk_index=0,
                              nblocks=nblocks)
        dindirect_needed = nblocks > N_DIRECT + ADDRS_PER_BLOCK
        if inode.dindirect != NULL_ADDR and not dindirect_needed:
            self.report.add(
                "FSCK-EOF",
                f"{owner}: double-indirect block past EOF is non-null")
        elif inode.dindirect != NULL_ADDR:
            if not self._claim(inode.dindirect, f"{owner} dindirect root"):
                return
            droot = decode_pointer_block(self._peek_block(inode.dindirect))
            for child_index, child in enumerate(droot):
                if child == NULL_ADDR:
                    continue
                self._check_chunk(inode, child, chunk_index=child_index + 1,
                                  nblocks=nblocks)

    def _check_chunk(self, inode: Inode, root: int, chunk_index: int,
                     nblocks: int) -> None:
        owner = f"inode {inode.ino}"
        if not self._claim(root, f"{owner} pointer block {chunk_index}"):
            return
        chunk = decode_pointer_block(self._peek_block(root))
        base = N_DIRECT + chunk_index * ADDRS_PER_BLOCK
        for slot, addr in enumerate(chunk):
            if addr == NULL_ADDR:
                continue
            bidx = base + slot
            if bidx >= nblocks:
                self.report.add(
                    "FSCK-EOF",
                    f"{owner}: pointer to block {bidx} past EOF is non-null")
                continue
            self._claim(addr, f"{owner} data block {bidx}")

    # -- reachability ---------------------------------------------------
    def _read_file_payload(self, inode: Inode) -> bytes:
        """Assemble a file's bytes straight from the disk store."""
        nblocks = -(-inode.size // BLOCK_SIZE)
        chunks: list[bytes] = []
        for bidx in range(nblocks):
            addr = self._block_addr(inode, bidx)
            if addr == NULL_ADDR:
                chunks.append(bytes(BLOCK_SIZE))
            else:
                chunks.append(self._peek_block(addr))
        return b"".join(chunks)[:inode.size]

    def _block_addr(self, inode: Inode, bidx: int) -> int:
        if bidx < N_DIRECT:
            return inode.direct[bidx]
        rel = bidx - N_DIRECT
        chunk_index, slot = rel // ADDRS_PER_BLOCK, rel % ADDRS_PER_BLOCK
        if chunk_index == 0:
            root = inode.indirect
        else:
            if inode.dindirect == NULL_ADDR:
                return NULL_ADDR
            droot = decode_pointer_block(self._peek_block(inode.dindirect))
            root = droot[chunk_index - 1]
        if root == NULL_ADDR:
            return NULL_ADDR
        chunk = decode_pointer_block(self._peek_block(root))
        return chunk[slot]

    def _check_reachability(self, inodes: dict[int, Inode]) -> None:
        fs = self.fs
        if ROOT_INO not in inodes:
            self.report.add("FSCK-TREE", "root inode missing or unreadable")
            return
        if inodes[ROOT_INO].ftype != FileType.DIRECTORY:
            self.report.add("FSCK-TREE", "root inode is not a directory")
            return
        reachable: set[int] = {ROOT_INO}
        queue = [(ROOT_INO, "/")]
        while queue:
            dir_ino, path = queue.pop()
            payload = self._read_file_payload(inodes[dir_ino])
            try:
                entries = dirmod.decode_directory(payload)
            except CorruptFileSystemError as exc:
                self.report.add(
                    "FSCK-TREE", f"directory {path} unreadable: {exc}")
                continue
            for name, (ino, ftype) in sorted(entries.items()):
                child_path = path.rstrip("/") + "/" + name
                in_range = 1 <= ino < fs.imap.max_inodes
                if not in_range or not fs.imap.is_allocated(ino):
                    self.report.add(
                        "FSCK-TREE",
                        f"entry {child_path} points at unallocated "
                        f"inode {ino}")
                    continue
                if ino in reachable:
                    self.report.add(
                        "FSCK-TREE",
                        f"inode {ino} reached twice (second via "
                        f"{child_path})")
                    continue
                reachable.add(ino)
                child = inodes.get(ino)
                if child is None:
                    continue  # already reported by _check_inodes
                if child.ftype != ftype:
                    self.report.add(
                        "FSCK-TREE",
                        f"entry {child_path} records type {ftype.name} but "
                        f"inode {ino} is {child.ftype.name}")
                if child.ftype == FileType.DIRECTORY:
                    queue.append((ino, child_path))
        for ino in sorted(set(fs.imap.allocated_inodes()) - reachable):
            self.report.add(
                "FSCK-TREE",
                f"inode {ino} is allocated but unreachable from the root")

    # -- segment usage --------------------------------------------------
    def _check_segment_usage(self) -> None:
        fs = self.fs
        sb = fs.sb
        expected = [0] * sb.nsegments
        for addr in self.claimed:
            segment = (addr - sb.first_segment_block) // sb.segment_blocks
            if 0 <= segment < sb.nsegments:
                expected[segment] += BLOCK_SIZE
        for segment, entry in enumerate(fs.usage):
            if entry.state == SegmentState.CLEAN and entry.live_bytes:
                self.report.add(
                    "FSCK-USAGE",
                    f"clean segment {segment} records "
                    f"{entry.live_bytes} live bytes")
            if entry.live_bytes != expected[segment]:
                self.report.add(
                    "FSCK-USAGE",
                    f"segment {segment}: usage table says "
                    f"{entry.live_bytes} live bytes, actual live blocks "
                    f"total {expected[segment]}")


def fsck(fs) -> FsckReport:
    """Audit a mounted (and flushed) LFS volume; returns the report."""
    return _Fsck(fs).run()
