"""Command-line front end: ``python -m repro.analysis <command>``.

Commands (all exit non-zero when they find problems, so they can gate
CI):

* ``lint PATH...`` — run the static rules over files/directories;
* ``fsck IMAGE`` — mount a raw LFS volume image and audit it;
* ``scrub --stripe-unit BYTES IMAGE...`` — parity-check per-disk raw
  images of a RAID 5 left-symmetric array.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import CorruptFileSystemError, RaidError


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import lint_paths

    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("clean")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.analysis.fsck_lfs import fsck
    from repro.lfs.fs import LogStructuredFS
    from repro.lfs.ondisk import BLOCK_SIZE
    from repro.sim import Simulator
    from repro.testing import MemoryDevice

    image = Path(args.image).read_bytes()
    if not image or len(image) % BLOCK_SIZE:
        print(f"fsck: {args.image}: size {len(image)} is not a whole "
              f"number of {BLOCK_SIZE}-byte blocks", file=sys.stderr)
        return 2
    sim = Simulator()
    device = MemoryDevice(sim, len(image), name="fsck-image")
    device.poke(0, image)
    fs = LogStructuredFS(sim, device)
    try:
        sim.run_process(fs.mount(), name="fsck-mount")
    except CorruptFileSystemError as exc:
        print(f"fsck: {args.image}: mount failed: {exc}", file=sys.stderr)
        return 2
    report = fsck(fs)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.analysis.scrub_raid import scrub_images

    images = [Path(name).read_bytes() for name in args.images]
    report = scrub_images(images, args.stripe_unit)
    print(report.render())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static lints and storage sanitizers.")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the static lint rules")
    lint.add_argument("paths", nargs="+",
                      help="Python files or directories to lint")
    lint.set_defaults(func=_cmd_lint)

    fsck = sub.add_parser("fsck", help="audit a raw LFS volume image")
    fsck.add_argument("image", help="raw volume image file")
    fsck.set_defaults(func=_cmd_fsck)

    scrub = sub.add_parser(
        "scrub", help="parity-check per-disk RAID 5 images")
    scrub.add_argument("--stripe-unit", type=int, required=True,
                       help="stripe unit size in bytes")
    scrub.add_argument("images", nargs="+",
                       help="per-disk raw image files, in disk order")
    scrub.set_defaults(func=_cmd_scrub)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except OSError as exc:
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2
    except RaidError as exc:
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
