"""RAID parity scrubber.

Production arrays scrub: they periodically read every stripe, recompute
the redundancy, and compare it with what is on disk, so that latent
errors are found while the redundancy to fix them still exists.  This
module brings that operation to the simulated arrays:

* :func:`scrub_array` — the *instant* form (``peek``-based, no
  simulated time): walks every row of a mounted controller, recomputes
  the XOR (RAID 5/3) or compares the mirror copies (RAID 1), and
  reports mismatched rows.  Rows with a failed disk are counted as
  *degraded* and skipped — in degraded mode the redundancy IS the data,
  so there is nothing independent left to compare.
* :func:`scrub_process` — the timed form: a simulation process doing
  the same walk through the disk paths, usable inside experiments as a
  background scrubber.
* :func:`scrub_images` — the offline form used by the CLI: per-disk
  raw image files laid out by :class:`repro.raid.layout.Raid5Layout`.

``repair=True`` rewrites the redundancy of a mismatched row from the
data units (``poke``, instant), mirroring what a real scrubber does
once a latent parity error is found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DiskFailedError, RaidError
from repro.hw.parity import xor_blocks
from repro.raid.layout import Raid1Layout, Raid3Layout, Raid5Layout


@dataclass
class ScrubReport:
    """Outcome of one scrub pass over an array."""

    rows_checked: int = 0
    mismatched_rows: list[int] = field(default_factory=list)
    degraded_rows: list[int] = field(default_factory=list)
    repaired_rows: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatched_rows

    def render(self) -> str:
        lines = [
            f"scrub: {self.rows_checked} rows checked, "
            f"{len(self.mismatched_rows)} mismatched, "
            f"{len(self.degraded_rows)} degraded (skipped), "
            f"{len(self.repaired_rows)} repaired"
        ]
        for row in self.mismatched_rows:
            lines.append(f"SCRUB-PARITY: row {row} redundancy mismatch")
        return "\n".join(lines)


def _rows_to_scan(layout, max_rows: Optional[int]) -> int:
    return layout.rows if max_rows is None else min(layout.rows, max_rows)


def _row_members(layout, row: int) -> tuple[list[int], Optional[int]]:
    """(data disks in unit order, parity disk or None) for one row."""
    data = [layout.data_disk(row, k)
            for k in range(layout.data_units_per_row)]
    return data, layout.parity_disk(row)


def scrub_array(controller, max_rows: Optional[int] = None,
                repair: bool = False) -> ScrubReport:
    """Instantly scrub a mounted RAID controller's redundancy.

    Dispatches on the controller's layout: XOR parity for RAID 5/3,
    copy comparison for RAID 1.  RAID 0 has no redundancy to scrub and
    is rejected.
    """
    layout = controller.layout
    if isinstance(layout, (Raid5Layout, Raid3Layout)):
        return _scrub_parity(controller, layout, max_rows, repair)
    if isinstance(layout, Raid1Layout):
        return _scrub_mirror(controller, layout, max_rows, repair)
    raise RaidError(
        f"{controller.name}: layout {type(layout).__name__} has no "
        "redundancy to scrub")


def _scrub_parity(controller, layout, max_rows: Optional[int],
                  repair: bool) -> ScrubReport:
    report = ScrubReport()
    nsectors = layout.unit_sectors
    for row in range(_rows_to_scan(layout, max_rows)):
        data_disks, parity_disk = _row_members(layout, row)
        lba = layout.row_lba(row)
        involved = data_disks + [parity_disk]
        if any(controller.paths[d].disk.failed for d in involved):
            report.degraded_rows.append(row)
            continue
        report.rows_checked += 1
        data_blocks = [controller.paths[d].disk.peek(lba, nsectors)
                       for d in data_disks]
        parity = controller.paths[parity_disk].disk.peek(lba, nsectors)
        expected = xor_blocks(data_blocks)
        if parity != expected:
            report.mismatched_rows.append(row)
            if repair:
                controller.paths[parity_disk].disk.poke(lba, expected)
                report.repaired_rows.append(row)
    return report


def _scrub_mirror(controller, layout: Raid1Layout, max_rows: Optional[int],
                  repair: bool) -> ScrubReport:
    report = ScrubReport()
    nsectors = layout.unit_sectors
    for row in range(_rows_to_scan(layout, max_rows)):
        lba = layout.row_lba(row)
        row_clean = True
        row_degraded = False
        for primary in range(layout.data_units_per_row):
            mirror = layout.mirror_of(primary)
            if controller.paths[primary].disk.failed \
                    or controller.paths[mirror].disk.failed:
                row_degraded = True
                continue
            first = controller.paths[primary].disk.peek(lba, nsectors)
            second = controller.paths[mirror].disk.peek(lba, nsectors)
            if first != second:
                row_clean = False
                if repair:
                    controller.paths[mirror].disk.poke(lba, first)
        if row_degraded:
            report.degraded_rows.append(row)
            continue
        report.rows_checked += 1
        if not row_clean:
            report.mismatched_rows.append(row)
            if repair:
                report.repaired_rows.append(row)
    return report


def scrub_process(controller, max_rows: Optional[int] = None):
    """Process: timed scrub through the disk paths.

    The same walk as :func:`scrub_array` but paying simulated I/O time,
    so experiments can run it as a background scrubber and measure its
    interference with foreground traffic.  Only parity layouts (RAID
    5/3) are supported; a disk failing mid-scan degrades the affected
    rows rather than aborting the pass.
    """
    layout = controller.layout
    if not isinstance(layout, (Raid5Layout, Raid3Layout)):
        raise RaidError(
            f"{controller.name}: timed scrub supports parity layouts only")
    report = ScrubReport()
    nsectors = layout.unit_sectors
    for row in range(_rows_to_scan(layout, max_rows)):
        data_disks, parity_disk = _row_members(layout, row)
        lba = layout.row_lba(row)
        involved = data_disks + [parity_disk]
        if any(controller.paths[d].disk.failed for d in involved):
            report.degraded_rows.append(row)
            continue
        try:
            blocks = []
            for disk in involved:
                block = yield from controller.paths[disk].read(lba, nsectors)
                blocks.append(block)
        except DiskFailedError:
            report.degraded_rows.append(row)
            continue
        report.rows_checked += 1
        # XOR over data plus parity is zero when the row is clean.
        if any(xor_blocks(blocks)):
            report.mismatched_rows.append(row)
    return report


def scrub_images(images: list[bytes], stripe_unit_bytes: int) -> ScrubReport:
    """Offline scrub of per-disk raw images (RAID 5 left-symmetric).

    ``images`` holds one byte string per disk, in disk order; rows are
    checked up to the smallest image.  This is what
    ``python -m repro.analysis scrub`` runs on image files.
    """
    if len(images) < 3:
        raise RaidError(
            f"RAID 5 scrub needs >= 3 images, got {len(images)}")
    capacity = min(len(image) for image in images)
    layout = Raid5Layout(len(images), stripe_unit_bytes, capacity)
    unit = layout.stripe_unit_bytes
    report = ScrubReport()
    for row in range(layout.rows):
        data_disks, parity_disk = _row_members(layout, row)
        at = row * unit
        data_blocks = [images[d][at:at + unit] for d in data_disks]
        parity = images[parity_disk][at:at + unit]
        report.rows_checked += 1
        if xor_blocks(data_blocks) != parity:
            report.mismatched_rows.append(row)
    return report
