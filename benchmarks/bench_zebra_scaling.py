"""Section 5.2 future work, built and measured: Zebra striping across
multiple RAID-II storage servers."""

from conftest import run_once

from repro.experiments import zebra_scaling


def test_zebra_scaling(benchmark, show):
    result = run_once(benchmark, zebra_scaling.run, quick=True)
    show(result)
    writes = result.series_named("log write bandwidth")
    # More servers, more bandwidth: the whole point of Zebra.
    assert result.scalars["write_scaling_3_to_max"] > 1.5
    assert writes.points[-1].y > writes.points[0].y
    # Surviving a server costs bandwidth but stays functional.
    assert 0.2 < result.scalars["degraded_read_fraction"] <= 1.0
