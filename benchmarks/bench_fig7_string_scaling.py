"""Figure 7: disk read performance vs disks on one SCSI string."""

from conftest import run_once

from repro.experiments import fig7_string_scaling


def test_fig7_string_scaling(benchmark, show):
    result = run_once(benchmark, fig7_string_scaling.run, quick=True)
    show(result)
    measured = result.series_named("measured")
    linear = result.series_named("linear scaling (dashed)")
    # One disk runs at its own ~2 MB/s; the string ceiling is ~3 MB/s.
    assert 1.8 < result.scalars["single_disk_mb_s"] < 2.3
    assert 2.7 < result.scalars["string_plateau_mb_s"] < 3.5
    # Saturation: 3, 4 and 5 disks all deliver the same string-bound rate.
    assert abs(measured.y_at(5) - measured.y_at(3)) < 0.2
    # And the measured curve falls well short of linear scaling.
    assert measured.y_at(5) < 0.5 * linear.y_at(5)
