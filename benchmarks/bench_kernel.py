"""Wall-clock microbenchmarks for the simulation kernel and data path.

Unlike the ``bench_fig*`` modules — which measure *simulated* time —
everything here measures *host* wall-clock time: how fast the Python
event loop dispatches events, churns timeouts, moves transfers through
a :class:`BandwidthChannel`, and XORs parity blocks.  These are the
costs that bound how long the whole reproduction takes to run
(ROADMAP: "as fast as the hardware allows"), so they get their own
regression harness: ``benchmarks/record.py`` runs this suite and
writes ``BENCH_kernel.json``, and CI fails if the event-dispatch rate
regresses more than 30% against the committed numbers.

Every benchmark is deterministic in *simulated* behaviour (fixed
seeds, fixed workloads); only the wall-clock readings vary from host
to host.
"""

from __future__ import annotations

import random
from time import perf_counter

from repro.hw.parity import xor_blocks
from repro.sim import BandwidthChannel, Simulator
from repro.units import KIB, MB

#: (full, quick) sizing knobs per benchmark.
_EVENTS = (300_000, 30_000)
_CHURN = (150_000, 15_000)
_TRANSFERS = (40_000, 4_000)
_PARITY_ROUNDS = (300, 30)

#: Each microbenchmark reports its best of this many runs: host
#: scheduling noise only ever makes a run slower, so the minimum is
#: the most repeatable estimate of the kernel's true cost.
_REPEATS = 3


def _best_of(bench, repeats: int = _REPEATS) -> dict:
    """Run ``bench()`` ``repeats`` times; keep the fastest result."""
    best = None
    for _ in range(repeats):
        result = bench()
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    return best


def bench_event_dispatch(quick: bool = False) -> dict:
    """Timeouts fired per wall-clock second with a deep event queue.

    One hundred concurrent processes each sleep in a loop with slightly
    different periods, so the heap always holds ~100 pending events and
    every dispatch pays realistic heap traffic.
    """
    total = _EVENTS[quick]
    sim = Simulator()
    nprocs = 100
    per_proc = total // nprocs

    def worker(period: float):
        for _ in range(per_proc):
            yield sim.timeout(period)

    for index in range(nprocs):
        sim.process(worker(0.001 + index * 1e-6))
    start = perf_counter()
    sim.run()
    elapsed = perf_counter() - start
    events = nprocs * per_proc
    return {"events": events, "seconds": elapsed,
            "events_per_s": events / elapsed}


def bench_timeout_churn(quick: bool = False) -> dict:
    """Cost of one allocate-schedule-fire-resume timeout cycle.

    A single process yielding back-to-back timeouts: the queue is
    nearly empty, so this isolates per-timeout allocation and process
    switch overhead from heap depth.
    """
    total = _CHURN[quick]
    sim = Simulator()

    def body():
        for _ in range(total):
            yield sim.timeout(0.1)

    sim.process(body())
    start = perf_counter()
    sim.run()
    elapsed = perf_counter() - start
    return {"timeouts": total, "seconds": elapsed,
            "timeouts_per_s": total / elapsed}


def bench_channel_transfer(quick: bool = False) -> dict:
    """Block transfers per wall-clock second through one shared channel.

    Eight competing processes move 64 KiB blocks across a single
    :class:`BandwidthChannel` — the acquire/timeout/release cycle every
    simulated bus, port, and disk in the repro runs per block.
    """
    total = _TRANSFERS[quick]
    workers = 8
    per_worker = total // workers
    sim = Simulator()
    channel = BandwidthChannel(sim, rate_mb_s=40.0, name="bench")

    def worker():
        for _ in range(per_worker):
            yield from channel.transfer(64 * KIB)

    for _ in range(workers):
        sim.process(worker())
    start = perf_counter()
    sim.run()
    elapsed = perf_counter() - start
    transfers = workers * per_worker
    return {"transfers": transfers, "seconds": elapsed,
            "transfers_per_s": transfers / elapsed}


def bench_tracing_overhead(quick: bool = False) -> dict:
    """What disabled tracing costs the instrumented data path.

    Two measurements compose into the figure of merit:

    1. *Per-span cost*: the channel-transfer workload run twice on
       fresh Simulators whose tracer is the disabled ``NULL_TRACER``
       — once plain, once with every transfer wrapped in a
       ``tracer.span(...)`` block exactly as the instrumented
       hw/raid/lfs layers do.  The runs are interleaved in pairs (host
       drift hits both sides equally) and each side keeps its minimum,
       so the difference isolates the null-span machinery.  Bare
       timeouts would be the wrong workload: a real span surrounds
       several kernel events, and the cost only matters relative to
       them.

    2. *Span density of the real data path*: one Figure-5 measurement
       through the full instrumented stack, traced once to count its
       spans and timed untraced.  The real stack runs far more kernel
       work per span than the microbenchmark loop does, and the gate
       is about what *it* pays.

    ``overhead_pct`` — per-span cost times real spans-per-wall-clock-
    second — is the null tracer's tax on the shipped data path; the
    regression gate keeps it under 5%.
    """
    total = _TRANSFERS[quick]
    workers = 8
    per_worker = total // workers

    def run(instrumented: bool) -> float:
        sim = Simulator()
        channel = BandwidthChannel(sim, rate_mb_s=40.0, name="bench")
        tracer = sim.tracer

        def plain():
            for _ in range(per_worker):
                yield from channel.transfer(64 * KIB)

        def spanned():
            for _ in range(per_worker):
                with tracer.span("bench.transfer", "bench",
                                 nbytes=64 * KIB):
                    yield from channel.transfer(64 * KIB)

        body = spanned if instrumented else plain
        for _ in range(workers):
            sim.process(body())
        start = perf_counter()
        sim.run()
        return perf_counter() - start

    plain_s = spanned_s = None
    for _ in range(_REPEATS + 2):
        p, s = run(False), run(True)
        plain_s = p if plain_s is None else min(plain_s, p)
        spanned_s = s if spanned_s is None else min(spanned_s, s)
    transfers = workers * per_worker
    span_cost_s = max(0.0, (spanned_s - plain_s) / transfers)

    from repro.experiments import fig5_hw_throughput as fig5
    from repro.obs import observe

    def measure():
        return fig5._measure("read", 256 * KIB, 4, 101)

    with observe(trace=True) as session:
        measure()
    nspans = len(session.spans())
    real_s = min(_timed(measure) for _ in range(_REPEATS))
    density = nspans / real_s  # spans per wall-clock second, untraced
    return {"transfers": transfers, "seconds": spanned_s,
            "plain_seconds": plain_s,
            "overhead_pct": span_cost_s * density * 100.0,
            "span_cost_ns": span_cost_s * 1e9,
            "spans_per_s": density}


def _timed(fn) -> float:
    start = perf_counter()
    fn()
    return perf_counter() - start


def bench_parity_throughput(quick: bool = False) -> dict:
    """XOR megabytes per wall-clock second over a paper-shaped stripe.

    Twelve 64 KiB blocks — one RAID-5 row of the Figure 5 configuration
    — XORed repeatedly, the pure-compute half of every parity-engine
    call, full-stripe write, and reconstruction.
    """
    rounds = _PARITY_ROUNDS[quick]
    rng = random.Random(7)
    block = 64 * KIB
    blocks = [rng.randbytes(block) for _ in range(12)]
    parity = xor_blocks(blocks)  # warm numpy up outside the window
    start = perf_counter()
    for _ in range(rounds):
        parity = xor_blocks(blocks)
    elapsed = perf_counter() - start
    moved = rounds * len(blocks) * block
    assert len(parity) == block
    return {"bytes": moved, "seconds": elapsed,
            "mb_per_s": moved / MB / elapsed}


def bench_experiment_wallclock(experiment: str = "fig5") -> dict:
    """Wall-clock seconds for one full quick-mode experiment run."""
    if experiment == "fig5":
        from repro.experiments import fig5_hw_throughput as module
    elif experiment == "fig8":
        from repro.experiments import fig8_lfs_throughput as module
    else:
        raise ValueError(f"unknown experiment {experiment!r}")
    start = perf_counter()
    result = module.run(quick=True)
    elapsed = perf_counter() - start
    return {"experiment": experiment, "seconds": elapsed,
            "scalars": dict(result.scalars)}


def run_suite(quick: bool = False, experiments: bool = True) -> dict:
    """Run every kernel benchmark (best of ``_REPEATS`` runs each);
    returns {name: result dict}."""
    results = {
        "event_dispatch": _best_of(lambda: bench_event_dispatch(quick)),
        "timeout_churn": _best_of(lambda: bench_timeout_churn(quick)),
        "channel_transfer": _best_of(lambda: bench_channel_transfer(quick)),
        "parity_throughput": _best_of(lambda: bench_parity_throughput(quick)),
        # Repeats and pairs its own runs internally (the figure of
        # merit is a ratio), so no _best_of wrapper.
        "tracing_overhead": bench_tracing_overhead(quick),
    }
    if experiments:
        results["fig5_quick_wallclock"] = _best_of(
            lambda: bench_experiment_wallclock("fig5"))
        results["fig8_quick_wallclock"] = _best_of(
            lambda: bench_experiment_wallclock("fig8"))
    return results


# ----------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)
# ----------------------------------------------------------------------

def test_kernel_microbenchmarks(capsys):
    results = run_suite(quick=True, experiments=False)
    with capsys.disabled():
        print()
        for name, result in results.items():
            rate_key = next((k for k in result if k.endswith("_per_s")
                             or k.endswith("_pct")), None)
            print(f"  {name:<18} : {result[rate_key]:12.2f} {rate_key}")
    assert results["event_dispatch"]["events_per_s"] > 0
    assert results["timeout_churn"]["timeouts_per_s"] > 0
    assert results["channel_transfer"]["transfers_per_s"] > 0
    assert results["parity_throughput"]["mb_per_s"] > 0
    # The observability acceptance gate: disabled tracing must cost
    # the instrumented data path less than 5% wall-clock.
    assert results["tracing_overhead"]["overhead_pct"] < 5.0
