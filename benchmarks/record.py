"""Record kernel-benchmark numbers to ``BENCH_kernel.json``.

Usage::

    python benchmarks/record.py                      # full suite -> BENCH_kernel.json
    python benchmarks/record.py --quick              # CI-sized suite
    python benchmarks/record.py --baseline old.json  # carry old numbers
                                                     # forward as "baseline"
    python benchmarks/record.py --check BENCH_kernel.json
                                                     # exit 1 on >30% dispatch
                                                     # regression

The output JSON has two sections: ``baseline`` (the numbers measured
before the kernel fast path landed, carried forward verbatim so the
perf trajectory stays visible) and ``current`` (this run).  ``speedup``
maps each benchmark to current/baseline rate.  CI's ``bench-smoke``
job runs ``--quick --check`` against the committed file and fails when
the event-dispatch rate drops more than ``--tolerance`` (default 30%)
below the committed ``current`` number.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_kernel import run_suite  # noqa: E402

#: The rate key CI guards, per benchmark name.
RATE_KEYS = {
    "event_dispatch": "events_per_s",
    "timeout_churn": "timeouts_per_s",
    "channel_transfer": "transfers_per_s",
    "parity_throughput": "mb_per_s",
}


def _rates(results: dict) -> dict:
    out = {}
    for name, key in RATE_KEYS.items():
        if name in results:
            out[name] = results[name][key]
    return out


def measure(quick: bool, experiments: bool = True) -> dict:
    results = run_suite(quick=quick, experiments=experiments)
    return {
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }


def check(current: dict, committed_path: Path, tolerance: float) -> int:
    """Compare the dispatch rate against the committed file; 0 = ok."""
    committed = json.loads(committed_path.read_text())
    reference = committed["current"]["results"]["event_dispatch"]["events_per_s"]
    measured = current["results"]["event_dispatch"]["events_per_s"]
    floor = reference * (1.0 - tolerance)
    status = "ok" if measured >= floor else "REGRESSION"
    print(f"event_dispatch: measured {measured:,.0f}/s vs committed "
          f"{reference:,.0f}/s (floor {floor:,.0f}/s at "
          f"-{tolerance:.0%}): {status}")
    return 0 if measured >= floor else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (~seconds, not minutes)")
    parser.add_argument("--no-experiments", action="store_true",
                        help="skip the full-experiment wall-clock timings")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_kernel.json"),
                        help="output path (default: repo BENCH_kernel.json)")
    parser.add_argument("--baseline", default=None,
                        help="JSON file whose measurements become the "
                             "'baseline' section of the output")
    parser.add_argument("--check", default=None,
                        help="committed BENCH_kernel.json to compare the "
                             "event-dispatch rate against")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional dispatch-rate regression "
                             "for --check (default 0.30)")
    args = parser.parse_args(argv)

    current = measure(args.quick, experiments=not args.no_experiments)
    document = {"schema": 1, "current": current}

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        # Accept either a bare measurement or a prior document.
        if "current" in baseline and "results" in baseline.get("current", {}):
            document["baseline"] = baseline["current"]
        elif "baseline" in baseline:
            document["baseline"] = baseline["baseline"]
        else:
            document["baseline"] = baseline
        base_rates = _rates(document["baseline"]["results"])
        cur_rates = _rates(current["results"])
        document["speedup"] = {
            name: round(cur_rates[name] / base_rates[name], 3)
            for name in cur_rates if base_rates.get(name)
        }
        for exp in ("fig5_quick_wallclock", "fig8_quick_wallclock"):
            base_exp = document["baseline"]["results"].get(exp)
            cur_exp = current["results"].get(exp)
            if base_exp and cur_exp:
                document["speedup"][exp] = round(
                    base_exp["seconds"] / cur_exp["seconds"], 3)

    out_path = Path(args.out)
    out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    for name, rate in _rates(current["results"]).items():
        line = f"  {name:<18} : {rate:14,.1f}"
        if "speedup" in document and name in document["speedup"]:
            line += f"   ({document['speedup'][name]:.2f}x vs baseline)"
        print(line)
    exp = current["results"].get("fig5_quick_wallclock")
    if exp:
        line = f"  {'fig5 quick':<18} : {exp['seconds']:12.2f} s"
        if "speedup" in document and "fig5_quick_wallclock" in document["speedup"]:
            line += (f"   ({document['speedup']['fig5_quick_wallclock']:.2f}x "
                     "vs baseline)")
        print(line)

    if args.check:
        return check(current, Path(args.check), args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
