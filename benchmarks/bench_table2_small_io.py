"""Table 2: 4 KB random read I/O rates, RAID-I vs RAID-II."""

from conftest import run_once

from repro.experiments import table2_small_io


def test_table2_small_io(benchmark, show):
    result = run_once(benchmark, table2_small_io.run, quick=True)
    show(result)
    scalars = result.scalars
    # Paper: RAID-II ~400 IO/s vs RAID-I ~275 on fifteen disks.
    assert 330 < scalars["raid2_15disk_ios"] < 470
    assert 230 < scalars["raid1_15disk_ios"] < 320
    assert scalars["raid2_15disk_ios"] > scalars["raid1_15disk_ios"]
    # Faster drives: the RAID-II single disk beats the RAID-I one.
    assert scalars["raid2_1disk_ios"] > scalars["raid1_1disk_ios"]
    # Both deliver a substantial fraction of their potential.
    assert 0.5 < scalars["raid2_delivered_fraction"] <= 1.0
    assert 0.5 < scalars["raid1_delivered_fraction"] <= 1.0
