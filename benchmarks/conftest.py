"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures via the
matching ``repro.experiments`` module, prints the series next to the
paper's anchors, and asserts the *shape* (who wins, by roughly what
factor) rather than exact numbers.
"""

import os

import pytest

#: Set REPRO_FULL=1 to run the full-resolution sweeps (several minutes)
#: instead of the quick ones the assertions are tuned for.
FULL = os.environ.get("REPRO_FULL") == "1"


@pytest.fixture
def show(capsys):
    """Print a rendered experiment result past pytest's capture."""
    def _show(result):
        with capsys.disabled():
            print()
            print(result.render())
    return _show


def run_once(benchmark, fn, **kwargs):
    """Benchmark ``fn`` with a single timed round (experiments are
    deterministic simulations; repetition adds nothing)."""
    if FULL:
        kwargs = dict(kwargs, quick=False)
    return benchmark.pedantic(fn, kwargs=kwargs, iterations=1, rounds=1)
