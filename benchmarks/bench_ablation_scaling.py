"""Ablation: server bandwidth scaling with additional XBUS boards
(Section 2.1.2)."""

from conftest import run_once

from repro.experiments import ablations


def test_ablation_scaling(benchmark, show):
    result = run_once(benchmark, ablations.run_scaling, quick=True)
    show(result)
    series = result.series_named("aggregate bandwidth")
    # Each board adds bandwidth: four boards deliver at least ~3x one.
    assert result.scalars["scaling_efficiency"] > 0.75
    assert series.y_at(4) > 3 * series.y_at(1) * 0.75
    # The host CPU load grows with boards but stays far from saturation
    # (only control operations touch the host).
    util = result.series_named("host CPU utilization")
    assert util.y_at(4) < 0.5
    assert util.y_at(4) > util.y_at(1)
