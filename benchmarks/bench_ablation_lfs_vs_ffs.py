"""Ablation: LFS vs a traditional update-in-place FS for small writes
on RAID 5 (the four-access small-write penalty, Section 3.1)."""

from conftest import run_once

from repro.experiments import ablations


def test_ablation_lfs_vs_ffs(benchmark, show):
    result = run_once(benchmark, ablations.run_lfs_vs_ffs, quick=True)
    show(result)
    scalars = result.scalars
    # The traditional FS pays ~4 disk accesses per small write.
    assert scalars["ffs_disk_ops_per_write"] > 3.0
    # LFS batches them into segment writes: far fewer disk ops each...
    assert scalars["lfs_disk_ops_per_write"] < 1.5
    # ...and a large end-to-end speedup.
    assert scalars["lfs_speedup"] > 3.0
