"""Ablation: segment-cleaner overhead on a fragmented log — the cost
of the piece the paper's prototype left unimplemented."""

from conftest import run_once

from repro.experiments import ablations


def test_ablation_cleaner(benchmark, show):
    result = run_once(benchmark, ablations.run_cleaner, quick=True)
    show(result)
    scalars = result.scalars
    # Cleaning costs something but the log keeps flowing.
    assert scalars["fragmented_with_cleaner_mb_s"] > 0
    assert 0.0 <= scalars["cleaner_overhead_fraction"] < 0.9
    assert (scalars["fragmented_with_cleaner_mb_s"]
            <= scalars["fresh_log_mb_s"])
