"""Section 2.3: VME data-port sustained read/write rates."""

from conftest import run_once

from repro.experiments import vme_ports


def test_vme_ports(benchmark, show):
    result = run_once(benchmark, vme_ports.run, quick=True)
    show(result)
    # Paper: 6.9 MB/s reads, 5.9 MB/s writes.
    assert 6.4 < result.scalars["vme_read_mb_s"] < 7.1
    assert 5.4 < result.scalars["vme_write_mb_s"] < 6.1
    assert result.scalars["vme_read_mb_s"] > result.scalars["vme_write_mb_s"]
