"""Extension: array bandwidth under failure and during rebuild."""

from conftest import run_once

from repro.experiments import degraded_mode


def test_degraded_mode(benchmark, show):
    result = run_once(benchmark, degraded_mode.run, quick=True)
    show(result)
    scalars = result.scalars
    # Degraded mode costs bandwidth but far from all of it.
    assert 0.3 < scalars["degraded_fraction"] < 1.0
    # Rebuilding steals more, but the server keeps serving.
    assert scalars["during_rebuild_mb_s"] > 0.2 * scalars["healthy_mb_s"]
    assert scalars["rebuild_rate_mb_s"] > 0
