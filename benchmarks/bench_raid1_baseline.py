"""Section 1: the RAID-I baseline and the order-of-magnitude claim."""

from conftest import run_once

from repro.experiments import raid1_baseline


def test_raid1_baseline(benchmark, show):
    result = run_once(benchmark, raid1_baseline.run, quick=True)
    show(result)
    scalars = result.scalars
    # The famous ceiling: at best ~2.3 MB/s to a user application.
    assert 2.0 < scalars["raid1_app_read_mb_s"] < 2.6
    # One disk sustains ~1.3 MB/s, so nearly 26 of 28 disks are wasted.
    assert 1.1 < scalars["raid1_single_disk_mb_s"] < 1.5
    assert 24 < scalars["raid1_wasted_disks_of_28"] < 27.5
    # RAID-II delivers an order of magnitude more.
    assert scalars["improvement_factor"] > 7
