"""Section 3.4: single SPARCstation client read/write over the Ultranet."""

from conftest import run_once

from repro.experiments import network_clients


def test_network_client(benchmark, show):
    result = run_once(benchmark, network_clients.run, quick=True)
    show(result)
    scalars = result.scalars
    # Paper: 3.2 MB/s reads, 3.1 MB/s writes — client-limited.
    assert 2.2 < scalars["client_read_mb_s"] < 4.2
    assert 2.2 < scalars["client_write_mb_s"] < 4.2
    # Host CPU utilization "close to zero" during client writes.
    assert scalars["host_cpu_util_during_writes"] < 0.1
    # The server scales past one client: three writers in aggregate
    # deliver well above a single client's rate.
    assert (scalars["aggregate_write_3_clients_mb_s"]
            > 1.8 * scalars["client_write_mb_s"])
