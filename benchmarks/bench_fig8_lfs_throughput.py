"""Figure 8: LFS on RAID-II, random read/write bandwidth."""

from conftest import run_once

from repro.experiments import fig8_lfs_throughput


def test_fig8_lfs_throughput(benchmark, show):
    result = run_once(benchmark, fig8_lfs_throughput.run, quick=True)
    show(result)
    # Paper: reads up to ~20-21 MB/s, writes plateau near 15 MB/s.
    assert 16 < result.scalars["read_plateau_mb_s"] < 26
    assert 8 < result.scalars["write_plateau_mb_s"] < 18
    # The headline LFS result: small random writes BEAT small random
    # reads, because the log absorbs them into sequential segments.
    assert result.scalars["small_write_over_small_read"] > 1.2
