"""Ablation: the high-bandwidth data path vs forcing data through the
host — the paper's core architectural argument."""

from conftest import run_once

from repro.experiments import ablations


def test_ablation_datapath(benchmark, show):
    result = run_once(benchmark, ablations.run_datapath, quick=True)
    show(result)
    scalars = result.scalars
    # Routed through the host, the server collapses to RAID-I-class
    # bandwidth (the ~2.3 MB/s memory-system ceiling).
    assert scalars["through_host_mb_s"] < 4.0
    assert scalars["xbus_path_mb_s"] > 15.0
    assert scalars["speedup"] > 5.0
