"""Figure 5: hardware system level random read/write throughput."""

from conftest import run_once

from repro.experiments import fig5_hw_throughput


def test_fig5_hw_throughput(benchmark, show):
    result = run_once(benchmark, fig5_hw_throughput.run, quick=True)
    show(result)
    reads = result.series_named("random reads")
    writes = result.series_named("random writes")
    # Plateau near the paper's ~20 MB/s for reads.
    assert 16 < result.scalars["read_plateau_mb_s"] < 26
    # Writes land below reads but in the same order of magnitude.
    assert 10 < result.scalars["write_plateau_mb_s"] < 22
    assert (result.scalars["write_plateau_mb_s"]
            < result.scalars["read_plateau_mb_s"])
    # Throughput grows with request size (amortized positioning costs).
    assert reads.points[0].y < reads.points[-1].y / 4
    assert writes.points[0].y < writes.points[-1].y / 4
