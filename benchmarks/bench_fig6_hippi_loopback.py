"""Figure 6: HIPPI loopback throughput vs transfer size."""

from conftest import run_once

from repro.experiments import fig6_hippi_loopback


def test_fig6_hippi_loopback(benchmark, show):
    result = run_once(benchmark, fig6_hippi_loopback.run, quick=True)
    show(result)
    series = result.series_named("loopback throughput")
    # Paper: 38.5 MB/s in each direction at large transfers.
    assert 36 < result.scalars["loopback_plateau_mb_s"] < 39.5
    # Small transfers dominated by the ~1.1 ms setup overhead.
    assert 0.8 < result.scalars["packet_overhead_ms"] < 1.5
    assert series.points[0].y < series.points[-1].y / 3
