"""Table 1: peak sequential read/write bandwidth."""

from conftest import run_once

from repro.experiments import table1_peak_sequential


def test_table1_peak_sequential(benchmark, show):
    result = run_once(benchmark, table1_peak_sequential.run, quick=True)
    show(result)
    read = result.scalars["sequential_read_mb_s"]
    write = result.scalars["sequential_write_mb_s"]
    # Paper: 31 read / 23 write.  Shape: both tens of MB/s, reads ahead
    # by roughly the paper's 1.35x.
    assert 24 < read < 34
    assert 15 < write < 26
    assert 1.15 < read / write < 1.75
