"""Ablation: RAID 5 vs RAID 3 under concurrent small reads — why
RAID-II's crossbar + Level 5 beats HPDS's Level 3 for small I/O
(Section 4.2)."""

from conftest import run_once

from repro.experiments import ablations


def test_ablation_raid3(benchmark, show):
    result = run_once(benchmark, ablations.run_raid3, quick=True)
    show(result)
    # RAID 5 scales with concurrency; RAID 3 is one-at-a-time.
    assert result.scalars["raid5_scaling_1_to_8"] > 2.5
    assert result.scalars["raid3_scaling_1_to_8"] < 1.5
