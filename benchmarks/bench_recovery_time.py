"""Section 3.1: LFS crash check vs UNIX-style fsck."""

from conftest import run_once

from repro.experiments import recovery_time


def test_recovery_time(benchmark, show):
    result = run_once(benchmark, recovery_time.run, quick=True)
    show(result)
    scalars = result.scalars
    # The paper's qualitative claim: orders of magnitude apart.
    assert scalars["fsck_over_lfs"] > 10
    # And the absolute regimes: seconds-ish vs many minutes at 1 GB.
    assert scalars["lfs_extrapolated_1gb_s"] < 120
    assert scalars["fsck_extrapolated_1gb_min"] > 3
